"""Allocations, schedule results, and the independent schedule verifier.

Every scheduler returns a :class:`ScheduleResult`: which requests were
accepted, and for each accepted request the granted bandwidth ``bw(r)`` and
assigned window ``[σ(r), τ(r)]``.  :func:`verify_schedule` re-checks a result
against the paper's constraints (Eq. 1) from scratch — it shares no
bookkeeping with the schedulers, so tests can use it as ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping
from typing import Any

from ..units import seconds_eq
from .errors import ScheduleViolation
from .ledger import Degradation, PortLedger
from .platform import Platform
from .profile import RateProfile, Segment
from .request import Request, RequestSet

__all__ = ["Allocation", "ScheduleResult", "verify_schedule", "VERIFY_RTOL"]

#: Relative tolerance used by :func:`verify_schedule` for rate and capacity
#: comparisons (allocations are sums of floats).
VERIFY_RTOL: float = 1e-6


@dataclass(frozen=True, slots=True)
class Allocation:
    """Granted bandwidth and window for one accepted request.

    In the paper's constant-rate model (``profile is None``) ``tau`` is
    always ``sigma + volume / bw`` — the transfer runs at constant rate
    ``bw`` until its volume is delivered (paper §2.1).  A *malleable*
    allocation instead carries a stepwise :class:`RateProfile`; ``bw`` is
    then the profile's peak rate and ``sigma``/``tau`` its span, so every
    scalar consumer keeps a conservative view without knowing about
    profiles.
    """

    rid: int
    ingress: int
    egress: int
    bw: float
    sigma: float
    tau: float
    profile: RateProfile | None = None

    @property
    def duration(self) -> float:
        """Transfer duration ``τ - σ``."""
        return self.tau - self.sigma

    @property
    def transferred(self) -> float:
        """Volume carried in MB: ``bw × (τ - σ)``, or the profile integral."""
        if self.profile is not None:
            return self.profile.volume
        return self.bw * (self.tau - self.sigma)

    def segments(self) -> tuple[Segment, ...]:
        """The rate steps this allocation commits on both its ports.

        Constant-rate allocations report their single ``(σ, τ, bw)``
        segment, so capacity bookkeeping can be written profile-first.
        """
        if self.profile is not None:
            return self.profile.segments
        return ((self.sigma, self.tau, self.bw),)

    def carried_before(self, t: float) -> float:
        """Volume already carried strictly before ``t`` (fault-path maths)."""
        if self.profile is not None:
            return self.profile.volume_before(t)
        end = min(t, self.tau)
        return self.bw * max(0.0, end - self.sigma)

    @classmethod
    def for_request(cls, request: Request, bw: float, sigma: float | None = None) -> Allocation:
        """Allocation serving ``request`` at rate ``bw`` from ``sigma``.

        ``sigma`` defaults to the requested start ``t_s(r)`` and ``tau`` is
        derived from the volume.
        """
        start = request.t_start if sigma is None else sigma
        return cls(
            rid=request.rid,
            ingress=request.ingress,
            egress=request.egress,
            bw=bw,
            sigma=start,
            tau=start + request.volume / bw,
        )

    @classmethod
    def for_profile(cls, request: Request, profile: RateProfile) -> Allocation:
        """Malleable allocation serving ``request`` along ``profile``.

        ``bw`` is the peak rate and ``σ``/``τ`` the profile span, keeping
        the scalar fields an honest conservative summary.
        """
        return cls(
            rid=request.rid,
            ingress=request.ingress,
            egress=request.egress,
            bw=profile.peak_rate,
            sigma=profile.sigma,
            tau=profile.tau,
            profile=profile,
        )

    def with_profile(self, profile: RateProfile) -> Allocation:
        """The same request reshaped along ``profile`` (fault-path verb)."""
        return Allocation(
            rid=self.rid,
            ingress=self.ingress,
            egress=self.egress,
            bw=profile.peak_rate,
            sigma=profile.sigma,
            tau=profile.tau,
            profile=profile,
        )

    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON friendly).

        The ``profile`` key appears only for malleable allocations —
        constant-rate journals and snapshots stay byte-identical to the
        pre-profile format.
        """
        data: dict[str, Any] = {
            "rid": self.rid,
            "ingress": self.ingress,
            "egress": self.egress,
            "bw": self.bw,
            "sigma": self.sigma,
            "tau": self.tau,
        }
        if self.profile is not None:
            data["profile"] = self.profile.to_list()
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> Allocation:
        """Inverse of :meth:`to_dict`."""
        return cls(
            rid=int(data["rid"]),
            ingress=int(data["ingress"]),
            egress=int(data["egress"]),
            bw=float(data["bw"]),
            sigma=float(data["sigma"]),
            tau=float(data["tau"]),
            profile=RateProfile.maybe_from(data.get("profile")),
        )


@dataclass
class ScheduleResult:
    """Outcome of running a scheduler on a problem instance.

    Attributes
    ----------
    accepted:
        Mapping ``rid -> Allocation`` for every accepted request.
    rejected:
        Identifiers of rejected requests.
    scheduler:
        Human-readable name of the producing scheduler.
    meta:
        Free-form scheduler-specific details (e.g. ``t_step``, policy name).
    """

    accepted: dict[int, Allocation] = field(default_factory=dict)
    rejected: set[int] = field(default_factory=set)
    scheduler: str = ""
    meta: dict[str, Any] = field(default_factory=dict)
    #: Optional diagnostics: why each rejected request was turned away
    #: ("capacity", "deadline", ...).  Keys ⊆ ``rejected``.
    rejection_reasons: dict[int, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def accept(self, allocation: Allocation) -> None:
        """Record an accepted request."""
        if allocation.rid in self.accepted or allocation.rid in self.rejected:
            raise ScheduleViolation(f"request {allocation.rid} decided twice")
        self.accepted[allocation.rid] = allocation

    def reject(self, rid: int, reason: str | None = None) -> None:
        """Record a rejected request, optionally with a diagnostic reason."""
        if rid in self.accepted or rid in self.rejected:
            raise ScheduleViolation(f"request {rid} decided twice")
        self.rejected.add(rid)
        if reason is not None:
            self.rejection_reasons[rid] = reason

    def revoke(self, rid: int, reason: str | None = None) -> Allocation:
        """Turn a previous accept into a reject (SLOTS heuristics do this
        when a multi-interval request fails in a later interval)."""
        allocation = self.accepted.pop(rid)
        self.rejected.add(rid)
        if reason is not None:
            self.rejection_reasons[rid] = reason
        return allocation

    def rejection_breakdown(self) -> dict[str, int]:
        """Count rejections per reason ("unspecified" when untagged)."""
        counts: dict[str, int] = {}
        for rid in self.rejected:
            reason = self.rejection_reasons.get(rid, "unspecified")
            counts[reason] = counts.get(reason, 0) + 1
        return counts

    # ------------------------------------------------------------------
    @property
    def num_accepted(self) -> int:
        """Number of accepted requests."""
        return len(self.accepted)

    @property
    def num_rejected(self) -> int:
        """Number of rejected requests."""
        return len(self.rejected)

    @property
    def num_decided(self) -> int:
        """Total number of decided requests."""
        return len(self.accepted) + len(self.rejected)

    @property
    def accept_rate(self) -> float:
        """Accepted over decided (the paper's MAX-REQUESTS metric)."""
        total = self.num_decided
        return self.num_accepted / total if total else 0.0

    def allocations(self) -> list[Allocation]:
        """Accepted allocations, ordered by assigned start time."""
        return sorted(self.accepted.values(), key=lambda a: (a.sigma, a.rid))

    def build_ledger(self, platform: Platform) -> PortLedger:
        """Replay the accepted allocations into a fresh (unchecked) ledger."""
        ledger = PortLedger(platform)
        for alloc in self.accepted.values():
            if alloc.profile is None:
                ledger.allocate(
                    alloc.ingress, alloc.egress, alloc.sigma, alloc.tau, alloc.bw, check=False
                )
            else:
                ledger.allocate_segments(
                    alloc.ingress, alloc.egress, alloc.profile.segments, check=False
                )
        return ledger

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON friendly)."""
        return {
            "scheduler": self.scheduler,
            "meta": dict(self.meta),
            "accepted": [a.to_dict() for a in self.allocations()],
            "rejected": sorted(self.rejected),
            "rejection_reasons": {str(k): v for k, v in self.rejection_reasons.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> ScheduleResult:
        """Inverse of :meth:`to_dict`."""
        result = cls(scheduler=str(data.get("scheduler", "")), meta=dict(data.get("meta", {})))
        reasons = {int(k): str(v) for k, v in data.get("rejection_reasons", {}).items()}
        for item in data.get("accepted", []):
            result.accept(Allocation.from_dict(item))
        for rid in data.get("rejected", []):
            result.reject(int(rid), reasons.get(int(rid)))
        return result


def verify_schedule(
    platform: Platform,
    requests: RequestSet | Iterable[Request],
    result: ScheduleResult,
    *,
    enforce_window: bool = True,
    require_all_decided: bool = True,
    rtol: float = VERIFY_RTOL,
    degradations: Iterable[Degradation] = (),
) -> None:
    """Check a schedule against the paper's constraints, or raise.

    Verifies, independently of any scheduler state:

    1. every decided ``rid`` names a known request, and (optionally) every
       request was decided exactly once;
    2. each allocation matches its request's endpoints and carries exactly
       its volume (``bw × (τ − σ) = vol``);
    3. rate bounds: ``MinRate(σ) ≤ bw ≤ MaxRate`` — where ``MinRate(σ)`` is
       the deadline-implied rate for the *assigned* start;
    4. window bounds: ``σ ≥ t_s`` and ``τ ≤ t_f`` (skipped when
       ``enforce_window=False``, for deliberately deadline-relaxed modes);
    5. capacity (Eq. 1): on every port, at every instant, committed
       bandwidth stays within capacity — the *effective* capacity when
       ``degradations`` (outages / partial failures) are supplied.

    Raises
    ------
    ScheduleViolation
        On the first violated condition, with a descriptive message.
    """
    request_set = requests if isinstance(requests, RequestSet) else RequestSet(requests)
    known = {r.rid for r in request_set}

    decided = set(result.accepted) | result.rejected
    if set(result.accepted) & result.rejected:
        raise ScheduleViolation("some requests both accepted and rejected")
    unknown = decided - known
    if unknown:
        raise ScheduleViolation(f"decisions for unknown request ids: {sorted(unknown)}")
    if require_all_decided and decided != known:
        missing = known - decided
        raise ScheduleViolation(f"undecided requests: {sorted(missing)}")

    for rid, alloc in result.accepted.items():
        request = request_set.by_rid(rid)
        if (alloc.ingress, alloc.egress) != (request.ingress, request.egress):
            raise ScheduleViolation(
                f"request {rid}: allocation endpoints ({alloc.ingress}, {alloc.egress}) "
                f"differ from request ({request.ingress}, {request.egress})"
            )
        if alloc.bw <= 0:
            raise ScheduleViolation(f"request {rid}: non-positive bandwidth {alloc.bw}")
        if alloc.tau <= alloc.sigma:
            raise ScheduleViolation(f"request {rid}: empty assigned window [{alloc.sigma}, {alloc.tau}]")
        if abs(alloc.transferred - request.volume) > rtol * request.volume:
            raise ScheduleViolation(
                f"request {rid}: carries {alloc.transferred} MB instead of {request.volume} MB"
            )
        if alloc.bw > request.max_rate * (1 + rtol):
            raise ScheduleViolation(
                f"request {rid}: bw {alloc.bw} exceeds MaxRate {request.max_rate}"
            )
        if alloc.profile is not None:
            if not alloc.profile:
                raise ScheduleViolation(f"request {rid}: empty rate profile")
            if not (
                seconds_eq(alloc.sigma, alloc.profile.sigma, rel=rtol)
                and seconds_eq(alloc.tau, alloc.profile.tau, rel=rtol)
            ):
                raise ScheduleViolation(
                    f"request {rid}: scalar window [{alloc.sigma}, {alloc.tau}] disagrees "
                    f"with profile span [{alloc.profile.sigma}, {alloc.profile.tau}]"
                )
        if enforce_window:
            if alloc.sigma < request.t_start - rtol * max(1.0, abs(request.t_start)):
                raise ScheduleViolation(
                    f"request {rid}: starts at {alloc.sigma} before window opens at {request.t_start}"
                )
            if alloc.tau > request.t_end + rtol * max(1.0, abs(request.t_end)):
                raise ScheduleViolation(
                    f"request {rid}: finishes at {alloc.tau} after deadline {request.t_end}"
                )

    ledger = result.build_ledger(platform)
    for degradation in degradations:
        ledger.degrade(degradation)
    overcommit = ledger.max_overcommit()
    max_cap = max(
        float(platform.ingress_capacity.max()), float(platform.egress_capacity.max())
    )
    if overcommit > rtol * max_cap:
        raise ScheduleViolation(
            f"capacity violated: worst overshoot {overcommit} MB/s across ports"
        )
