"""Shared earliest-fit book-ahead search.

Several layers run the same search: "find the earliest start within the
request's window at which a rate assignment fits the ledger" — the
:class:`~repro.control.service.ReservationService` on every submit, the
offline salvage pass of :mod:`repro.grid.failures`, and the re-admission /
rebooking paths of the fault-tolerant control plane.  This module is the
single implementation they all delegate to.

Candidate starts are the request's window opening plus every instant where
the pair's available capacity can change: usage breakpoints of both port
timelines and, on degraded ledgers, the capacity-change instants.  Between
two consecutive candidates the available capacity is constant, so checking
only candidates is exhaustive.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from collections.abc import Callable, Iterator
from typing import Protocol, runtime_checkable

from ..obs.telemetry import get_telemetry
from .allocation import Allocation
from .capacity import CapacityProfile
from .ledger import PortLedger
from .profile import RateProfile
from .request import Request

__all__ = [
    "FitProbe",
    "LedgerView",
    "RejectReason",
    "earliest_fit",
    "earliest_fit_profile",
    "shape_profile",
    "book_earliest",
    "deadline_tolerance",
]


@runtime_checkable
class LedgerView(Protocol):
    """The read surface the earliest-fit search needs from a ledger.

    :class:`~repro.core.ledger.PortLedger` satisfies it natively; the
    gateway's :class:`~repro.gateway.view.PairLedgerView` satisfies it by
    stitching two shard brokers together.  Only queries — the search never
    mutates; committing is :func:`book_earliest`'s (or a broker's) job.
    """

    def ingress_timeline(self, i: int) -> CapacityProfile: ...

    def egress_timeline(self, e: int) -> CapacityProfile: ...

    def degradation_edges(self, side: str, port: int) -> Iterator[float]: ...

    def free_capacity(self, side: str, port: int, t0: float, t1: float) -> float: ...

    def fits(self, ingress: int, egress: int, t0: float, t1: float, bw: float) -> bool: ...


class RejectReason(enum.Enum):
    """Machine-readable cause of a booking rejection.

    The earliest-fit search classifies every failed admission:

    - ``INGRESS_FULL`` / ``EGRESS_FULL`` — some rate meeting the deadline
      exists, but the named port side cannot carry it anywhere in the
      window (the side with less headroom at the first capacity-failing
      candidate start is blamed);
    - ``WINDOW_INFEASIBLE`` — the window cannot carry the volume even at
      ``MaxRate`` (``t_end − t_start < vol / MaxRate``), e.g. after a
      re-admission clipped the window;
    - ``MINRATE_EXCEEDS_MAXRATE`` — at every candidate start the
      deadline-implied rate exceeds what the policy/MaxRate can grant;
    - ``BROKER_UNAVAILABLE`` — a gateway-only outcome: a shard broker
      owning one of the request's ports stayed down through the two-phase
      retry budget (the monolithic service never emits it);
    - ``SHARD_UNREACHABLE`` — gateway-only: message-level faults (lost
      deliveries, a network partition) exhausted the coordinator's retry
      or RPC-deadline budget for a shard (see :mod:`repro.gateway.rpc`);
      unlike a plain reject the gateway backlog may re-admit the request
      once the shard answers again;
    - ``PROFILE_INFEASIBLE`` — a stepwise rate profile could not be
      granted: an explicit profile does not fit its window anywhere, or
      the shaping search could not carve the volume out of the residual
      capacity valleys.  Deliberately distinct from
      ``WINDOW_INFEASIBLE`` (which stays the *constant-rate* window
      verdict) so reject tallies separate the two admission models.
    """

    INGRESS_FULL = "ingress-full"
    EGRESS_FULL = "egress-full"
    WINDOW_INFEASIBLE = "window-infeasible"
    MINRATE_EXCEEDS_MAXRATE = "minrate-exceeds-maxrate"
    BROKER_UNAVAILABLE = "broker-unavailable"
    SHARD_UNREACHABLE = "shard-unreachable"
    PROFILE_INFEASIBLE = "profile-infeasible"


@dataclass
class FitProbe:
    """Diagnostics of one earliest-fit search (filled in by the search).

    Attributes
    ----------
    candidates:
        Candidate start times actually examined (including a successful
        one); "how hard did the search work".
    reason:
        Why the request could not be booked (``None`` on success).
    ingress_headroom / egress_headroom:
        Free bandwidth on each side at the first capacity-failing
        candidate, i.e. the headroom the request bounced off; ``None``
        when the search never reached a capacity check.
    """

    candidates: int = 0
    reason: RejectReason | None = None
    ingress_headroom: float | None = None
    egress_headroom: float | None = None


def deadline_tolerance(t_end: float) -> float:
    """Absolute-plus-relative slack for deadline comparisons.

    Matches the window checks of :func:`~repro.core.allocation.verify_schedule`:
    an absolute floor keeps the tolerance meaningful for deadlines at or
    near ``t = 0``, where a purely relative one collapses to nothing.
    """
    return 1e-9 * max(1.0, abs(t_end))


def _min_rate_for(request: Request, sigma: float) -> float | None:
    """Default rate rule: the deadline-implied minimum, capped at MaxRate."""
    needed = request.rate_for_deadline(sigma)
    if needed > request.max_rate * (1 + 1e-9):
        return None
    return min(needed, request.max_rate)


def earliest_fit(
    ledger: LedgerView,
    request: Request,
    rate_for: Callable[[float], float | None] | None = None,
    *,
    not_before: float | None = None,
    probe: FitProbe | None = None,
) -> Allocation | None:
    """Earliest feasible allocation for ``request`` against ``ledger``.

    ``rate_for(sigma)`` maps a candidate start to the rate to try there (a
    bandwidth policy bound to the request), returning ``None`` when no
    admissible rate exists from that start.  The default grants the
    deadline-implied minimum rate.  ``not_before`` further constrains the
    search (e.g. "no earlier than the service clock").  The ledger is not
    modified; use :func:`book_earliest` to also commit the result.

    When a :class:`FitProbe` is supplied the search fills it with decision
    diagnostics: candidate count, a :class:`RejectReason` on failure, and
    the per-side headroom the request bounced off.
    """
    if rate_for is None:
        rate_for = lambda sigma: _min_rate_for(request, sigma)  # noqa: E731
    earliest = request.t_start if not_before is None else max(request.t_start, not_before)
    latest = request.t_end - request.min_duration
    if latest < earliest:
        if probe is not None:
            probe.reason = RejectReason.WINDOW_INFEASIBLE
        _count_fit(request, candidates=0, accepted=False)
        return None
    starts = {earliest}
    points: list[float] = list(ledger.ingress_timeline(request.ingress).breakpoints())
    points.extend(ledger.egress_timeline(request.egress).breakpoints())
    points.extend(ledger.degradation_edges("ingress", request.ingress))
    points.extend(ledger.degradation_edges("egress", request.egress))
    for t in points:
        if earliest < t <= latest:
            starts.add(float(t))
    tol = deadline_tolerance(request.t_end)
    examined = 0
    saw_capacity_failure = False
    first_headroom: tuple[float, float] | None = None
    for sigma in sorted(starts):
        examined += 1
        bw = rate_for(sigma)
        if bw is None or bw <= 0:
            continue
        tau = sigma + request.volume / bw
        if tau > request.t_end + tol:
            continue
        if ledger.fits(request.ingress, request.egress, sigma, tau, bw):
            if probe is not None:
                probe.candidates = examined
            _count_fit(request, candidates=examined, accepted=True)
            return Allocation.for_request(request, bw, sigma=sigma)
        saw_capacity_failure = True
        if probe is not None and first_headroom is None:
            first_headroom = (
                ledger.free_capacity("ingress", request.ingress, sigma, tau),
                ledger.free_capacity("egress", request.egress, sigma, tau),
            )
    if probe is not None:
        probe.candidates = examined
        if first_headroom is not None:
            probe.ingress_headroom, probe.egress_headroom = first_headroom
        if saw_capacity_failure and first_headroom is not None:
            ing_free, egr_free = first_headroom
            probe.reason = (
                RejectReason.INGRESS_FULL
                if ing_free <= egr_free
                else RejectReason.EGRESS_FULL
            )
        elif saw_capacity_failure:
            probe.reason = RejectReason.INGRESS_FULL
        else:
            probe.reason = RejectReason.MINRATE_EXCEEDS_MAXRATE
    _count_fit(request, candidates=examined, accepted=False)
    return None


def _count_fit(request: Request, *, candidates: int, accepted: bool) -> None:
    """Maintain the booking-layer counters on the active telemetry handle."""
    tel = get_telemetry()
    if not tel.enabled:
        return
    outcome = "accepted" if accepted else "rejected"
    tel.metrics.counter(
        "booking_earliest_fit_total",
        "Earliest-fit searches by outcome.",
    ).inc(outcome=outcome)
    tel.metrics.counter(
        "booking_candidates_examined_total",
        "Candidate start times examined by the earliest-fit search.",
    ).inc(float(candidates))


def _pair_edges(ledger: LedgerView, request: Request, lo: float, hi: float) -> list[float]:
    """Instants in ``(lo, hi)`` where the pair's residual capacity can change."""
    edges: set[float] = set()
    points: list[float] = list(ledger.ingress_timeline(request.ingress).breakpoints())
    points.extend(ledger.egress_timeline(request.egress).breakpoints())
    points.extend(ledger.degradation_edges("ingress", request.ingress))
    points.extend(ledger.degradation_edges("egress", request.egress))
    for t in points:
        if lo < t < hi:
            edges.add(float(t))
    return sorted(edges)


def earliest_fit_profile(
    ledger: LedgerView,
    request: Request,
    profile: RateProfile,
    *,
    not_before: float | None = None,
    probe: FitProbe | None = None,
) -> Allocation | None:
    """Earliest placement of an *explicit* stepwise profile.

    The caller fixed the profile's shape; the search may only slide it
    later in time (never earlier than its own start or ``not_before``),
    trying the as-given position first and then every shift that aligns
    the profile start with a residual-capacity edge.  Between two
    consecutive edges the residual capacities are constant, so checking
    only edge-aligned shifts is exhaustive for the same reason the
    constant-rate search's candidate set is.

    Rejections classify as :attr:`RejectReason.PROFILE_INFEASIBLE` when
    the shape cannot meet the window at all, and as port-blame
    (``INGRESS_FULL`` / ``EGRESS_FULL``) when it fits the window but
    bounced off capacity everywhere.
    """
    earliest = request.t_start if not_before is None else max(request.t_start, not_before)
    tol = deadline_tolerance(request.t_end)
    if not profile or not profile.conserves(request.volume):
        if probe is not None:
            probe.reason = RejectReason.PROFILE_INFEASIBLE
        _count_shape(request, accepted=False)
        return None
    if profile.peak_rate > request.max_rate * (1 + 1e-9):
        if probe is not None:
            probe.reason = RejectReason.PROFILE_INFEASIBLE
        _count_shape(request, accepted=False)
        return None
    shift_min = max(0.0, earliest - profile.sigma)
    shift_max = request.t_end + tol - profile.tau
    if shift_max < shift_min:
        if probe is not None:
            probe.reason = RejectReason.PROFILE_INFEASIBLE
        _count_shape(request, accepted=False)
        return None
    base = profile.sigma + shift_min
    shifts = {shift_min}
    for t in _pair_edges(ledger, request, base, base + (shift_max - shift_min)):
        shifts.add(shift_min + (t - base))
    examined = 0
    first_headroom: tuple[float, float] | None = None
    for shift in sorted(shifts):
        examined += 1
        candidate = profile.shift(shift) if shift > 0.0 else profile
        if all(
            ledger.fits(request.ingress, request.egress, t0, t1, rate)
            for t0, t1, rate in candidate.segments
        ):
            if probe is not None:
                probe.candidates = examined
            _count_shape(request, accepted=True)
            return Allocation.for_profile(request, candidate)
        if first_headroom is None:
            first_headroom = (
                ledger.free_capacity(
                    "ingress", request.ingress, candidate.sigma, candidate.tau
                ),
                ledger.free_capacity(
                    "egress", request.egress, candidate.sigma, candidate.tau
                ),
            )
    if probe is not None:
        probe.candidates = examined
        if first_headroom is not None:
            probe.ingress_headroom, probe.egress_headroom = first_headroom
            ing_free, egr_free = first_headroom
            probe.reason = (
                RejectReason.INGRESS_FULL
                if ing_free <= egr_free
                else RejectReason.EGRESS_FULL
            )
        else:
            probe.reason = RejectReason.PROFILE_INFEASIBLE
    _count_shape(request, accepted=False)
    return None


def shape_profile(
    ledger: LedgerView,
    request: Request,
    *,
    not_before: float | None = None,
    max_rate: float | None = None,
    probe: FitProbe | None = None,
) -> RateProfile | None:
    """Carve a volume-conserving stepwise profile out of residual capacity.

    A greedy left-to-right water-fill: the request's window is cut into
    elementary intervals at every instant the pair's residual capacity can
    change; each interval contributes ``min(MaxRate, pair headroom)`` until
    the volume is delivered (the final step is truncated to conserve volume
    exactly).  Intervals with no headroom become gaps.  Returns ``None`` —
    classifying the refusal as :attr:`RejectReason.PROFILE_INFEASIBLE` —
    when the whole window cannot carry the volume even stepwise.

    This is the shaping half of the malleable admission path; the sliding
    half for caller-fixed shapes is :func:`earliest_fit_profile`.
    """
    earliest = request.t_start if not_before is None else max(request.t_start, not_before)
    cap = request.max_rate if max_rate is None else min(max_rate, request.max_rate)
    if earliest >= request.t_end or cap <= 0:
        if probe is not None:
            probe.reason = RejectReason.PROFILE_INFEASIBLE
        _count_shape(request, accepted=False)
        return None
    bounds = [earliest, *_pair_edges(ledger, request, earliest, request.t_end), request.t_end]
    segments: list[tuple[float, float, float]] = []
    remaining = request.volume
    examined = 0
    for a, b in zip(bounds, bounds[1:]):
        examined += 1
        rate = min(
            cap,
            ledger.free_capacity("ingress", request.ingress, a, b),
            ledger.free_capacity("egress", request.egress, a, b),
        )
        if rate <= 0.0:
            continue
        step = rate * (b - a)
        if step >= remaining:
            segments.append((a, a + remaining / rate, rate))
            remaining = 0.0
            break
        segments.append((a, b, rate))
        remaining -= step
    if probe is not None:
        probe.candidates = examined
    if remaining > 0.0 or not segments:
        if probe is not None:
            probe.reason = RejectReason.PROFILE_INFEASIBLE
        _count_shape(request, accepted=False)
        return None
    shaped = RateProfile(segments)
    _count_shape(request, accepted=True)
    return shaped


def _count_shape(request: Request, *, accepted: bool) -> None:
    """Maintain the profile-booking counters on the active telemetry handle."""
    tel = get_telemetry()
    if not tel.enabled:
        return
    outcome = "accepted" if accepted else "rejected"
    tel.metrics.counter(
        "booking_profile_total",
        "Profile shaping/placement searches by outcome.",
    ).inc(outcome=outcome)


def book_earliest(
    ledger: PortLedger,
    request: Request,
    rate_for: Callable[[float], float | None] | None = None,
    *,
    not_before: float | None = None,
    probe: FitProbe | None = None,
) -> Allocation | None:
    """:func:`earliest_fit`, committing the allocation when one is found."""
    allocation = earliest_fit(ledger, request, rate_for, not_before=not_before, probe=probe)
    if allocation is not None:
        ledger.allocate(
            allocation.ingress,
            allocation.egress,
            allocation.sigma,
            allocation.tau,
            allocation.bw,
        )
    return allocation
