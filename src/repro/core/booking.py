"""Shared earliest-fit book-ahead search.

Several layers run the same search: "find the earliest start within the
request's window at which a rate assignment fits the ledger" — the
:class:`~repro.control.service.ReservationService` on every submit, the
offline salvage pass of :mod:`repro.grid.failures`, and the re-admission /
rebooking paths of the fault-tolerant control plane.  This module is the
single implementation they all delegate to.

Candidate starts are the request's window opening plus every instant where
the pair's available capacity can change: usage breakpoints of both port
timelines and, on degraded ledgers, the capacity-change instants.  Between
two consecutive candidates the available capacity is constant, so checking
only candidates is exhaustive.
"""

from __future__ import annotations

from collections.abc import Callable

from .allocation import Allocation
from .ledger import PortLedger
from .request import Request

__all__ = ["earliest_fit", "book_earliest", "deadline_tolerance"]


def deadline_tolerance(t_end: float) -> float:
    """Absolute-plus-relative slack for deadline comparisons.

    Matches the window checks of :func:`~repro.core.allocation.verify_schedule`:
    an absolute floor keeps the tolerance meaningful for deadlines at or
    near ``t = 0``, where a purely relative one collapses to nothing.
    """
    return 1e-9 * max(1.0, abs(t_end))


def _min_rate_for(request: Request, sigma: float) -> float | None:
    """Default rate rule: the deadline-implied minimum, capped at MaxRate."""
    needed = request.rate_for_deadline(sigma)
    if needed > request.max_rate * (1 + 1e-9):
        return None
    return min(needed, request.max_rate)


def earliest_fit(
    ledger: PortLedger,
    request: Request,
    rate_for: Callable[[float], float | None] | None = None,
    *,
    not_before: float | None = None,
) -> Allocation | None:
    """Earliest feasible allocation for ``request`` against ``ledger``.

    ``rate_for(sigma)`` maps a candidate start to the rate to try there (a
    bandwidth policy bound to the request), returning ``None`` when no
    admissible rate exists from that start.  The default grants the
    deadline-implied minimum rate.  ``not_before`` further constrains the
    search (e.g. "no earlier than the service clock").  The ledger is not
    modified; use :func:`book_earliest` to also commit the result.
    """
    if rate_for is None:
        rate_for = lambda sigma: _min_rate_for(request, sigma)  # noqa: E731
    earliest = request.t_start if not_before is None else max(request.t_start, not_before)
    latest = request.t_end - request.min_duration
    if latest < earliest:
        return None
    starts = {earliest}
    points: list[float] = list(ledger.ingress_timeline(request.ingress).breakpoints())
    points.extend(ledger.egress_timeline(request.egress).breakpoints())
    points.extend(ledger.degradation_breakpoints("ingress", request.ingress))
    points.extend(ledger.degradation_breakpoints("egress", request.egress))
    for t in points:
        if earliest < t <= latest:
            starts.add(float(t))
    tol = deadline_tolerance(request.t_end)
    for sigma in sorted(starts):
        bw = rate_for(sigma)
        if bw is None or bw <= 0:
            continue
        tau = sigma + request.volume / bw
        if tau > request.t_end + tol:
            continue
        if ledger.fits(request.ingress, request.egress, sigma, tau, bw):
            return Allocation.for_request(request, bw, sigma=sigma)
    return None


def book_earliest(
    ledger: PortLedger,
    request: Request,
    rate_for: Callable[[float], float | None] | None = None,
    *,
    not_before: float | None = None,
) -> Allocation | None:
    """:func:`earliest_fit`, committing the allocation when one is found."""
    allocation = earliest_fit(ledger, request, rate_for, not_before=not_before)
    if allocation is not None:
        ledger.allocate(
            allocation.ingress,
            allocation.egress,
            allocation.sigma,
            allocation.tau,
            allocation.bw,
        )
    return allocation
