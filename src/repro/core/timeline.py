"""Backwards-compatible alias of the capacity kernel's profile type.

``BandwidthTimeline`` used to be the concrete breakpoint-list class that
every layer poked at; the implementation now lives in
:mod:`repro.core.capacity` behind the pluggable
:class:`~repro.core.capacity.CapacityProfile` interface (breakpoint-list
and vectorized numpy backends, selected via
:func:`~repro.core.capacity.set_default_backend`).

The historical spellings keep working:

- ``BandwidthTimeline()`` constructs a profile on the configured default
  backend (it *is* :class:`CapacityProfile`, whose constructor
  dispatches);
- ``isinstance(x, BandwidthTimeline)`` is true for every backend;
- annotations written against ``BandwidthTimeline`` mean "any profile".

New code should import from :mod:`repro.core.capacity` directly.
"""

from __future__ import annotations

from .capacity import CapacityProfile

__all__ = ["BandwidthTimeline"]

BandwidthTimeline = CapacityProfile
