"""Piecewise-constant bandwidth timelines.

Every scheduler in this library must answer the same question: *how much
bandwidth is already committed on a port over a time interval?*
:class:`BandwidthTimeline` represents committed bandwidth as a
piecewise-constant function of time and supports O(log n + k) interval
updates and queries (n breakpoints, k touched segments).

This is the allocation ledger underlying :class:`repro.core.ledger.PortLedger`
and the independent schedule verifier.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Iterator

import numpy as np

__all__ = ["BandwidthTimeline"]


class BandwidthTimeline:
    """A piecewise-constant function ``usage(t) >= 0`` over the real line.

    The function starts identically zero.  :meth:`add` adds a constant over a
    half-open interval ``[t0, t1)``; negative deltas release bandwidth.
    Adjacent segments with equal values are coalesced to keep the breakpoint
    list compact over long simulations.
    """

    __slots__ = ("_times", "_usage")

    def __init__(self) -> None:
        # _usage[k] applies on [_times[k], _times[k+1]); the last segment
        # extends to +inf.  The leading -inf sentinel keeps indexing simple.
        self._times: list[float] = [-math.inf]
        self._usage: list[float] = [0.0]

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _segment_index(self, t: float) -> int:
        """Index of the segment containing time ``t``."""
        return bisect_right(self._times, t) - 1

    def _ensure_breakpoint(self, t: float) -> int:
        """Insert a breakpoint at ``t`` (if absent) and return its index."""
        idx = self._segment_index(t)
        if self._times[idx] == t:  # gridlint: disable=GL003 -- breakpoint identity: t was bisected into _times, only an exact hit reuses the entry
            return idx
        self._times.insert(idx + 1, t)
        self._usage.insert(idx + 1, self._usage[idx])
        return idx + 1

    def _coalesce(self, lo: int, hi: int) -> None:
        """Merge equal-valued adjacent segments in index range [lo, hi]."""
        lo = max(lo, 1)
        hi = min(hi, len(self._times) - 1)
        # Walk backwards so deletions do not disturb earlier indices.
        for k in range(hi, lo - 1, -1):
            if k < len(self._times) and self._usage[k] == self._usage[k - 1]:
                del self._times[k]
                del self._usage[k]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, t0: float, t1: float, delta: float) -> None:
        """Add ``delta`` to the usage over ``[t0, t1)``.

        ``delta`` may be negative (releasing a previous allocation).  Empty
        or inverted intervals are rejected.
        """
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        if delta == 0.0:
            return
        i0 = self._ensure_breakpoint(t0)
        i1 = self._ensure_breakpoint(t1)
        for k in range(i0, i1):
            self._usage[k] += delta
        self._coalesce(i0 - 1, i1 + 1)

    def clear(self) -> None:
        """Reset to the identically-zero function."""
        self._times = [-math.inf]
        self._usage = [0.0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def usage_at(self, t: float) -> float:
        """Usage at time ``t`` (right-continuous: the value on ``[t, ...)``)."""
        return self._usage[self._segment_index(t)]

    def max_usage(self, t0: float, t1: float) -> float:
        """Maximum usage over the interval ``[t0, t1)``."""
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        i0 = self._segment_index(t0)
        i1 = self._segment_index(t1)
        if self._times[i1] == t1:  # gridlint: disable=GL003 -- breakpoint identity: half-open [t0, t1) excludes an exactly-aligned final segment
            i1 -= 1
        return max(self._usage[i0 : i1 + 1])

    def min_usage(self, t0: float, t1: float) -> float:
        """Minimum usage over the interval ``[t0, t1)``."""
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        i0 = self._segment_index(t0)
        i1 = self._segment_index(t1)
        if self._times[i1] == t1:  # gridlint: disable=GL003 -- breakpoint identity: half-open [t0, t1) excludes an exactly-aligned final segment
            i1 -= 1
        return min(self._usage[i0 : i1 + 1])

    def integral(self, t0: float, t1: float) -> float:
        """``∫ usage(t) dt`` over ``[t0, t1)`` (MB when usage is MB/s)."""
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        total = 0.0
        for seg_start, seg_end, value in self.segments(t0, t1):
            total += value * (seg_end - seg_start)
        return total

    def segments(self, t0: float | None = None, t1: float | None = None) -> Iterator[tuple[float, float, float]]:
        """Iterate ``(start, end, usage)`` segments clipped to ``[t0, t1)``.

        Without bounds, yields all finite segments where usage is non-zero or
        interior (the infinite zero tails are skipped).
        """
        n = len(self._times)
        for k in range(n):
            seg_start = self._times[k]
            seg_end = self._times[k + 1] if k + 1 < n else math.inf
            if t0 is not None:
                seg_start = max(seg_start, t0)
            if t1 is not None:
                seg_end = min(seg_end, t1)
            if seg_start >= seg_end:
                continue
            if math.isinf(seg_start) or math.isinf(seg_end):
                if self._usage[k] == 0.0:
                    continue
            yield (seg_start, seg_end, self._usage[k])

    def breakpoints(self) -> np.ndarray:
        """The finite breakpoints as a numpy array."""
        return np.array([t for t in self._times if math.isfinite(t)], dtype=np.float64)

    @property
    def num_segments(self) -> int:
        """Current number of stored segments (ledger compactness metric)."""
        return len(self._times)

    def global_max(self) -> float:
        """Maximum usage over all time."""
        return max(self._usage)

    def is_zero(self, tol: float = 1e-9) -> bool:
        """True when no bandwidth is committed anywhere.

        ``tol`` absorbs float residue left by add/release cycles of values
        that are not exactly representable.
        """
        return all(abs(u) <= tol for u in self._usage)

    # ------------------------------------------------------------------
    def copy(self) -> BandwidthTimeline:
        """An independent copy of this timeline."""
        clone = BandwidthTimeline()
        clone._times = list(self._times)
        clone._usage = list(self._usage)
        return clone

    def __repr__(self) -> str:
        finite = [(t, u) for t, u in zip(self._times, self._usage) if math.isfinite(t)]
        return f"BandwidthTimeline({finite!r})"
