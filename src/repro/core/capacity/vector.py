"""The vectorized backend: numpy breakpoint arrays with cached range queries.

Same piecewise-constant semantics as the breakpoint-list backend, with the
hot operations pushed into C:

- breakpoints and values live in parallel ``float64`` arrays; point and
  range lookups are ``np.searchsorted`` (identical to ``bisect_right``)
  plus a contiguous slice reduction;
- :meth:`VectorProfile.add` applies a range add as one vectorized slice
  ``+=`` and coalesces equal neighbours with one boolean mask;
- :meth:`VectorProfile.add_batch` inserts every new breakpoint in a single
  ``np.insert`` before applying the deltas in order (bit-identical to the
  sequential adds — splitting a segment first and adding later commutes);
- a lazily-computed **suffix max** (``max(values[k:])`` for every ``k``) is
  cached between mutations, answering the open-ended range-max probes an
  ``earliest_fit``-heavy admission sweep hammers — "does this rate fit
  from σ to beyond the last committed booking?" — in O(log n);
- a lazily-built **sparse table** (doubling prefix-max levels,
  ``table[k][i] = max(values[i : i + 2**k])``) is cached alongside it,
  answering *bounded* range-max queries in O(1) after the O(log n)
  bisections.  An earliest-fit search issues two such queries per
  candidate start against an unchanged profile, so the O(n log n) build
  amortises across the sweep.

Arithmetic is element-wise IEEE-identical to the breakpoint backend (same
additions in the same per-element order, same exact-equality coalescing),
so the two backends agree decision-for-decision, not merely within
tolerance; ``benchmarks/bench_capacity.py`` gates both the agreement and
the speedup.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import ClassVar

import numpy as np

from .interface import CapacityProfile

__all__ = ["VectorProfile"]


class VectorProfile(CapacityProfile):
    """Numpy-backed :class:`~repro.core.capacity.interface.CapacityProfile`."""

    __slots__ = ("_breakpoints", "_values", "_peak", "_suffix", "_rmq")

    backend_name: ClassVar[str] = "vector"

    def __init__(self) -> None:
        # _values[k] applies on [_breakpoints[k], _breakpoints[k+1]); the
        # last segment extends to +inf.  The leading -inf sentinel keeps
        # indexing simple and searchsorted O(log n).
        self._breakpoints: np.ndarray = np.array([-math.inf], dtype=np.float64)
        self._values: np.ndarray = np.array([0.0], dtype=np.float64)
        # Caches, dropped on any mutation.
        self._peak: float | None = 0.0
        self._suffix: np.ndarray | None = None
        self._rmq: list[np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _segment_index(self, t: float) -> int:
        """Index of the segment containing time ``t``."""
        return int(np.searchsorted(self._breakpoints, t, side="right")) - 1

    def _ensure_breakpoint(self, t: float) -> int:
        """Insert a breakpoint at ``t`` (if absent) and return its index."""
        idx = self._segment_index(t)
        if self._breakpoints[idx] == t:  # gridlint: disable=GL003 -- breakpoint identity: t was bisected into _breakpoints, only an exact hit reuses the entry
            return idx
        self._breakpoints = np.insert(self._breakpoints, idx + 1, t)
        self._values = np.insert(self._values, idx + 1, self._values[idx])
        return idx + 1

    def _coalesce(self, lo: int, hi: int) -> None:
        """Merge equal-valued adjacent segments in index range [lo, hi]."""
        lo = max(lo, 1)
        hi = min(hi, len(self._breakpoints) - 1)
        if hi < lo:
            return
        merge = self._values[lo : hi + 1] == self._values[lo - 1 : hi]
        if not merge.any():
            return
        keep = np.ones(len(self._breakpoints), dtype=bool)
        keep[lo : hi + 1] = ~merge
        self._breakpoints = self._breakpoints[keep]
        self._values = self._values[keep]

    def _invalidate(self) -> None:
        self._peak = None
        self._suffix = None
        self._rmq = None

    def _suffix_max(self) -> np.ndarray:
        """``suffix[k] = max(values[k:])``, cached until the next mutation."""
        if self._suffix is None:
            self._suffix = np.maximum.accumulate(self._values[::-1])[::-1]
        return self._suffix

    def _sparse_table(self) -> list[np.ndarray]:
        """Doubling range-max levels, cached until the next mutation.

        ``levels[k][i] == max(values[i : i + 2**k])``; any inclusive index
        range ``[i0, i1]`` is the max of two overlapping power-of-two
        blocks.  Max is idempotent, so the overlap is harmless and the
        result is bit-identical to a direct slice reduction.
        """
        if self._rmq is None:
            n = len(self._values)
            levels = [self._values]
            width = 1
            while width * 2 <= n:
                prev = levels[-1]
                levels.append(np.maximum(prev[: n - width * 2 + 1], prev[width : n - width + 1]))
                width *= 2
            self._rmq = levels
        return self._rmq

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, t0: float, t1: float, delta: float) -> None:
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        if delta == 0.0:
            return
        i0 = self._ensure_breakpoint(t0)
        i1 = self._ensure_breakpoint(t1)
        self._values[i0:i1] += delta
        self._coalesce(i0 - 1, i1 + 1)
        self._invalidate()

    def add_batch(self, intervals: Iterable[tuple[float, float, float]]) -> None:
        batch = [(t0, t1, delta) for t0, t1, delta in intervals]
        for t0, t1, _ in batch:
            if not (t1 > t0):
                raise ValueError(f"empty interval [{t0}, {t1})")
        batch = [iv for iv in batch if iv[2] != 0.0]
        if not batch:
            return
        # One pass of breakpoint insertion for the whole batch.  Splitting a
        # segment copies its value, so pre-splitting before the deltas land
        # yields the same per-element additions as interleaved inserts.
        edges = sorted({t for t0, t1, _ in batch for t in (t0, t1)})
        donors = np.searchsorted(self._breakpoints, edges, side="right") - 1
        new_mask = self._breakpoints[donors] != np.asarray(edges)
        if new_mask.any():
            new_pts = np.asarray(edges, dtype=np.float64)[new_mask]
            donor_idx = donors[new_mask]
            self._breakpoints = np.insert(self._breakpoints, donor_idx + 1, new_pts)
            self._values = np.insert(self._values, donor_idx + 1, self._values[donor_idx])
        for t0, t1, delta in batch:
            i0 = self._segment_index(t0)
            i1 = self._segment_index(t1)
            self._values[i0:i1] += delta
        # Adjacent-equal pairs can only appear where the batch touched, but
        # after N interleaved adds that is potentially everywhere: coalesce
        # the whole array (the no-adjacent-equals invariant held before).
        self._coalesce(1, len(self._breakpoints) - 1)
        self._invalidate()

    def clear(self) -> None:
        self._breakpoints = np.array([-math.inf], dtype=np.float64)
        self._values = np.array([0.0], dtype=np.float64)
        self._peak = 0.0
        self._suffix = None
        self._rmq = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def usage_at(self, t: float) -> float:
        return float(self._values[self._segment_index(t)])

    def _range_indices(self, t0: float, t1: float) -> tuple[int, int]:
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        i0 = self._segment_index(t0)
        i1 = self._segment_index(t1)
        if self._breakpoints[i1] == t1:  # gridlint: disable=GL003 -- breakpoint identity: half-open [t0, t1) excludes an exactly-aligned final segment
            i1 -= 1
        return i0, i1

    def max_usage(self, t0: float, t1: float) -> float:
        i0, i1 = self._range_indices(t0, t1)
        if i1 == len(self._values) - 1:
            # Open-ended to the right: the cached suffix max answers without
            # touching the values array (the earliest_fit-probe fast path).
            return float(self._suffix_max()[i0])
        level = (i1 - i0 + 1).bit_length() - 1
        table = self._sparse_table()[level]
        left, right = table[i0], table[i1 - (1 << level) + 1]
        return float(left if left >= right else right)

    def min_usage(self, t0: float, t1: float) -> float:
        i0, i1 = self._range_indices(t0, t1)
        return float(self._values[i0 : i1 + 1].min())

    def segments(
        self, t0: float | None = None, t1: float | None = None
    ) -> Iterator[tuple[float, float, float]]:
        n = len(self._breakpoints)
        for k in range(n):
            seg_start = float(self._breakpoints[k])
            seg_end = float(self._breakpoints[k + 1]) if k + 1 < n else math.inf
            if t0 is not None:
                seg_start = max(seg_start, t0)
            if t1 is not None:
                seg_end = min(seg_end, t1)
            if seg_start >= seg_end:
                continue
            value = float(self._values[k])
            if math.isinf(seg_start) or math.isinf(seg_end):
                if value == 0.0:
                    continue
            yield (seg_start, seg_end, value)

    def breakpoints(self) -> np.ndarray:
        pts = self._breakpoints
        return pts[np.isfinite(pts)].copy()

    @property
    def num_segments(self) -> int:
        return len(self._breakpoints)

    def global_max(self) -> float:
        if self._peak is None:
            self._peak = float(self._values.max())
        return self._peak

    def is_zero(self, tol: float = 1e-9) -> bool:
        return bool(np.all(np.abs(self._values) <= tol))

    # ------------------------------------------------------------------
    def copy(self) -> VectorProfile:
        clone = VectorProfile()
        clone._breakpoints = self._breakpoints.copy()
        clone._values = self._values.copy()
        clone._peak = self._peak
        clone._suffix = None
        clone._rmq = None
        return clone
