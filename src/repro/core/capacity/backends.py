"""Backend registry and selection for the capacity kernel.

Profiles are constructed through :func:`make_profile`; which backend class
that yields is decided here.  The default is the breakpoint-list backend
(bit-for-bit the library's historical behaviour); the vectorized backend
is opted into per call (``make_profile("vector")``), per scope
(:func:`use_backend`), process-wide (:func:`set_default_backend`) or via
the ``REPRO_CAPACITY_BACKEND`` environment variable.

Selection is deliberately coarse: a profile keeps its backend for life
(there is no migration), and mixing backends across the ports of one
ledger is allowed but pointless.  The equivalence suite guarantees any
choice yields the same admission decisions.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager

from ..errors import ConfigurationError
from .breakpoint import BreakpointProfile
from .interface import CapacityProfile
from .vector import VectorProfile

__all__ = [
    "available_backends",
    "get_default_backend",
    "make_profile",
    "set_default_backend",
    "use_backend",
]

#: Environment variable overriding the initial default backend.
ENV_VAR = "REPRO_CAPACITY_BACKEND"

_BACKENDS: dict[str, type[CapacityProfile]] = {
    BreakpointProfile.backend_name: BreakpointProfile,
    VectorProfile.backend_name: VectorProfile,
}

_default_backend: str | None = None


def available_backends() -> tuple[str, ...]:
    """The registered backend names, sorted."""
    return tuple(sorted(_BACKENDS))


def _resolve(name: str) -> type[CapacityProfile]:
    try:
        return _BACKENDS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown capacity backend {name!r}; available: {', '.join(available_backends())}"
        ) from None


def get_default_backend() -> str:
    """The backend :func:`make_profile` uses when none is named."""
    global _default_backend
    if _default_backend is None:
        name = os.environ.get(ENV_VAR, BreakpointProfile.backend_name)
        _resolve(name)  # fail fast on a typo in the environment
        _default_backend = name
    return _default_backend


def set_default_backend(name: str) -> None:
    """Make ``name`` the process-wide default backend."""
    global _default_backend
    _resolve(name)
    _default_backend = name


def make_profile(backend: str | None = None) -> CapacityProfile:
    """A fresh identically-zero profile on ``backend`` (default: configured)."""
    return _resolve(backend if backend is not None else get_default_backend())()


@contextmanager
def use_backend(name: str) -> Iterator[None]:
    """Scope the default backend to ``name`` (tests, benchmarks, sweeps)."""
    previous = get_default_backend()
    set_default_backend(name)
    try:
        yield
    finally:
        set_default_backend(previous)
