"""Canonical slack conventions for capacity comparisons.

Every layer that compares committed bandwidth against a port capacity must
use the same numerical slack, or two code paths could disagree about one
admission.  These helpers pin the two forms that exist in the codebase —
bit-for-bit the historical expressions, so routing a call site through
them never flips a decision:

- :func:`fits_under` — the ledger/broker form
  ``usage + bw <= capacity + capacity * CAPACITY_SLACK``;
- :func:`slack_capacity` — the slot/occupancy-packing form
  ``capacity * (1 + CAPACITY_SLACK)`` used as a per-interval budget;
- :data:`UTILISATION_LIMIT` — the dimensionless threshold
  ``1 + CAPACITY_SLACK`` for utilisation-cost packing (Algorithm 3).

The two forms differ by at most one ulp; they are kept distinct precisely
so that moving a call site into the kernel is decision-invariant.
"""

from __future__ import annotations

from .interface import CAPACITY_SLACK

__all__ = ["CAPACITY_SLACK", "UTILISATION_LIMIT", "fits_under", "slack_capacity"]

#: Utilisation-cost acceptance threshold: a candidate whose worst
#: post-acceptance port utilisation exceeds this overflows a port.
UTILISATION_LIMIT: float = 1.0 + CAPACITY_SLACK


def fits_under(usage: float, bw: float, capacity: float) -> bool:
    """Would ``bw`` on top of ``usage`` stay within ``capacity``?

    The ledger form of the slack convention:
    ``usage + bw <= capacity + capacity * CAPACITY_SLACK``.
    """
    return usage + bw <= capacity + capacity * CAPACITY_SLACK


def slack_capacity(capacity: float) -> float:
    """``capacity`` widened by the canonical slack (per-interval budgets)."""
    return capacity * (1.0 + CAPACITY_SLACK)
