"""The breakpoint-list backend: the library's original implementation.

Moved verbatim from the former ``repro.core.timeline.BandwidthTimeline``
(only the internals were renamed to the kernel's canonical
``_breakpoints`` / ``_values``), so every decision made through it is
bit-identical to the pre-kernel code.  O(log n + k) interval updates and
queries (n breakpoints, k touched segments) on plain Python lists: the
reference backend the vectorized one is fuzzed against.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections.abc import Iterator
from typing import ClassVar

import numpy as np

from .interface import CapacityProfile

__all__ = ["BreakpointProfile"]


class BreakpointProfile(CapacityProfile):
    """Breakpoint-list :class:`~repro.core.capacity.interface.CapacityProfile`."""

    __slots__ = ("_breakpoints", "_values", "_peak")

    backend_name: ClassVar[str] = "breakpoint"

    def __init__(self) -> None:
        # _values[k] applies on [_breakpoints[k], _breakpoints[k+1]); the
        # last segment extends to +inf.  The leading -inf sentinel keeps
        # indexing simple.
        self._breakpoints: list[float] = [-math.inf]
        self._values: list[float] = [0.0]
        # Cached global_max; None after any mutation.
        self._peak: float | None = 0.0

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _segment_index(self, t: float) -> int:
        """Index of the segment containing time ``t``."""
        return bisect_right(self._breakpoints, t) - 1

    def _ensure_breakpoint(self, t: float) -> int:
        """Insert a breakpoint at ``t`` (if absent) and return its index."""
        idx = self._segment_index(t)
        if self._breakpoints[idx] == t:  # gridlint: disable=GL003 -- breakpoint identity: t was bisected into _breakpoints, only an exact hit reuses the entry
            return idx
        self._breakpoints.insert(idx + 1, t)
        self._values.insert(idx + 1, self._values[idx])
        return idx + 1

    def _coalesce(self, lo: int, hi: int) -> None:
        """Merge equal-valued adjacent segments in index range [lo, hi]."""
        lo = max(lo, 1)
        hi = min(hi, len(self._breakpoints) - 1)
        # Walk backwards so deletions do not disturb earlier indices.
        for k in range(hi, lo - 1, -1):
            if k < len(self._breakpoints) and self._values[k] == self._values[k - 1]:
                del self._breakpoints[k]
                del self._values[k]

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, t0: float, t1: float, delta: float) -> None:
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        if delta == 0.0:
            return
        i0 = self._ensure_breakpoint(t0)
        i1 = self._ensure_breakpoint(t1)
        for k in range(i0, i1):
            self._values[k] += delta
        self._coalesce(i0 - 1, i1 + 1)
        self._peak = None

    def clear(self) -> None:
        self._breakpoints = [-math.inf]
        self._values = [0.0]
        self._peak = 0.0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def usage_at(self, t: float) -> float:
        return self._values[self._segment_index(t)]

    def max_usage(self, t0: float, t1: float) -> float:
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        i0 = self._segment_index(t0)
        i1 = self._segment_index(t1)
        if self._breakpoints[i1] == t1:  # gridlint: disable=GL003 -- breakpoint identity: half-open [t0, t1) excludes an exactly-aligned final segment
            i1 -= 1
        return max(self._values[i0 : i1 + 1])

    def min_usage(self, t0: float, t1: float) -> float:
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        i0 = self._segment_index(t0)
        i1 = self._segment_index(t1)
        if self._breakpoints[i1] == t1:  # gridlint: disable=GL003 -- breakpoint identity: half-open [t0, t1) excludes an exactly-aligned final segment
            i1 -= 1
        return min(self._values[i0 : i1 + 1])

    def segments(
        self, t0: float | None = None, t1: float | None = None
    ) -> Iterator[tuple[float, float, float]]:
        n = len(self._breakpoints)
        for k in range(n):
            seg_start = self._breakpoints[k]
            seg_end = self._breakpoints[k + 1] if k + 1 < n else math.inf
            if t0 is not None:
                seg_start = max(seg_start, t0)
            if t1 is not None:
                seg_end = min(seg_end, t1)
            if seg_start >= seg_end:
                continue
            if math.isinf(seg_start) or math.isinf(seg_end):
                if self._values[k] == 0.0:
                    continue
            yield (seg_start, seg_end, self._values[k])

    def breakpoints(self) -> np.ndarray:
        return np.array([t for t in self._breakpoints if math.isfinite(t)], dtype=np.float64)

    @property
    def num_segments(self) -> int:
        return len(self._breakpoints)

    def global_max(self) -> float:
        if self._peak is None:
            self._peak = max(self._values)
        return self._peak

    def is_zero(self, tol: float = 1e-9) -> bool:
        return all(abs(u) <= tol for u in self._values)

    # ------------------------------------------------------------------
    def copy(self) -> BreakpointProfile:
        clone = BreakpointProfile()
        clone._breakpoints = list(self._breakpoints)
        clone._values = list(self._values)
        clone._peak = self._peak
        return clone
