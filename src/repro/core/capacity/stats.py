"""Volume and utilisation accounting over capacity profiles.

The carried-volume and per-port-utilisation sums behind
:meth:`repro.core.ledger.PortLedger.carried_volume` and the metrics
layer's Jain-index inputs, expressed once against the kernel interface so
the accounting cannot drift between consumers.  Sums run left to right in
iteration order — both backends then produce bit-identical totals.
"""

from __future__ import annotations

from collections.abc import Iterable

from .interface import CapacityProfile

__all__ = ["carried_volume", "utilisation"]


def carried_volume(profiles: Iterable[CapacityProfile], t0: float, t1: float) -> float:
    """Summed ``∫ usage dt`` over ``profiles`` on ``[t0, t1)`` (MB)."""
    total = 0.0
    for profile in profiles:
        total += profile.integral(t0, t1)
    return total


def utilisation(profile: CapacityProfile, capacity: float, t0: float, t1: float) -> float:
    """Time-averaged fraction of ``capacity`` carried over ``[t0, t1)``."""
    horizon = t1 - t0
    if horizon <= 0 or capacity <= 0:
        return 0.0
    return profile.integral(t0, t1) / (capacity * horizon)
