"""The :class:`CapacityProfile` contract — Eq. 1's arithmetic, owned here.

Every admission decision in the reproduction reduces to range queries over
per-port bandwidth profiles: *how much bandwidth is already committed on a
port over a time interval?*  A :class:`CapacityProfile` is a
piecewise-constant function ``usage(t)`` over the real line supporting

- **range add** (:meth:`~CapacityProfile.add`, :meth:`~CapacityProfile.add_batch`),
- **range max / min** (:meth:`~CapacityProfile.max_usage`,
  :meth:`~CapacityProfile.min_usage`),
- **point query** (:meth:`~CapacityProfile.usage_at`),
- **integral** (:meth:`~CapacityProfile.integral`),
- **segment iteration** (:meth:`~CapacityProfile.segments`),
- **copy / snapshot** (:meth:`~CapacityProfile.copy`).

Two interchangeable backends implement it: the breakpoint-list
implementation (:class:`~repro.core.capacity.breakpoint.BreakpointProfile`)
and the vectorized numpy one
(:class:`~repro.core.capacity.vector.VectorProfile`).  Both must agree
decision-for-decision — the backend-equivalence fuzz suite and the
``bench_capacity`` gate hold them to it.

No module outside ``repro.core.capacity`` may touch a profile's breakpoint
internals (``_breakpoints`` / ``_values``) or construct a backend class
directly — gridlint rule GL009 enforces the boundary.  Profiles are built
via :func:`~repro.core.capacity.backends.make_profile` (or the
backwards-compatible ``BandwidthTimeline`` alias, which dispatches to the
configured default backend).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Iterator
from typing import ClassVar

import numpy as np

__all__ = ["CAPACITY_SLACK", "CapacityProfile"]

#: Relative numerical slack applied to capacity comparisons.  Bandwidth
#: values are sums of floats; a strict ``<=`` would reject exact fits that
#: differ by one ulp.  This is the kernel's canonical constant — every
#: layer (ledger, brokers, schedulers) imports it from here.
CAPACITY_SLACK: float = 1e-9


class CapacityProfile:
    """A piecewise-constant function ``usage(t)`` over the real line.

    The function starts identically zero.  :meth:`add` adds a constant over
    a half-open interval ``[t0, t1)``; negative deltas release bandwidth.
    Adjacent segments with equal values are coalesced to keep the profile
    compact over long simulations.

    Instantiating :class:`CapacityProfile` directly returns an instance of
    the configured default backend (see
    :func:`~repro.core.capacity.backends.set_default_backend`), so the
    historical ``BandwidthTimeline()`` spelling keeps working.  Subclasses
    are the backends; they must implement every method below.
    """

    __slots__ = ()

    #: Short name of the backend implementing this profile.
    backend_name: ClassVar[str] = "abstract"

    def __new__(cls) -> CapacityProfile:
        if cls is CapacityProfile:
            from .backends import make_profile

            return make_profile()
        return object.__new__(cls)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, t0: float, t1: float, delta: float) -> None:
        """Add ``delta`` to the usage over ``[t0, t1)``.

        ``delta`` may be negative (releasing a previous allocation).  Empty
        or inverted intervals are rejected with :class:`ValueError`.
        """
        raise NotImplementedError

    def add_batch(self, intervals: Iterable[tuple[float, float, float]]) -> None:
        """Apply many ``(t0, t1, delta)`` range adds in one call.

        Semantically identical to calling :meth:`add` per interval, in
        order; backends may batch the breakpoint insertion.  The default
        implementation is the sequential loop.
        """
        for t0, t1, delta in intervals:
            self.add(t0, t1, delta)

    def clear(self) -> None:
        """Reset to the identically-zero function."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def usage_at(self, t: float) -> float:
        """Usage at time ``t`` (right-continuous: the value on ``[t, ...)``)."""
        raise NotImplementedError

    def max_usage(self, t0: float, t1: float) -> float:
        """Maximum usage over the interval ``[t0, t1)``."""
        raise NotImplementedError

    def min_usage(self, t0: float, t1: float) -> float:
        """Minimum usage over the interval ``[t0, t1)``."""
        raise NotImplementedError

    def integral(self, t0: float, t1: float) -> float:
        """``∫ usage(t) dt`` over ``[t0, t1)`` (MB when usage is MB/s).

        Summed segment-by-segment left to right so both backends produce
        bit-identical totals.
        """
        if not (t1 > t0):
            raise ValueError(f"empty interval [{t0}, {t1})")
        total = 0.0
        for seg_start, seg_end, value in self.segments(t0, t1):
            total += value * (seg_end - seg_start)
        return total

    def segments(
        self, t0: float | None = None, t1: float | None = None
    ) -> Iterator[tuple[float, float, float]]:
        """Iterate ``(start, end, usage)`` segments clipped to ``[t0, t1)``.

        Without bounds, yields all finite segments where usage is non-zero
        or interior (the infinite zero tails are skipped).
        """
        raise NotImplementedError

    def breakpoints(self) -> np.ndarray:
        """The finite breakpoints as a numpy array."""
        raise NotImplementedError

    @property
    def num_segments(self) -> int:
        """Current number of stored segments (profile compactness metric)."""
        raise NotImplementedError

    def global_max(self) -> float:
        """Maximum usage over all time.

        Both backends cache this — it is the all-time peak behind the
        gateway's headroom fast path, probed once per admission — and
        invalidate the cache on every mutation.
        """
        raise NotImplementedError

    def is_zero(self, tol: float = 1e-9) -> bool:
        """True when no bandwidth is committed anywhere.

        ``tol`` absorbs float residue left by add/release cycles of values
        that are not exactly representable.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def copy(self) -> CapacityProfile:
        """An independent copy of this profile (same backend)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        finite = [
            (seg_start, value)
            for seg_start, _, value in self.segments()
            if math.isfinite(seg_start)
        ]
        return f"{type(self).__name__}({finite!r})"
