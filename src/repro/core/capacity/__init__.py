"""``repro.core.capacity`` — the pluggable capacity kernel.

The one place in the library that stores and queries per-port bandwidth
profiles (Eq. 1's range-max/range-add arithmetic).  Everything above —
:class:`~repro.core.ledger.PortLedger`, the booking search, the gateway's
shard brokers and headroom cache, the scheduler families, the metrics
accounting — talks to the :class:`CapacityProfile` interface; gridlint
rule GL009 keeps the breakpoint internals private to this package.

Layering (modules above only ever call downward through the interface)::

    experiments / metrics / analysis
        schedulers (rigid, flexible, advance, localsearch)
            control (ReservationService)   gateway (brokers, 2PC)
                core.booking (earliest_fit)
                    core.ledger (PortLedger, Degradation)
                        repro.core.capacity   ← the kernel
                            BreakpointProfile | VectorProfile

See ``docs/CAPACITY.md`` for the interface contract, backend selection
and the complexity table.
"""

from __future__ import annotations

from .backends import (
    available_backends,
    get_default_backend,
    make_profile,
    set_default_backend,
    use_backend,
)
from .breakpoint import BreakpointProfile
from .checks import CAPACITY_SLACK, UTILISATION_LIMIT, fits_under, slack_capacity
from .interface import CapacityProfile
from .stats import carried_volume, utilisation
from .vector import VectorProfile

__all__ = [
    "CAPACITY_SLACK",
    "UTILISATION_LIMIT",
    "BreakpointProfile",
    "CapacityProfile",
    "VectorProfile",
    "available_backends",
    "carried_volume",
    "fits_under",
    "get_default_backend",
    "make_profile",
    "set_default_backend",
    "slack_capacity",
    "use_backend",
    "utilisation",
]
