"""Optimisation objectives and evaluation metrics (paper §2.2–2.3).

Implements the three published objectives:

- **MAX-REQUESTS** — the accept rate, ``Σ x_k / K``;
- **RESOURCE-UTIL** — granted bandwidth over *scaled* port capacity, where a
  port with no demand is excluded from the denominator;
- **#guaranteed(f)** — accepted requests whose granted rate reaches
  ``max(f × MaxRate, MinRate)`` (the tuning-factor refinement, §2.3).

It also provides a *time-averaged* utilisation (volume actually carried over
capacity × horizon), which the paper's instantaneous formula approximates.
"""

from __future__ import annotations

import numpy as np

from .allocation import ScheduleResult
from .platform import Platform
from .request import Request, RequestSet

__all__ = [
    "accept_rate",
    "resource_utilization",
    "guaranteed_count",
    "guaranteed_rate",
    "time_averaged_utilization",
    "demanded_bandwidth",
]


def accept_rate(result: ScheduleResult) -> float:
    """MAX-REQUESTS metric: accepted requests over all decided requests."""
    return result.accept_rate


def demanded_bandwidth(request: Request) -> float:
    """The bandwidth a request *demands* for the purposes of scaling.

    For rigid requests this is the fixed ``bw(r)``; for flexible requests the
    paper's formulas predate an assignment, so the requested ``MinRate`` is
    used — the rate the user asked for.
    """
    return request.min_rate


def resource_utilization(
    platform: Platform,
    requests: RequestSet,
    result: ScheduleResult,
) -> float:
    """The paper's RESOURCE-UTIL objective (§2.2).

    .. math::

        \\frac{\\sum_k x_k\\, bw(r_k)}
              {\\tfrac12\\left(\\sum_i B_{in}^{scaled}(i) +
                              \\sum_e B_{out}^{scaled}(e)\\right)}

    where ``B^{scaled}`` caps each port's capacity at the total bandwidth
    demanded from it, so idle ports do not dilute the ratio.  The factor ½
    compensates for each granted request being counted at both its ingress
    and its egress.
    """
    m = platform.num_ingress
    n = platform.num_egress
    demand_in = np.zeros(m)
    demand_out = np.zeros(n)
    for request in requests:
        bw = demanded_bandwidth(request)
        demand_in[request.ingress] += bw
        demand_out[request.egress] += bw

    scaled_in = np.minimum(platform.ingress_capacity, demand_in)
    scaled_out = np.minimum(platform.egress_capacity, demand_out)
    denominator = 0.5 * (scaled_in.sum() + scaled_out.sum())
    if denominator <= 0:
        return 0.0

    granted = sum(alloc.bw for alloc in result.accepted.values())
    return float(granted / denominator)


def resource_utilization_time_averaged(
    platform: Platform,
    requests: RequestSet,
    result: ScheduleResult,
) -> float:
    """RESOURCE-UTIL integrated over the demand horizon.

    The paper's instantaneous formula is only normalised when the requests
    in ``R`` largely overlap; over a long trace it grows with ``K``.  This
    variant divides the capacity-time actually granted,
    ``Σ_accepted vol(r)``, by the scaled capacity times the demand horizon
    ``[min t_s, max t_f]`` — a value in [0, 1] directly comparable to the
    utilisation axis of Figure 4.
    """
    if not len(requests):
        return 0.0
    t0, t1 = requests.time_span()
    horizon = t1 - t0
    if horizon <= 0:
        return 0.0

    demand_in = np.zeros(platform.num_ingress)
    demand_out = np.zeros(platform.num_egress)
    for request in requests:
        bw = demanded_bandwidth(request)
        demand_in[request.ingress] += bw
        demand_out[request.egress] += bw
    scaled_in = np.minimum(platform.ingress_capacity, demand_in)
    scaled_out = np.minimum(platform.egress_capacity, demand_out)
    denominator = 0.5 * (scaled_in.sum() + scaled_out.sum()) * horizon
    if denominator <= 0:
        return 0.0

    granted_volume = sum(
        requests.by_rid(rid).volume for rid in result.accepted
    )
    return float(granted_volume / denominator)


def guaranteed_count(
    requests: RequestSet,
    result: ScheduleResult,
    f: float,
    *,
    rtol: float = 1e-9,
) -> int:
    """``#guaranteed``: accepted requests granted at least
    ``max(f × MaxRate, MinRate)`` (paper §2.3)."""
    count = 0
    for rid, alloc in result.accepted.items():
        request = requests.by_rid(rid)
        threshold = max(f * request.max_rate, request.min_rate)
        if alloc.bw >= threshold * (1 - rtol):
            count += 1
    return count


def guaranteed_rate(
    requests: RequestSet,
    result: ScheduleResult,
    f: float,
) -> float:
    """``#guaranteed`` normalised by the total number of requests."""
    total = len(requests)
    return guaranteed_count(requests, result, f) / total if total else 0.0


def time_averaged_utilization(
    platform: Platform,
    result: ScheduleResult,
    t0: float | None = None,
    t1: float | None = None,
) -> float:
    """Volume actually carried over ``half_capacity × horizon``.

    The horizon defaults to the span of the accepted allocations.  Returns
    0.0 when nothing was accepted or the horizon is empty.
    """
    allocations = result.allocations()
    if not allocations:
        return 0.0
    if t0 is None:
        t0 = min(a.sigma for a in allocations)
    if t1 is None:
        t1 = max(a.tau for a in allocations)
    horizon = t1 - t0
    if horizon <= 0:
        return 0.0
    ledger = result.build_ledger(platform)
    return ledger.carried_volume(t0, t1) / (platform.half_capacity * horizon)
