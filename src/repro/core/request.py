"""Transfer request model.

A *short-lived request* (paper §2.1) is a finite bulk data transfer between
one ingress and one egress point of the grid overlay.  Each request carries a
volume, a requested transmission window ``[t_s, t_f]`` and the transmission
limit of its attached host, ``MaxRate``.  The window implies a minimum rate

.. math::

    MinRate(r) = vol(r) / (t_f(r) - t_s(r))

A request is **rigid** when ``MinRate == MaxRate`` (no freedom in the
bandwidth assignment: it occupies exactly its window at exactly its rate) and
**flexible** otherwise.

:class:`RequestSet` is an immutable ordered collection with vectorised
(numpy) views used by the workload statistics and the LP solver.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from .errors import InvalidRequestError

__all__ = ["Request", "RequestSet", "RATE_TOLERANCE"]

#: Relative tolerance used when comparing rates (e.g. rigid classification).
RATE_TOLERANCE: float = 1e-9


@dataclass(frozen=True, slots=True)
class Request:
    """A single bulk data transfer request.

    Parameters
    ----------
    rid:
        Unique identifier within a :class:`RequestSet`.
    ingress, egress:
        Indices of the ingress/egress access points in the platform.
    volume:
        Data volume in MB; must be positive.
    t_start, t_end:
        Requested transmission window ``[t_s, t_f]`` in seconds; the window
        must be non-empty.
    max_rate:
        Transmission limit of the attached host in MB/s; must be at least the
        ``min_rate`` implied by the window (otherwise the request could never
        be served and is structurally invalid).
    """

    rid: int
    ingress: int
    egress: int
    volume: float
    t_start: float
    t_end: float
    max_rate: float

    def __post_init__(self) -> None:
        if self.volume <= 0:
            raise InvalidRequestError(f"request {self.rid}: volume must be positive, got {self.volume}")
        if not (self.t_end > self.t_start):
            raise InvalidRequestError(
                f"request {self.rid}: empty transmission window [{self.t_start}, {self.t_end}]"
            )
        if self.max_rate <= 0:
            raise InvalidRequestError(f"request {self.rid}: max_rate must be positive, got {self.max_rate}")
        if self.max_rate < self.min_rate * (1 - RATE_TOLERANCE):
            raise InvalidRequestError(
                f"request {self.rid}: max_rate {self.max_rate} below the MinRate "
                f"{self.min_rate} implied by window [{self.t_start}, {self.t_end}]"
            )
        # Note: ingress and egress indices address *different* port sets, so
        # equal indices are legal (e.g. the single ingress-egress pair case of
        # §3).  Same-site exclusion is a workload (PairSelector) concern.

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def window(self) -> tuple[float, float]:
        """The requested transmission window ``(t_s, t_f)``."""
        return (self.t_start, self.t_end)

    @property
    def window_length(self) -> float:
        """Length of the requested window, ``t_f - t_s``."""
        return self.t_end - self.t_start

    @property
    def min_rate(self) -> float:
        """``MinRate(r) = vol(r) / (t_f - t_s)`` (paper §2.1)."""
        return self.volume / (self.t_end - self.t_start)

    @property
    def is_rigid(self) -> bool:
        """True when ``MinRate == MaxRate`` up to :data:`RATE_TOLERANCE`."""
        return abs(self.max_rate - self.min_rate) <= RATE_TOLERANCE * max(self.max_rate, self.min_rate)

    @property
    def is_flexible(self) -> bool:
        """True when the bandwidth assignment has freedom (paper §2.3)."""
        return not self.is_rigid

    @property
    def min_duration(self) -> float:
        """Shortest possible transfer time, ``vol / MaxRate``."""
        return self.volume / self.max_rate

    def rate_for_deadline(self, start: float) -> float:
        """Minimum feasible rate when the transfer starts at ``start``.

        Starting later than ``t_start`` shrinks the remaining window, so the
        rate needed to still meet the deadline grows.  Returns ``inf`` when
        the deadline can no longer be met at any rate.
        """
        remaining = self.t_end - start
        if remaining <= 0:
            return float("inf")
        return self.volume / remaining

    def feasible_rate_interval(self, start: float | None = None) -> tuple[float, float]:
        """Admissible ``bw`` interval ``[MinRate, MaxRate]`` for a given start.

        With ``start=None`` the requested start ``t_s`` is assumed (the
        paper's default, Figure 2).
        """
        lo = self.min_rate if start is None else self.rate_for_deadline(start)
        return (lo, self.max_rate)

    def duration_at(self, bw: float) -> float:
        """Transfer duration ``vol / bw`` at constant bandwidth ``bw``."""
        if bw <= 0:
            raise InvalidRequestError(f"bandwidth must be positive, got {bw}")
        return self.volume / bw

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def rigid(
        cls,
        rid: int,
        ingress: int,
        egress: int,
        volume: float,
        t_start: float,
        t_end: float,
    ) -> Request:
        """Build a rigid request: ``MaxRate`` set to the window-implied rate."""
        min_rate = volume / (t_end - t_start)
        return cls(rid, ingress, egress, volume, t_start, t_end, min_rate)

    @classmethod
    def flexible(
        cls,
        rid: int,
        ingress: int,
        egress: int,
        volume: float,
        t_start: float,
        min_rate: float,
        max_rate: float,
    ) -> Request:
        """Build a flexible request from a requested ``MinRate``.

        The deadline is derived: ``t_f = t_s + vol / min_rate``.
        """
        if min_rate <= 0:
            raise InvalidRequestError(f"request {rid}: min_rate must be positive, got {min_rate}")
        t_end = t_start + volume / min_rate
        return cls(rid, ingress, egress, volume, t_start, t_end, max_rate)

    def with_rid(self, rid: int) -> Request:
        """Return a copy of this request with a different identifier."""
        return replace(self, rid=rid)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Plain-dict representation (JSON friendly)."""
        return {
            "rid": self.rid,
            "ingress": self.ingress,
            "egress": self.egress,
            "volume": self.volume,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "max_rate": self.max_rate,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> Request:
        """Inverse of :meth:`to_dict`."""
        return cls(
            rid=int(data["rid"]),
            ingress=int(data["ingress"]),
            egress=int(data["egress"]),
            volume=float(data["volume"]),
            t_start=float(data["t_start"]),
            t_end=float(data["t_end"]),
            max_rate=float(data["max_rate"]),
        )


@dataclass(frozen=True)
class RequestSet(Sequence[Request]):
    """An immutable, ordered collection of requests.

    Provides vectorised numpy views of the request attributes, which the
    workload statistics, objectives and the LP relaxation all build on.
    """

    requests: tuple[Request, ...] = field(default_factory=tuple)

    def __init__(self, requests: Iterable[Request] = ()) -> None:
        object.__setattr__(self, "requests", tuple(requests))
        rids = [r.rid for r in self.requests]
        if len(set(rids)) != len(rids):
            raise InvalidRequestError("duplicate request ids in RequestSet")

    # -- Sequence protocol ---------------------------------------------
    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    def __getitem__(self, index):  # type: ignore[override]
        if isinstance(index, slice):
            return RequestSet(self.requests[index])
        return self.requests[index]

    def __contains__(self, item: object) -> bool:
        return item in self.requests

    # -- Lookup ----------------------------------------------------------
    def by_rid(self, rid: int) -> Request:
        """Return the request with identifier ``rid``."""
        try:
            return self._rid_index()[rid]
        except KeyError:
            raise KeyError(f"no request with rid {rid}") from None

    def _rid_index(self) -> dict[int, Request]:
        # Cached lazily on the instance; frozen dataclass requires object.__setattr__.
        cache = self.__dict__.get("_rid_cache")
        if cache is None:
            cache = {r.rid: r for r in self.requests}
            self.__dict__["_rid_cache"] = cache
        return cache

    # -- Derived views ----------------------------------------------------
    def as_arrays(self) -> dict[str, np.ndarray]:
        """Columnar numpy view of the request attributes.

        Returns a dict with keys ``rid``, ``ingress``, ``egress``,
        ``volume``, ``t_start``, ``t_end``, ``max_rate``, ``min_rate``.
        """
        n = len(self.requests)
        out = {
            "rid": np.empty(n, dtype=np.int64),
            "ingress": np.empty(n, dtype=np.int64),
            "egress": np.empty(n, dtype=np.int64),
            "volume": np.empty(n, dtype=np.float64),
            "t_start": np.empty(n, dtype=np.float64),
            "t_end": np.empty(n, dtype=np.float64),
            "max_rate": np.empty(n, dtype=np.float64),
        }
        for i, r in enumerate(self.requests):
            out["rid"][i] = r.rid
            out["ingress"][i] = r.ingress
            out["egress"][i] = r.egress
            out["volume"][i] = r.volume
            out["t_start"][i] = r.t_start
            out["t_end"][i] = r.t_end
            out["max_rate"][i] = r.max_rate
        out["min_rate"] = out["volume"] / (out["t_end"] - out["t_start"])
        return out

    def sorted_by_arrival(self) -> RequestSet:
        """Requests ordered by ``(t_start, min_rate, rid)``.

        This is the FCFS order the paper uses: earliest start first, and the
        request demanding the smallest bandwidth first on ties (§4.1, §5).
        """
        return RequestSet(
            sorted(self.requests, key=lambda r: (r.t_start, r.min_rate, r.rid))
        )

    def time_span(self) -> tuple[float, float]:
        """``(min t_s, max t_f)`` over all requests; ``(0, 0)`` when empty."""
        if not self.requests:
            return (0.0, 0.0)
        return (
            min(r.t_start for r in self.requests),
            max(r.t_end for r in self.requests),
        )

    def breakpoints(self) -> np.ndarray:
        """Sorted unique window endpoints (the paper's slice boundaries, §4.2)."""
        times: set[float] = set()
        for r in self.requests:
            times.add(r.t_start)
            times.add(r.t_end)
        return np.array(sorted(times), dtype=np.float64)

    def total_volume(self) -> float:
        """Sum of request volumes in MB."""
        return float(sum(r.volume for r in self.requests))

    def rigid_subset(self) -> RequestSet:
        """Only the rigid requests."""
        return RequestSet(r for r in self.requests if r.is_rigid)

    def flexible_subset(self) -> RequestSet:
        """Only the flexible requests."""
        return RequestSet(r for r in self.requests if r.is_flexible)

    # -- Serialisation ----------------------------------------------------
    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps([r.to_dict() for r in self.requests])

    @classmethod
    def from_json(cls, text: str) -> RequestSet:
        """Inverse of :meth:`to_json`."""
        return cls(Request.from_dict(d) for d in json.loads(text))
