"""Regenerate every EXPERIMENTS.md table at full size.

Thin shim over ``repro.experiments.generate_all`` (also available as
``grid-bandwidth report --out results``).
"""

from repro.experiments import generate_all

if __name__ == "__main__":
    generate_all("results", progress=print)
    print("done")
