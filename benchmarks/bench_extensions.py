"""Benchmarks: the extension studies (book-ahead/retry, hot spots,
control-plane latency).

These cover the paper's conclusion directions: exploiting flexible start
times, client retries, relieving hot spots, and distributed reservation.
"""

from conftest import save_artifacts

from repro.experiments import control_latency, extensions, hotspot


def test_extensions(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: extensions(gaps=(0.5, 2.0, 10.0), n_requests=400, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "extensions", table, chart)

    greedy_col = next(h for h in table.headers if h.startswith("greedy"))
    book_col = next(h for h in table.headers if h.startswith("bookahead"))
    retry_col = next(h for h in table.headers if h.startswith("retry"))
    for row in table.rows:
        r = dict(zip(table.headers, row))
        # book-ahead dominates greedy by construction; retry should too
        assert r[book_col] >= r[greedy_col] - 1e-9
        assert r[retry_col] >= r[greedy_col] - 0.01


def test_hotspot(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: hotspot(skews=(1.0, 8.0), gap=2.0, n_requests=400, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "hotspot", table, chart)
    adv = table.column("window_advantage")
    # WINDOW's cost-based balancing pays off more as the skew grows
    assert adv[-1] >= adv[0] - 0.02


def test_control_latency(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: control_latency(latencies=(0.0, 10.0, 60.0), gap=1.0, n_requests=400, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "control_latency", table, chart)
    accepts = table.column("accept_rate")
    # distributing the decision is nearly free at small latencies and never
    # catastrophic at large ones
    assert accepts[0] - accepts[-1] < 0.15
    # every probed request costs at most 3 messages
    assert all(m <= 3.0 for m in table.column("messages_per_request"))
