"""Benchmarks: the stateful reservation service and striped staging."""

import numpy as np

from repro.control import ReservationService
from repro.control.striped import book_striped
from repro.core import Platform, PortLedger
from repro.schedulers import MinRatePolicy


def test_service_throughput(benchmark):
    """Sustained submit/cancel traffic through the service API."""
    rng = np.random.default_rng(0)
    n = 400
    volumes = rng.uniform(1e4, 3e5, n)
    pairs = rng.integers(0, 10, size=(n, 2))

    def run():
        service = ReservationService(Platform.paper_platform(), policy=MinRatePolicy())
        now = 0.0
        confirmed = []
        for k in range(n):
            now += 1.0
            r = service.submit(
                ingress=int(pairs[k, 0]),
                egress=int(pairs[k, 1]),
                volume=float(volumes[k]),
                deadline=now + 3600.0,
                now=now,
            )
            if r.confirmed:
                confirmed.append(r.rid)
            if k % 7 == 0 and confirmed:
                service.cancel(confirmed.pop(0), now=now)
        return service

    service = benchmark(run)
    assert service.accept_rate() > 0.5


def test_striped_planning(benchmark):
    """Striped bookings against a busy ledger."""
    platform = Platform.paper_platform()

    def run():
        ledger = PortLedger(platform)
        rng = np.random.default_rng(1)
        booked = 0
        for k in range(60):
            t0 = float(k * 20)
            booking = book_striped(
                ledger,
                platform,
                sources=list(rng.choice(10, size=3, replace=False)),
                egress=int(rng.integers(10)),
                volume=float(rng.uniform(5e4, 5e5)),
                t_start=t0,
                t_end=t0 + 3600.0,
                max_stream_rate=500.0,
            )
            booked += booking is not None
        assert ledger.max_overcommit() <= 1e-6
        return booked

    booked = benchmark(run)
    assert booked >= 20
