"""Benchmark: regenerate Figure 4 (rigid heuristics vs load).

Checks the published orderings on every run: FIFO worst accept rate,
MINVOL worst utilisation, CUMULATED ≈ MINBW.
"""

from conftest import save_artifacts

from repro.experiments import fig4

LOADS = (1.0, 4.0, 16.0)
N_REQUESTS = 400
SEEDS = (0, 1)


def test_fig4(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: fig4(loads=LOADS, n_requests=N_REQUESTS, seeds=SEEDS),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "fig4", table, chart)

    heavy = dict(zip(table.headers, table.rows[-1]))
    # FIFO is the worst heuristic on accept rate under heavy load
    assert heavy["fifo:accept"] < heavy["cumulated:accept"]
    assert heavy["fifo:accept"] < heavy["minbw:accept"]
    assert heavy["fifo:accept"] < heavy["minvol:accept"]
    # MINVOL pays in utilisation
    assert heavy["minvol:util"] < heavy["minbw:util"]
    assert heavy["minvol:util"] < heavy["cumulated:util"]
    # CUMULATED and MINBW are close (the paper's headline result)
    assert abs(heavy["cumulated:accept"] - heavy["minbw:accept"]) < 0.10
