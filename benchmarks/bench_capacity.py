"""Capacity-kernel backend shoot-out on an earliest-fit-heavy sweep.

One fixed-seed admission workload runs twice — once per backend — through
the real booking stack (:func:`repro.core.booking.book_earliest` /
:func:`~repro.core.booking.earliest_fit` against a
:class:`~repro.core.ledger.PortLedger`).  The build phase books a dense
mix of transfers onto a small port set until the timelines carry
thousands of segments; the timed phase then re-probes the congested
ledger with read-only earliest-fit searches, the workload every admission
front-end is made of: per candidate start, two range-max queries per
``fits`` check.

Two properties are gated:

- **decision invariance** — the full decision trace (booked sigma/bw per
  build request, probe outcome per probe request) must be byte-identical
  across backends once JSON-serialised.  The backends are designed
  bit-identical, not merely tolerance-close;
- **speed** — the vectorized backend must finish the probe phase at least
  ``MIN_SPEEDUP`` (2×) faster than the breakpoint-list backend.

Results land in ``benchmarks/results/BENCH_capacity.json`` (uploaded as a
CI artifact) plus a human-readable table.
"""

from __future__ import annotations

import json
import math
import time

import numpy as np

from repro.core import Platform, PortLedger, Request, use_backend
from repro.core.booking import book_earliest, earliest_fit

#: The vector backend must beat the breakpoint backend by at least this
#: on the query-heavy probe phase.
MIN_SPEEDUP = 2.0

PORTS = 2
CAP = 1000.0
HORIZON = 80_000.0
BUILD_REQUESTS = 6000
PROBE_REQUESTS = 100
REPEATS = 3


def build_requests(seed=0):
    """The fixed admission stream: small varied rates, long windows.

    Rates are drawn continuously so adjacent bookings never coalesce —
    the point is a *dense* profile (thousands of segments per port).
    """
    rng = np.random.default_rng(seed)
    requests = []
    for rid in range(BUILD_REQUESTS):
        t0 = float(rng.uniform(0.0, HORIZON * 0.9))
        window = float(rng.uniform(HORIZON * 0.05, HORIZON * 0.2))
        max_rate = float(rng.uniform(6.0, 28.0))
        volume = float(rng.uniform(0.3, 0.9)) * max_rate * window
        requests.append(
            Request(
                rid=rid,
                ingress=int(rng.integers(PORTS)),
                egress=int(rng.integers(PORTS)),
                volume=volume,
                t_start=t0,
                t_end=t0 + window,
                max_rate=max_rate,
            )
        )
    return requests


def probe_requests(seed=1):
    """Read-only probes spanning most of the horizon.

    Wide windows on a congested ledger are the expensive case: every
    candidate start runs range-max queries across thousands of segments.
    """
    rng = np.random.default_rng(seed)
    probes = []
    for rid in range(PROBE_REQUESTS):
        t0 = float(rng.uniform(0.0, HORIZON * 0.2))
        t1 = float(rng.uniform(HORIZON * 0.7, HORIZON))
        max_rate = float(rng.uniform(20.0, 120.0))
        volume = float(rng.uniform(0.5, 0.95)) * max_rate * (t1 - t0)
        probes.append(
            Request(
                rid=10_000 + rid,
                ingress=int(rng.integers(PORTS)),
                egress=int(rng.integers(PORTS)),
                volume=volume,
                t_start=t0,
                t_end=t1,
                max_rate=max_rate,
            )
        )
    return probes


def run_backend(name, builds, probes):
    """Build + probe on one backend; returns (decisions, stats, timings)."""
    with use_backend(name):
        ledger = PortLedger(Platform.uniform(PORTS, PORTS, CAP))

    build_trace = []
    for request in builds:
        allocation = book_earliest(ledger, request)
        if allocation is None:
            build_trace.append([request.rid, None, None])
        else:
            build_trace.append([request.rid, allocation.sigma, allocation.bw])

    segments = max(
        ledger.ingress_timeline(i).num_segments for i in range(PORTS)
    )

    # Timed phase: pure reads, so repeats are safe; take the best of
    # REPEATS to shed scheduler noise.
    probe_trace = []
    best = math.inf
    for _ in range(REPEATS):
        trace = []
        t_begin = time.perf_counter()
        for request in probes:
            allocation = earliest_fit(ledger, request)
            if allocation is None:
                trace.append([request.rid, None, None])
            else:
                trace.append([request.rid, allocation.sigma, allocation.bw])
        best = min(best, time.perf_counter() - t_begin)
        probe_trace = trace

    # Headroom-style open-ended probes: the gateway fast path's shape.
    suffix_probe = 0.0
    for i in range(PORTS):
        timeline = ledger.ingress_timeline(i)
        for t in np.linspace(0.0, HORIZON, 200):
            suffix_probe += timeline.max_usage(float(t), math.inf)

    booked = sum(1 for _, sigma, _ in build_trace if sigma is not None)
    decisions = json.dumps({"build": build_trace, "probe": probe_trace})
    return decisions, {
        "backend": name,
        "booked": booked,
        "rejected": len(build_trace) - booked,
        "max_segments": segments,
        "probe_seconds": best,
        "suffix_probe_sum": suffix_probe,
    }


def test_vector_backend_doubles_probe_throughput(results_dir):
    builds = build_requests()
    probes = probe_requests()

    traces = {}
    rows = []
    for name in ("breakpoint", "vector"):
        decisions, stats = run_backend(name, builds, probes)
        traces[name] = decisions
        rows.append(stats)

    # Decision invariance: the serialized traces must match byte for byte.
    assert traces["breakpoint"] == traces["vector"], (
        "backends disagreed on admission decisions; the kernels have diverged"
    )
    assert rows[0]["suffix_probe_sum"] == rows[1]["suffix_probe_sum"]
    assert rows[0]["booked"] > 0 and rows[0]["rejected"] > 0, (
        "degenerate workload: need both accepts and rejects to exercise decisions"
    )

    by_name = {row["backend"]: row for row in rows}
    speedup = by_name["breakpoint"]["probe_seconds"] / by_name["vector"]["probe_seconds"]

    lines = [f"{'backend':>10} {'segments':>9} {'booked':>7} {'probe_s':>9} {'speedup':>8}"]
    for row in rows:
        lines.append(
            f"{row['backend']:>10} {row['max_segments']:>9} {row['booked']:>7} "
            f"{row['probe_seconds']:>9.4f} "
            f"{by_name['breakpoint']['probe_seconds'] / row['probe_seconds']:>8.2f}"
        )
    (results_dir / "BENCH_capacity.txt").write_text("\n".join(lines) + "\n")
    (results_dir / "BENCH_capacity.json").write_text(
        json.dumps(
            {
                "workload": {
                    "ports": PORTS,
                    "capacity": CAP,
                    "build_requests": BUILD_REQUESTS,
                    "probe_requests": PROBE_REQUESTS,
                    "repeats": REPEATS,
                },
                "rows": rows,
                "decisions_identical": True,
                "speedup": speedup,
                "min_speedup": MIN_SPEEDUP,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"vector backend is only {speedup:.2f}x the breakpoint backend on the "
        f"earliest-fit probe phase (need >= {MIN_SPEEDUP}x); see BENCH_capacity.json"
    )
