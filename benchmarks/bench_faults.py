"""Benchmarks: fault injection, recovery, and journal replay."""

import numpy as np
import pytest

from repro.control import Journal, PortFault, ReservationService, run_fault_drill
from repro.core import Platform, Request
from repro.schedulers import BackoffSchedule


def _workload(seed, platform, n, horizon=2000.0):
    rng = np.random.default_rng(seed)
    requests = []
    for rid in range(n):
        t0 = float(rng.uniform(0.0, horizon))
        requests.append(
            Request(
                rid=rid,
                ingress=int(rng.integers(platform.num_ingress)),
                egress=int(rng.integers(platform.num_egress)),
                volume=float(rng.uniform(5e3, 8e4)),
                t_start=t0,
                t_end=t0 + float(rng.uniform(600.0, 2400.0)),
                max_rate=500.0,
            )
        )
    return requests


@pytest.mark.parametrize("abort_rate", [0.1, 0.3])
def test_fault_drill_throughput(benchmark, abort_rate):
    """A full drill: arrivals + random aborts + an outage + rebooking."""
    platform = Platform.uniform(6, 6, 1000.0)
    requests = _workload(0, platform, 300)
    faults = [
        PortFault.outage("egress", 0, 1000.0, start=500.0, end=900.0),
        PortFault(side="ingress", port=1, amount=500.0, start=1200.0, end=1600.0),
    ]

    def run():
        report = run_fault_drill(
            platform,
            requests,
            abort_rate=abort_rate,
            faults=faults,
            rebook=BackoffSchedule(base=30.0, multiplier=2.0, jitter=0.25),
            backlog_limit=16,
            seed=1,
        )
        assert report.service.max_overcommit() <= 1e-6
        return report

    report = benchmark(run)
    assert report.service.stats.aborted > 0
    assert report.service.stats.displaced > 0


def test_journal_replay(benchmark):
    """Crash recovery: rebuilding a service from its operation journal."""
    platform = Platform.uniform(6, 6, 1000.0)
    requests = _workload(2, platform, 300)
    journal = Journal()
    report = run_fault_drill(
        platform,
        requests,
        abort_rate=0.2,
        faults=[PortFault.outage("egress", 2, 1000.0, start=400.0, end=800.0)],
        rebook=BackoffSchedule(base=30.0, multiplier=2.0),
        backlog_limit=16,
        journal=journal,
        seed=3,
    )
    expected = report.service.snapshot()

    rebuilt = benchmark(ReservationService.replay, journal)
    assert rebuilt.snapshot() == expected
