"""Benchmarks: extended studies (optimality gap, RTT unfairness, diurnal
load, local search) and the capacity planner."""

import numpy as np
from conftest import save_artifacts

from repro.core import Platform
from repro.experiments import (
    capacity_for_accept_rate,
    diurnal_load,
    localsearch_study,
    optimality_gap_flexible,
    rtt_unfairness_study,
)
from repro.schedulers import GreedyFlexible, MinRatePolicy
from repro.workload import FlexibleWorkload, PoissonArrivals


def test_optimality_gap_flexible(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: optimality_gap_flexible(gaps=(0.5, 2.0, 10.0), n_requests=50, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "optgap_flexible", table, chart)
    for row in table.rows:
        r = dict(zip(table.headers, row))
        # book-ahead closes most of the gap the LP bound leaves open
        assert r["bookahead"] >= r["greedy"] - 1e-9
        assert r["bookahead"] >= 0.5


def test_rtt_unfairness(benchmark, results_dir):
    table, chart = benchmark(lambda: rtt_unfairness_study())
    save_artifacts(results_dir, "rtt_unfairness", table, chart)
    reno = table.column("reno_share")
    assert reno[-1] < 0.05  # 300 ms flow starved under Reno


def test_diurnal(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: diurnal_load(amplitudes=(0.0, 0.9), n_requests=400, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "diurnal", table, chart)


def test_localsearch(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: localsearch_study(loads=(8.0,), n_requests=80, iterations=80, seeds=(0,)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "localsearch", table, chart)
    row = dict(zip(table.headers, table.rows[0]))
    assert row["localsearch"] >= max(row["fcfs"], row["minbw"]) - 0.02


def test_capacity_planning(benchmark):
    base = Platform.paper_platform()

    def make_problem(platform, seed):
        return FlexibleWorkload(platform, PoissonArrivals(2.0)).generate(
            100, np.random.default_rng(seed)
        )

    result = benchmark.pedantic(
        lambda: capacity_for_accept_rate(
            base, make_problem, GreedyFlexible(policy=MinRatePolicy()), target=0.8, seeds=(0,), max_iters=6
        ),
        rounds=1,
        iterations=1,
    )
    assert result.accept_rate >= 0.8
