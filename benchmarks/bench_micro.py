"""Micro-benchmarks of the core substrates.

These are real pytest-benchmark timings (many rounds) of the hot paths:
timeline interval updates/queries, ledger admission checks, the max-min
solver, and end-to-end scheduler throughput.
"""

import numpy as np
import pytest

from repro.core import BandwidthTimeline, Platform, PortLedger
from repro.fairness import maxmin_rates
from repro.schedulers import GreedyFlexible, WindowFlexible, cumulated_slots
from repro.workload import paper_flexible_workload, paper_rigid_workload


@pytest.fixture(scope="module")
def flexible_problem():
    return paper_flexible_workload(1.0, 500, seed=0)


@pytest.fixture(scope="module")
def rigid_problem():
    return paper_rigid_workload(4.0, 500, seed=0)


def test_timeline_add_release(benchmark):
    rng = np.random.default_rng(0)
    ops = [(float(s), float(s + d), float(b)) for s, d, b in
           zip(rng.uniform(0, 1e4, 200), rng.uniform(1, 500, 200), rng.uniform(1, 100, 200))]

    def run():
        tl = BandwidthTimeline()
        for t0, t1, bw in ops:
            tl.add(t0, t1, bw)
        for t0, t1, bw in ops:
            tl.add(t0, t1, -bw)
        return tl

    tl = benchmark(run)
    assert tl.is_zero()


def test_timeline_max_usage_query(benchmark):
    tl = BandwidthTimeline()
    rng = np.random.default_rng(1)
    for s, d, b in zip(rng.uniform(0, 1e4, 500), rng.uniform(1, 500, 500), rng.uniform(1, 100, 500)):
        tl.add(float(s), float(s + d), float(b))
    value = benchmark(lambda: tl.max_usage(2000.0, 8000.0))
    assert value > 0


def test_ledger_fits(benchmark):
    ledger = PortLedger(Platform.paper_platform())
    rng = np.random.default_rng(2)
    for _ in range(300):
        i, e = int(rng.integers(10)), int(rng.integers(10))
        t0 = float(rng.uniform(0, 1e4))
        bw = float(rng.uniform(1, 50))
        if ledger.fits(i, e, t0, t0 + 100, bw):
            ledger.allocate(i, e, t0, t0 + 100, bw)
    assert benchmark(lambda: ledger.fits(3, 7, 5000.0, 5100.0, 10.0)) in (True, False)


def test_maxmin_solver(benchmark):
    platform = Platform.paper_platform()
    rng = np.random.default_rng(3)
    n = 400
    ingress = rng.integers(0, 10, n)
    egress = rng.integers(0, 10, n)
    limits = rng.uniform(10, 1000, n)
    rates = benchmark(lambda: maxmin_rates(platform, ingress, egress, limits))
    assert rates.shape == (n,)


def test_greedy_throughput(benchmark, flexible_problem):
    result = benchmark(lambda: GreedyFlexible().schedule(flexible_problem))
    assert result.num_decided == flexible_problem.num_requests


def test_window_throughput(benchmark, flexible_problem):
    result = benchmark(lambda: WindowFlexible(t_step=400.0).schedule(flexible_problem))
    assert result.num_decided == flexible_problem.num_requests


def test_cumulated_slots_throughput(benchmark, rigid_problem):
    result = benchmark(lambda: cumulated_slots().schedule(rigid_problem))
    assert result.num_decided == rigid_problem.num_requests
