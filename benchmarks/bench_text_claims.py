"""Benchmark: the §5.3 in-text claims and the tuning-factor study.

The claims table must come out all-"yes"; the tuning study must show the
accept-rate gain growing as f decreases (roughly linearly in 1 − f).
"""

import numpy as np
from conftest import save_artifacts

from repro.experiments import section53_claims, tuning_factor


def test_section53_claims(benchmark, results_dir):
    table, _ = benchmark.pedantic(
        lambda: section53_claims(n_requests=600, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "claims", table)
    failures = [row[0] for row in table.rows if row[-1] != "yes"]
    assert not failures, f"claims failed: {failures}"


def test_tuning_factor(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: tuning_factor(fs=(0.2, 0.5, 0.8, 1.0), gap=20.0, n_requests=600, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "tuning", table, chart)

    fs = np.asarray(table.column("f"), dtype=float)
    gains = np.asarray(table.column("greedy_gain"), dtype=float)
    # gain decreases with f (more bandwidth granted -> fewer accepts)
    assert np.all(np.diff(gains) <= 1e-9)
    # and correlates strongly (negatively) with f, i.e. ~linear in (1 - f)
    corr = np.corrcoef(fs, gains)[0, 1]
    assert corr < -0.9
