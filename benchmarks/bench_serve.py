"""Service-plane smoke: ≥100k live HTTP submits + journaled restart gate.

Two phases against a real listening ``ServeApp``:

**Smoke** — a closed-loop :mod:`repro.loadgen` fleet pushes at least
``MIN_SUBMITS`` submissions through the batch endpoint of one service
instance and the run gates on wall-clock admission latency (p99 under
``P99_BUDGET_S``), zero transport/HTTP errors, and a clean
:func:`check_gateway` after drain.  The workload is sized so the active
reservation set stays bounded (windows a little over two fleet rounds):
throughput then measures the service, not timeline bloat.

**Restart** — a single deterministic client drives journaled waves,
drains mid-run, and a successor built over the same journal must be
snapshot-equal, invariant-clean, and decision-equivalent to an
uninterrupted in-process gateway fed identical waves.

Artifacts: ``BENCH_serve.json`` (both phases), ``LOADGEN_serve.json``
(the schema-validated loadgen artifact), ``BENCH_serve.txt`` (summary).
"""

from __future__ import annotations

import asyncio
import json

from repro.core.platform import Platform
from repro.gateway import Gateway
from repro.gateway.invariants import check_gateway
from repro.loadgen import (
    LoadgenConfig,
    ServiceClient,
    SubmissionPlan,
    percentile,
    run_load,
)
from repro.obs import NullTelemetry, use_telemetry
from repro.obs.perfclock import WallClock
from repro.serve import ServeApp, ServeConfig
from repro.serve.clock import LogicalClock
from repro.workload.durations import UniformDurations
from repro.workload.volumes import UniformVolumes

#: The CI smoke must decide at least this many live submissions.
MIN_SUBMITS = 100_000
#: Wall-clock p99 of one batched submit round trip (generous: CI is slow).
P99_BUDGET_S = 3.0

PLATFORM = Platform.uniform(16, 16, 1000.0)
CLIENTS = 8
BATCH = 128
#: Target slightly above the gate so a handful of stale-window entries
#: (outcome "invalid") cannot drag the decided count below MIN_SUBMITS.
TARGET = 104_000

#: One fleet round advances simulated time by CLIENTS * BATCH seconds
#: (mean inter-arrival 1.0); windows must outlive a couple of rounds or
#: a slow client's entries go stale before their wave flushes.
ROUND_S = float(CLIENTS * BATCH)
SMOKE_FLOOR_S = 2.2 * ROUND_S


def smoke_plan(n: int) -> SubmissionPlan:
    """Bounded-active-set workload: short transfers, round-proof windows."""
    return SubmissionPlan(
        PLATFORM,
        n,
        seed=1,
        mean_interarrival=1.0,
        volumes=UniformVolumes(1.0, 100.0),
        durations=UniformDurations(30.0, 120.0),
        deadline_floor=SMOKE_FLOOR_S,
    )


def serve_config(**overrides) -> ServeConfig:
    settings = dict(
        platform=PLATFORM,
        num_shards=4,
        batch_size=8,
        slo_rules=(),
    )
    settings.update(overrides)
    return ServeConfig(**settings)


async def _smoke() -> tuple[dict, dict]:
    app = ServeApp(serve_config(), clock=LogicalClock())
    host, port = await app.start()
    config = LoadgenConfig(
        host=host,
        port=port,
        clients=CLIENTS,
        batch=BATCH,
        target_submissions=TARGET,
        seed=1,
    )
    report = await run_load(
        config, platform=PLATFORM, plan=smoke_plan(TARGET), perf=WallClock()
    )
    await app.drain()
    audit = check_gateway(app.gateway, expect_quiesced=True)
    doc = report.to_dict()
    gate = {
        "submits": report.submits,
        "p99_s": percentile(report.submit_latencies, 99.0),
        "transport_errors": report.transport_errors,
        "http_errors": report.http_errors,
        "invariants_ok": audit.ok,
        "violations": list(audit.violations),
    }
    return doc, gate


def test_smoke_sustains_min_submits(results_dir):
    # The latency gate measures the service, not the instrumentation:
    # shadow the suite-wide telemetry capture (its per-submission event
    # cost is gated separately by bench_obs_overhead).
    with use_telemetry(NullTelemetry()):
        loadgen_doc, gate = asyncio.run(_smoke())
        restart = asyncio.run(_restart_phase(results_dir))

    (results_dir / "LOADGEN_serve.json").write_text(
        json.dumps(loadgen_doc, indent=2, sort_keys=True) + "\n"
    )
    bench = {
        "kind": "bench-serve",
        "version": 1,
        "min_submits": MIN_SUBMITS,
        "p99_budget_s": P99_BUDGET_S,
        "smoke": {**gate, "loadgen": "LOADGEN_serve.json"},
        "restart": restart,
    }
    (results_dir / "BENCH_serve.json").write_text(
        json.dumps(bench, indent=2, sort_keys=True) + "\n"
    )
    lines = [
        "serve smoke:",
        f"  submits          {gate['submits']} (gate >= {MIN_SUBMITS})",
        f"  p99 latency      {gate['p99_s'] * 1000:.1f} ms (budget {P99_BUDGET_S * 1000:.0f} ms)",
        f"  p50 latency      {loadgen_doc['latency']['p50'] * 1000:.1f} ms",
        f"  throughput       {loadgen_doc['submits_per_second']:.0f} submits/s",
        f"  accept rate      {loadgen_doc['accept_rate']:.3f}",
        f"  invalid entries  {loadgen_doc['invalid']}",
        "restart:",
        f"  decisions        {restart['decisions']}",
        f"  snapshot equal   {restart['snapshot_equal']}",
        f"  decision equal   {restart['decision_equivalent']}",
        f"  invariants ok    {restart['invariants_ok']}",
    ]
    (results_dir / "BENCH_serve.txt").write_text("\n".join(lines) + "\n")

    assert gate["transport_errors"] == 0, gate
    assert gate["http_errors"] == 0, gate
    assert gate["invariants_ok"], gate["violations"]
    assert gate["submits"] >= MIN_SUBMITS, (
        f"smoke decided {gate['submits']} submissions; the CI gate is {MIN_SUBMITS} "
        "(see BENCH_serve.json)"
    )
    assert gate["p99_s"] <= P99_BUDGET_S, (
        f"p99 admission latency {gate['p99_s']:.3f}s over the {P99_BUDGET_S}s budget"
    )
    assert restart["snapshot_equal"], restart
    assert restart["decision_equivalent"], restart
    assert restart["invariants_ok"], restart["violations"]


RESTART_WAVES = 32
RESTART_WAVE_SIZE = 64


async def _restart_phase(results_dir) -> dict:
    """Journaled waves → drain → replayed successor; equivalence checked."""
    journal_path = results_dir / "serve.journal.jsonl"
    if journal_path.exists():
        journal_path.unlink()
    plan = smoke_plan(RESTART_WAVES * RESTART_WAVE_SIZE)
    config = serve_config(
        journal_path=journal_path,
        max_wave=RESTART_WAVE_SIZE,
        max_delay_s=60.0,
    )
    app = ServeApp(config, clock=LogicalClock())
    host, port = await app.start()
    client = ServiceClient(host, port)
    await client.connect()
    outcomes: list[str] = []
    for wave in range(RESTART_WAVES):
        bodies = [
            plan.body(wave * RESTART_WAVE_SIZE + k) for k in range(RESTART_WAVE_SIZE)
        ]
        resp = await client.request(
            "POST", "/v1/reservations/batch", payload={"submissions": bodies}
        )
        assert resp.status == 200, resp.body
        outcomes.extend(d["outcome"] for d in resp.json()["decisions"])
    await client.close()
    await app.drain()
    snapshot = app.gateway.snapshot()

    # Uninterrupted in-process reference: identical waves, one instant each.
    reference = Gateway(PLATFORM, num_shards=4, batch_size=8)
    position = 0
    for wave in range(RESTART_WAVES):
        fields, ats = [], []
        for _ in range(RESTART_WAVE_SIZE):
            entry = plan.body(position)
            position += 1
            ats.append(entry.pop("at"))
            entry["client"] = "anonymous"
            fields.append(entry)
        reference.submit_many(fields, now=max(ats))
    expected = [
        "accepted" if reference.get(rid).reservation.confirmed else "rejected"
        for rid in range(len(outcomes))
    ]

    successor = ServeApp(serve_config(journal_path=journal_path), clock=LogicalClock())
    audit = check_gateway(
        successor.gateway, journal=successor.journal, expect_quiesced=True
    )
    return {
        "decisions": len(outcomes),
        "snapshot_equal": successor.snapshot() == snapshot,
        "decision_equivalent": outcomes == expected,
        "invariants_ok": audit.ok,
        "violations": list(audit.violations),
    }
