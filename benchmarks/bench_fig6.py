"""Benchmark: regenerate Figure 6 (FCFS under different f policies).

Checks: when underloaded, smaller granted bandwidth accepts more requests
(MIN BW best, accept rate monotone decreasing in f); under heavy load the
policy curves collapse together (the MIN BW advantage shrinks away in
absolute terms).
"""

from conftest import save_artifacts

from repro.experiments import fig6

POLICIES = ("min-bw", 0.5, 1.0)
N_REQUESTS = 600
SEEDS = (0, 1)


def test_fig6(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: fig6(
            gaps_heavy=(0.2, 1.0),
            gaps_light=(5.0, 20.0),
            policies=POLICIES,
            n_requests=N_REQUESTS,
            seeds=SEEDS,
        ),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "fig6", table, chart)

    rows = [dict(zip(table.headers, row)) for row in table.rows]
    lightest = rows[-1]
    heaviest = rows[0]
    # light load: MIN BW > f=0.5 > f=1
    assert lightest["min-bw"] > lightest["0.5"] > lightest["1.0"]
    # heavy load: the absolute spread between policies collapses
    light_spread = lightest["min-bw"] - lightest["1.0"]
    heavy_spread = heaviest["min-bw"] - heaviest["1.0"]
    assert heavy_spread < light_spread
