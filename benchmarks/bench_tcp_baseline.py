"""Benchmark: reservation vs max-min statistical sharing (§1/§5.3).

The paper's motivation: in an overloaded network, statistical sharing lets
transfers overshoot their windows or fail entirely, while admission control
keeps every accepted transfer on time.  Checks that the fluid baseline
degrades with load and wastes capacity in drop mode.
"""

from conftest import save_artifacts

from repro.experiments import tcp_baseline


def test_tcp_baseline(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: tcp_baseline(gaps=(0.5, 2.0, 10.0), n_requests=300, seeds=(0,)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "tcp", table, chart)

    rows = [dict(zip(table.headers, row)) for row in table.rows]
    heavy, light = rows[0], rows[-1]
    # sharing degrades as the network gets busier
    assert heavy["fluid_met"] < light["fluid_met"]
    # in drop mode, failed transfers wasted real capacity
    assert heavy["fluid_wasted_tb"] > 0
    assert heavy["fluid_dropped"] > light["fluid_dropped"]
