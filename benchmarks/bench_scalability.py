"""Scalability benchmarks: scheduler runtime vs workload size.

The online heuristics must scale to long traces; these parametrised
benchmarks record throughput at three workload sizes so regressions in
the hot paths (the vectorised WINDOW packing, the ledger queries of the
book-ahead search) show up in benchmark history.
"""

import pytest

from repro.schedulers import (
    EarliestStartFlexible,
    FractionOfMaxPolicy,
    GreedyFlexible,
    WindowFlexible,
    cumulated_slots,
)
from repro.workload import paper_flexible_workload, paper_rigid_workload

SIZES = [500, 2000, 8000]


@pytest.mark.parametrize("n", SIZES)
def test_greedy_scaling(benchmark, n):
    problem = paper_flexible_workload(0.5, n, seed=1)
    result = benchmark.pedantic(
        lambda: GreedyFlexible().schedule(problem), rounds=3, iterations=1
    )
    assert result.num_decided == n


@pytest.mark.parametrize("n", SIZES)
def test_window_scaling(benchmark, n):
    problem = paper_flexible_workload(0.5, n, seed=1)
    result = benchmark.pedantic(
        lambda: WindowFlexible(t_step=400.0, policy=FractionOfMaxPolicy(1.0)).schedule(problem),
        rounds=3,
        iterations=1,
    )
    assert result.num_decided == n


@pytest.mark.parametrize("n", SIZES)
def test_bookahead_scaling(benchmark, n):
    problem = paper_flexible_workload(0.5, n, seed=1)
    result = benchmark.pedantic(
        lambda: EarliestStartFlexible().schedule(problem), rounds=1, iterations=1
    )
    assert result.num_decided == n


@pytest.mark.parametrize("n", [500, 2000])
def test_slots_scaling(benchmark, n):
    problem = paper_rigid_workload(8.0, n, seed=1)
    result = benchmark.pedantic(
        lambda: cumulated_slots().schedule(problem), rounds=1, iterations=1
    )
    assert result.num_decided == n
