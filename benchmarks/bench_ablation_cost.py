"""Benchmark: CUMULATED-SLOTS cost-factor design ablation.

Separates the two terms of the §4.2 cost (priority protection, b_min
normalisation) and compares against plain MINBW ordering across loads.
"""

from conftest import save_artifacts

from repro.experiments import ablation_cost


def test_ablation_cost(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: ablation_cost(loads=(2.0, 8.0, 16.0), n_requests=400, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "ablation_cost", table, chart)

    for row in table.rows:
        r = dict(zip(table.headers, row))
        # on the uniform paper platform b_min is a constant scale: disabling
        # it leaves the ordering intact up to float ties flipping a request
        assert abs(r["full"] - r["no-bmin"]) < 0.02
        # with priority disabled the cost degenerates to bw/b_min = MINBW
        assert abs(r["no-priority"] - r["minbw"]) < 0.02
