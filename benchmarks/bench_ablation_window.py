"""Benchmark: WINDOW interval-length ablation.

Quantifies the §5.2 trade-off: longer decision intervals improve packing
but delay every decision (response time) and kill requests whose deadline
passes while they wait in the batch.
"""

from conftest import save_artifacts

from repro.experiments import ablation_window


def test_ablation_window(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: ablation_window(
            t_steps=(50.0, 200.0, 800.0, 3200.0), gap=0.5, n_requests=600, seeds=(0, 1)
        ),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "ablation_window", table, chart)

    waits = table.column("mean_wait")
    kills = table.column("deadline_kills")
    # response time and deadline kills grow monotonically with t_step
    assert all(a <= b + 1e-9 for a, b in zip(waits, waits[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(kills, kills[1:]))
    # accept rate peaks at an intermediate window: the largest window is
    # not the best once deadline kills dominate
    accepts = table.column("accept_rate")
    assert max(accepts[1:-1]) >= accepts[-1] - 0.01
