"""gridlint wall-time gate: the flow-sensitive rules must stay cheap.

PR 7 added CFG construction and three dataflow fixpoints (typestate,
taint, reaching definitions) on top of the ten single-pass AST rules.
This bench runs the full ``src`` tree twice — once with the legacy
catalogue (GL001–GL010, the pre-flow baseline) and once with every rule —
and gates the ratio: flow analysis may at most *double* the lint time
(``MAX_SLOWDOWN``).  The solver's pre-filters (verb mentions, sink
tokens) are what keep the ratio honest: most modules never build a CFG.

Also checks the ``--jobs`` parse parallelism stays report-identical, and
writes ``benchmarks/results/BENCH_lint.json`` (a CI artifact) with the
timings, file count and per-catalogue finding counts.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis import all_rules, run_analysis

#: Full catalogue may cost at most this multiple of the legacy catalogue.
MAX_SLOWDOWN = 2.0

#: Ratios are noisy when both runs are fast; the gate also passes while
#: the absolute flow overhead stays under this many seconds.
ABSOLUTE_SLACK_S = 1.0

REPEATS = 3

SRC = Path(__file__).parent.parent / "src"

#: The pre-flow catalogue: the ten single-pass AST rules of PRs 1–6.
LEGACY_MAX_ID = "GL010"


def _legacy_rules():
    return [rule for rule in all_rules() if rule.rule_id <= LEGACY_MAX_ID]


def _time_run(rules):
    best = float("inf")
    report = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        report = run_analysis([SRC], rules)
        best = min(best, time.perf_counter() - start)
    return best, report


def test_flow_rules_stay_under_slowdown_gate(results_dir):
    legacy_time, legacy_report = _time_run(_legacy_rules())
    full_time, full_report = _time_run(all_rules())

    # Same tree, strictly larger catalogue: scan coverage must agree.
    assert full_report.files_scanned == legacy_report.files_scanned
    assert full_report.findings == [], "src tree must lint clean"

    slowdown = full_time / legacy_time if legacy_time > 0 else float("inf")
    overhead = full_time - legacy_time
    assert slowdown < MAX_SLOWDOWN or overhead < ABSOLUTE_SLACK_S, (
        f"flow rules slowed gridlint {slowdown:.2f}x "
        f"(legacy {legacy_time:.3f}s → full {full_time:.3f}s); "
        f"gate is {MAX_SLOWDOWN}x"
    )

    parallel_report = run_analysis([SRC], all_rules(), jobs=4)
    assert parallel_report.to_json() == full_report.to_json()

    payload = {
        "files_scanned": full_report.files_scanned,
        "legacy_rules": len(_legacy_rules()),
        "full_rules": len(all_rules()),
        "legacy_time_s": round(legacy_time, 4),
        "full_time_s": round(full_time, 4),
        "slowdown": round(slowdown, 3),
        "gate": MAX_SLOWDOWN,
        "suppressed_findings": len(full_report.suppressed),
    }
    (results_dir / "BENCH_lint.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )
