"""Chaos-plane overhead gate and lossy-mesh degradation report.

Two claims the chaos plane makes, both checked here:

1. **Disabled chaos is free.**  A gateway built with an all-zero
   :class:`~repro.gateway.rpc.ChaosPolicy` must make byte-identical
   admission decisions to a gateway without the channel layer, and its
   simulated-cost throughput must stay within ``MAX_OVERHEAD`` (5%) of
   the plain gateway on the same wave workload ``bench_gateway`` uses.
   The channel wrapper is a pure pass-through when chaos is off — no RNG
   draws, no simulated latency — so any drift here is a regression.

2. **Lossy meshes degrade, they don't corrupt.**  A sweep over drop
   rates × seeds records accept rate, re-admissions, and simulated
   seconds burned waiting on lost deliveries; every cell must finish
   invariant-clean (no overcommit, no zombie holds, replayable journal
   implied by the drill's own checks).  The accept rate may fall as the
   mesh gets lossier — that is the *point* of degraded-mode admission —
   but bookings never outrun confirmed reservations.

A scaled-down chaos matrix (seeds × all five canned scenarios) also runs
here so a plain benchmark invocation leaves a ``CHAOS_matrix.json``
artifact; CI runs the full-size matrix via ``tests/test_chaos.py``.

Results land in ``benchmarks/results/BENCH_chaos.{json,txt}`` and
``benchmarks/results/CHAOS_matrix.json`` (uploaded as CI artifacts).
"""

from __future__ import annotations

import json
import random

from bench_gateway import wave_workload, CAP, PORTS

from repro.control.faults import run_chaos_matrix
from repro.core.platform import Platform
from repro.core.request import Request
from repro.gateway import ChaosPolicy, Gateway, check_gateway
from repro.gateway.rpc import EdgeChaos
from repro.schedulers.retry import BackoffSchedule

#: Max simulated-throughput overhead of the disabled chaos plane.
MAX_OVERHEAD = 0.05

SHARDS = 4
BATCH = 4
DROP_RATES = (0.0, 0.2, 0.4, 0.6)
SWEEP_SEEDS = (0, 1, 2)
MATRIX_SEEDS = (0, 1)


def lossy_workload(seed, n=40, ports=PORTS, horizon=400.0):
    """Seeded mixed local/cross-shard requests for the degradation sweep."""
    rng = random.Random(seed)
    requests = []
    for rid in range(n):
        t0 = rng.uniform(0.0, horizon)
        duration = rng.uniform(60.0, 200.0)
        rate = rng.uniform(10.0, 40.0)
        requests.append(
            Request(
                rid=rid,
                ingress=rng.randrange(ports),
                egress=rng.randrange(ports),
                volume=rng.uniform(0.2, 0.8) * rate * duration,
                t_start=t0,
                t_end=t0 + duration,
                max_rate=rate,
            )
        )
    requests.sort(key=lambda r: r.t_start)
    return requests


def run_waves(submissions, chaos):
    gateway = Gateway(
        Platform.uniform(PORTS, PORTS, CAP),
        num_shards=SHARDS,
        batch_size=BATCH,
        chaos=chaos,
    )
    for sub in submissions:
        gateway.submit(**sub)
    gateway.drain(submissions[-1]["now"])
    assert gateway.pending() == 0
    return gateway


def run_lossy_cell(drop, seed):
    gateway = Gateway(
        Platform.uniform(PORTS, PORTS, CAP),
        num_shards=SHARDS,
        batch_size=BATCH,
        chaos=(
            ChaosPolicy(seed=seed, default=EdgeChaos(drop=drop)) if drop > 0.0 else None
        ),
        backoff=BackoffSchedule(base=1.0, multiplier=1.5, max_attempts=5),
        rpc_deadline=120.0,
        backlog_limit=8,
        hold_ttl=60.0,
    )
    requests = lossy_workload(seed)
    for request in requests:
        gateway.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=request.volume,
            deadline=request.t_end,
            now=request.t_start,
            max_rate=request.max_rate,
        )
    last = max(r.t_end for r in requests)
    for _ in range(8):
        gateway.drain(gateway.now + 61.0)
        if gateway.now > last and not any(b.holds() for b in gateway.brokers):
            break
    report = check_gateway(gateway, now=gateway.now, expect_quiesced=True)
    assert report.ok, report.violations
    stats = gateway.stats
    decided = stats.accepted + stats.rejected
    return {
        "drop": drop,
        "seed": seed,
        "decided": decided,
        "accepted": stats.accepted,
        "accept_rate": round(stats.accepted / decided, 4) if decided else 0.0,
        "shard_unreachable": stats.shard_unreachable,
        "readmitted": stats.readmitted,
        "recovered_deliveries": stats.recovered_deliveries,
        "compensations": stats.compensations,
        "stranded_holds": stats.stranded_holds,
        "chaos_drops": stats.chaos_drops,
        "chaos_wait": round(stats.chaos_wait_total, 1),
    }


def test_disabled_chaos_plane_is_free(results_dir):
    submissions = wave_workload()
    plain = run_waves(submissions, chaos=None)
    gated = run_waves(submissions, chaos=ChaosPolicy(seed=0))

    # Byte-identical decisions and state: the pass-through changes nothing.
    assert gated.snapshot() == plain.snapshot()
    assert gated.stats.as_dict() == plain.stats.as_dict()
    assert gated.stats.chaos_drops == 0 and gated.stats.chaos_wait_total == 0.0

    ratio = gated.throughput() / plain.throughput()
    overhead = 1.0 - ratio

    sweep = [run_lossy_cell(drop, seed) for drop in DROP_RATES for seed in SWEEP_SEEDS]

    lines = [
        f"chaos-off overhead: {overhead * 100:.2f}% (gate: <= {MAX_OVERHEAD * 100:.0f}%)",
        "",
        f"{'drop':>5} {'seed':>4} {'accept%':>8} {'unreach':>7} "
        f"{'readmit':>7} {'recov':>5} {'wait':>8}",
    ]
    for row in sweep:
        lines.append(
            f"{row['drop']:>5.1f} {row['seed']:>4} {row['accept_rate'] * 100:>8.1f} "
            f"{row['shard_unreachable']:>7} {row['readmitted']:>7} "
            f"{row['recovered_deliveries']:>5} {row['chaos_wait']:>8.1f}"
        )
    (results_dir / "BENCH_chaos.txt").write_text("\n".join(lines) + "\n")
    (results_dir / "BENCH_chaos.json").write_text(
        json.dumps(
            {
                "overhead": overhead,
                "max_overhead": MAX_OVERHEAD,
                "plain_throughput": plain.throughput(),
                "gated_throughput": gated.throughput(),
                "decisions_identical": True,
                "lossy_sweep": sweep,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert overhead <= MAX_OVERHEAD, (
        f"disabled chaos plane costs {overhead * 100:.2f}% simulated throughput "
        f"(gate: {MAX_OVERHEAD * 100:.0f}%); see BENCH_chaos.json"
    )


def test_chaos_matrix_smoke(results_dir):
    report = run_chaos_matrix(
        Platform.uniform(8, 8, 200.0),
        lambda seed: lossy_workload(seed, n=24, ports=8),
        seeds=MATRIX_SEEDS,
        num_shards=SHARDS,
        batch_size=BATCH,
        hold_ttl=60.0,
        rpc_deadline=60.0,
        horizon=400.0,
        tracing=True,
        flight_dir=results_dir / "flight",
    )
    (results_dir / "CHAOS_matrix.json").write_text(
        json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n"
    )
    # Every cell's causal trace, one artifact: `grid-obs explain <rid>
    # CHAOS_trace.json` reconstructs any request in any cell after the run.
    assert report.telemetry is not None
    report.telemetry.save(results_dir / "CHAOS_trace.json")
    assert report.ok, report.violations
    assert report.slo_ok, [c["slo"] for c in report.cells if not c["slo"]["ok"]]
    # Invariant-clean cells leave no flight dumps behind.
    assert report.flight_paths == []
