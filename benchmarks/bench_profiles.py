"""Malleable-profile plane: free when unused, accepts more when used.

Two properties of the stepwise-rate (:class:`~repro.core.profile.RateProfile`)
refactor are gated, mirroring the promises the profile plane makes:

- **constant-path neutrality** — on a fully feasible constant-rate
  workload the ``guaranteed-profile`` scheduler must produce a decision
  trace byte-identical to the constant ``bookahead`` family it extends
  (shaping never engages when the constant search succeeds) and finish
  within ``MAX_OVERHEAD`` (5%) of its wall time.  The workload is made
  fully feasible by a self-filtering pass: requests the baseline rejects
  are dropped and the survivors re-run — removing never-allocated
  requests cannot change an earliest-fit trace, so the filtered problem
  accepts everything and the profile fallback has nothing to do;
- **shaping uplift** — on congested hotspot and diurnal workloads (the
  paper's §7 stress scenarios) the shaped fallback must accept strictly
  more requests than the constant-rate baseline, on every seed.

Results land in ``benchmarks/results/BENCH_profiles.json`` (uploaded as
a CI artifact) plus a human-readable table.
"""

from __future__ import annotations

import json
import math
import time

import numpy as np

from repro.core.platform import Platform
from repro.core.problem import ProblemInstance
from repro.core.request import RequestSet
from repro.schedulers import (
    EarliestStartFlexible,
    FractionOfMaxPolicy,
    GuaranteedProfile,
    MinRatePolicy,
)
from repro.workload import (
    FlexibleWorkload,
    HotspotPairs,
    PoissonArrivals,
    SinusoidalArrivals,
)

#: The profile-aware scheduler may cost at most this much wall time over
#: the constant baseline on a workload where shaping never engages.
MAX_OVERHEAD = 1.05

CONSTANT_REQUESTS = 600
UPLIFT_REQUESTS = 400
REPEATS = 5
SEEDS = (0, 1, 2)


def constant_problem(seed: int = 0) -> ProblemInstance:
    """A fully feasible constant-rate workload (see module docstring)."""
    platform = Platform.paper_platform()
    workload = FlexibleWorkload(platform, arrivals=PoissonArrivals(40.0))
    prob = workload.generate(CONSTANT_REQUESTS, np.random.default_rng(seed))
    baseline = EarliestStartFlexible(policy=MinRatePolicy()).schedule(prob)
    survivors = [r for r in prob.requests if r.rid not in baseline.rejected]
    return ProblemInstance(platform=platform, requests=RequestSet(survivors))


def hotspot_problem(seed: int, skew: float = 8.0) -> ProblemInstance:
    platform = Platform.paper_platform()
    weights = [skew] + [1.0] * (platform.num_egress - 1)
    workload = FlexibleWorkload(
        platform,
        arrivals=PoissonArrivals(2.0),
        pairs=HotspotPairs(egress_weights=weights),
    )
    return workload.generate(UPLIFT_REQUESTS, np.random.default_rng(seed))


def diurnal_problem(seed: int, amplitude: float = 0.9) -> ProblemInstance:
    platform = Platform.paper_platform()
    workload = FlexibleWorkload(
        platform,
        arrivals=SinusoidalArrivals(mean=2.0, amplitude=amplitude, period=7200.0),
    )
    return workload.generate(UPLIFT_REQUESTS, np.random.default_rng(seed))


def trace(result) -> str:
    """Canonical JSON decision trace: per-rid grant or reject."""
    grants = sorted(
        (rid, alloc.sigma, alloc.tau, alloc.bw) for rid, alloc in result.accepted.items()
    )
    return json.dumps({"grants": grants, "rejected": sorted(result.rejected)})


def timed_schedule(scheduler, prob) -> tuple[str, float]:
    """Best-of-``REPEATS`` wall time plus the (repeat-invariant) trace."""
    best = math.inf
    decisions = ""
    for _ in range(REPEATS):
        t_begin = time.perf_counter()
        result = scheduler.schedule(prob)
        best = min(best, time.perf_counter() - t_begin)
        decisions = trace(result)
    return decisions, best


def test_profiles_free_when_off_uplift_when_on(results_dir):
    # -- gate 1: constant-path neutrality ------------------------------
    prob = constant_problem()
    baseline = EarliestStartFlexible(policy=MinRatePolicy())
    shaped = GuaranteedProfile(policy=MinRatePolicy())

    base_trace, base_seconds = timed_schedule(baseline, prob)
    shaped_trace, shaped_seconds = timed_schedule(shaped, prob)

    assert json.loads(base_trace)["rejected"] == [], (
        "constant workload is not fully feasible; the neutrality gate "
        "needs a shaping-free run"
    )
    assert base_trace == shaped_trace, (
        "guaranteed-profile diverged from the constant trace on a "
        "workload where shaping never engages"
    )
    overhead = shaped_seconds / base_seconds
    # -- gate 2: shaping uplift on congested workloads -----------------
    scenarios = {
        "hotspot": (hotspot_problem, FractionOfMaxPolicy(1.0)),
        "diurnal": (diurnal_problem, MinRatePolicy()),
    }
    uplift_rows = []
    for name, (make_problem, policy) in scenarios.items():
        for seed in SEEDS:
            scenario = make_problem(seed)
            off = EarliestStartFlexible(policy=policy).schedule(scenario)
            on = GuaranteedProfile(policy=policy).schedule(scenario)
            uplift_rows.append(
                {
                    "scenario": name,
                    "seed": seed,
                    "accept_rate_off": off.accept_rate,
                    "accept_rate_on": on.accept_rate,
                }
            )
            assert on.accept_rate > off.accept_rate, (
                f"{name} seed {seed}: shaping accepted no extra requests "
                f"({on.accept_rate:.4f} vs {off.accept_rate:.4f})"
            )

    # -- artifacts -----------------------------------------------------
    lines = [
        f"constant path: baseline {base_seconds:.4f}s, "
        f"guaranteed-profile {shaped_seconds:.4f}s "
        f"({overhead:.3f}x, gate <= {MAX_OVERHEAD}x), traces identical",
        "",
        f"{'scenario':>8} {'seed':>4} {'off':>8} {'on':>8} {'uplift':>8}",
    ]
    for row in uplift_rows:
        lines.append(
            f"{row['scenario']:>8} {row['seed']:>4} "
            f"{row['accept_rate_off']:>8.4f} {row['accept_rate_on']:>8.4f} "
            f"{row['accept_rate_on'] - row['accept_rate_off']:>8.4f}"
        )
    (results_dir / "BENCH_profiles.txt").write_text("\n".join(lines) + "\n")
    (results_dir / "BENCH_profiles.json").write_text(
        json.dumps(
            {
                "constant": {
                    "requests": prob.num_requests,
                    "baseline_seconds": base_seconds,
                    "shaped_seconds": shaped_seconds,
                    "overhead": overhead,
                    "max_overhead": MAX_OVERHEAD,
                    "traces_identical": True,
                },
                "uplift": uplift_rows,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert overhead <= MAX_OVERHEAD, (
        f"profile-aware scheduler costs {overhead:.3f}x the constant "
        f"baseline on a shaping-free workload (gate <= {MAX_OVERHEAD}x); "
        "see BENCH_profiles.json"
    )
