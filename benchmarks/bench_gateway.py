"""Gateway throughput vs shard count and batch size (simulated cost model).

Wall-clock timing of a single-process simulation cannot demonstrate
sharding: every "parallel" broker runs on the same interpreter.  The
gateway therefore carries a deterministic cost model — each broker
accrues simulated work units (candidate scans, holds, commits, sweeps),
and a flushed batch costs its coordinator overhead plus the **maximum**
work any one broker did for it (brokers are conceptually parallel, so
the batch's critical path is its busiest broker).  Throughput here is
``decided requests / accumulated simulated cost``: deterministic,
seed-reproducible, and immune to CI machine noise.

The bench sweeps shards × batch size over one fixed wave workload and
asserts the headline claim: batched multi-shard admission sustains at
least ``MIN_SPEEDUP`` (2×) the single-shard, unbatched throughput.  It
also asserts the sweep is decision-invariant — sharding and batching
(FIFO) change *where* the work happens, never *what* is admitted.

Results land in ``benchmarks/results/BENCH_gateway.json`` (uploaded as a
CI artifact) plus a human-readable table.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.platform import Platform
from repro.gateway import Gateway

#: Batched multi-shard must beat single-shard unbatched by at least this.
MIN_SPEEDUP = 2.0

PORTS = 16
CAP = 1000.0
SHARD_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (1, 4, 8)
WAVES = 40
WAVE_SIZE = 8  # = max batch size, so full batches can coalesce


def wave_workload(seed=0):
    """Submissions in waves: WAVE_SIZE concurrent arrivals per instant.

    Concurrency is what batching exposes; the same fixed stream feeds
    every (shards, batch) configuration.
    """
    rng = np.random.default_rng(seed)
    submissions = []
    for wave in range(WAVES):
        t = wave * 30.0
        for _ in range(WAVE_SIZE):
            window = float(rng.uniform(200.0, 900.0))
            submissions.append(
                {
                    "ingress": int(rng.integers(PORTS)),
                    "egress": int(rng.integers(PORTS)),
                    "volume": min(
                        float(rng.uniform(10_000.0, 120_000.0)), 0.8 * CAP * window
                    ),
                    "deadline": t + window,
                    "now": t,
                }
            )
    return submissions


def run_config(submissions, num_shards, batch_size):
    gateway = Gateway(
        Platform.uniform(PORTS, PORTS, CAP),
        num_shards=num_shards,
        batch_size=batch_size,
    )
    for sub in submissions:
        gateway.submit(**sub)
    gateway.drain(submissions[-1]["now"])
    assert gateway.pending() == 0
    return gateway


def test_batched_sharded_gateway_doubles_throughput(results_dir):
    submissions = wave_workload()
    rows = []
    accepted_counts = set()
    throughput = {}
    for shards in SHARD_COUNTS:
        for batch in BATCH_SIZES:
            gw = run_config(submissions, shards, batch)
            decided = gw.stats.accepted + gw.stats.rejected
            assert decided == len(submissions)
            accepted_counts.add(gw.stats.accepted)
            tp = gw.throughput()
            throughput[(shards, batch)] = tp
            rows.append(
                {
                    "shards": shards,
                    "batch_size": batch,
                    "accepted": gw.stats.accepted,
                    "rejected": gw.stats.rejected,
                    "local": gw.stats.local,
                    "cross_shard": gw.stats.cross_shard,
                    "fastpath_hits": gw.stats.fastpath_hits,
                    "batches": gw.stats.batches,
                    "simulated_cost": round(gw.simulated_cost, 3),
                    "throughput": round(tp, 6),
                }
            )

    # Sharding/batching must not change a single admission decision.
    assert len(accepted_counts) == 1, f"decisions varied across configs: {accepted_counts}"

    baseline = throughput[(1, 1)]
    best_sharded = max(
        tp for (shards, batch), tp in throughput.items() if shards > 1 and batch > 1
    )
    speedup = best_sharded / baseline

    lines = [
        f"{'shards':>6} {'batch':>5} {'cost':>10} {'throughput':>10} {'speedup':>8}"
    ]
    for row in rows:
        lines.append(
            f"{row['shards']:>6} {row['batch_size']:>5} {row['simulated_cost']:>10} "
            f"{row['throughput']:>10} "
            f"{row['throughput'] / baseline:>8.2f}"
        )
    (results_dir / "BENCH_gateway.txt").write_text("\n".join(lines) + "\n")
    (results_dir / "BENCH_gateway.json").write_text(
        json.dumps(
            {
                "workload": {
                    "waves": WAVES,
                    "wave_size": WAVE_SIZE,
                    "ports": PORTS,
                    "capacity": CAP,
                },
                "rows": rows,
                "baseline_throughput": baseline,
                "best_sharded_throughput": best_sharded,
                "speedup": speedup,
                "min_speedup": MIN_SPEEDUP,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"batched multi-shard throughput is only {speedup:.2f}x the single-shard "
        f"unbatched baseline (need >= {MIN_SPEEDUP}x); see BENCH_gateway.json"
    )
