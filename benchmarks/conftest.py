"""Shared helpers for the benchmark suite.

Every figure benchmark runs a scaled-down version of the corresponding
experiment (the full-size parameterisations are what EXPERIMENTS.md
records; run them via ``grid-bandwidth run <figure>``).  Each bench writes
its table to ``benchmarks/results/<name>.{txt,csv}`` so a benchmark run
leaves inspectable artefacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.obs import RunTelemetry, Telemetry, use_telemetry

RESULTS_DIR = Path(__file__).parent / "results"
TELEMETRY_DIR = RESULTS_DIR / "telemetry"

#: Caps keep a long benchmark run memory-bounded; evictions are counted
#: inside the artifact ("dropped") rather than silently lost.
TELEMETRY_MAX_EVENTS = 20_000
TELEMETRY_MAX_SPANS = 20_000


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(autouse=True)
def run_telemetry(request: pytest.FixtureRequest):
    """Attach a capped telemetry capture to every benchmark.

    Whatever instrumented code the bench touches is recorded and written to
    ``benchmarks/results/telemetry/<test>.json`` on teardown (skipped when
    the bench recorded nothing).  Benches that measure the *cost* of
    telemetry itself (bench_obs_overhead) install their own handles inside
    the test body via nested ``use_telemetry`` calls, which shadow this one.
    """
    telemetry = Telemetry(max_events=TELEMETRY_MAX_EVENTS, max_spans=TELEMETRY_MAX_SPANS)
    with use_telemetry(telemetry):
        yield telemetry
    if telemetry.is_empty():
        return
    artifact = RunTelemetry(request.node.name)
    artifact.capture("bench", telemetry)
    TELEMETRY_DIR.mkdir(parents=True, exist_ok=True)
    artifact.save(TELEMETRY_DIR / f"{request.node.name}.json")


def save_artifacts(results_dir: Path, name: str, table, chart: str = "") -> None:
    """Persist a figure's table (text + CSV) and optional chart."""
    text = table.to_text()
    if chart:
        text += "\n\n" + chart
    (results_dir / f"{name}.txt").write_text(text + "\n")
    (results_dir / f"{name}.csv").write_text(table.to_csv())
