"""Shared helpers for the benchmark suite.

Every figure benchmark runs a scaled-down version of the corresponding
experiment (the full-size parameterisations are what EXPERIMENTS.md
records; run them via ``grid-bandwidth run <figure>``).  Each bench writes
its table to ``benchmarks/results/<name>.{txt,csv}`` so a benchmark run
leaves inspectable artefacts.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifacts(results_dir: Path, name: str, table, chart: str = "") -> None:
    """Persist a figure's table (text + CSV) and optional chart."""
    text = table.to_text()
    if chart:
        text += "\n\n" + chart
    (results_dir / f"{name}.txt").write_text(text + "\n")
    (results_dir / f"{name}.csv").write_text(table.to_csv())
