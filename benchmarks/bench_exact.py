"""Benchmark: exact solvers and heuristic optimality gaps (§3).

Times the Theorem 1 pipeline (3-DM → reduction → exact MILP) and measures
how far the rigid heuristics sit from the exact optimum on small
instances.
"""

import numpy as np
from conftest import save_artifacts

from repro.core import verify_schedule
from repro.exact import (
    max_requests_rigid_bb,
    max_requests_rigid_exact,
    max_requests_unit_slotted_exact,
    random_3dm,
    reduce_3dm,
    rigid_lp_bound,
    solve_3dm,
)
from repro.metrics import Table
from repro.schedulers import cumulated_slots, fifo_slots, minbw_slots
from repro.workload import paper_rigid_workload


def test_theorem1_pipeline(benchmark):
    rng = np.random.default_rng(42)
    instances = [random_3dm(3, num_extra=3, rng=rng, plant_matching=(k % 2 == 0)) for k in range(4)]

    def pipeline():
        agreements = 0
        for inst in instances:
            reduced = reduce_3dm(inst)
            schedule = max_requests_unit_slotted_exact(reduced.problem)
            has_matching = solve_3dm(inst) is not None
            agreements += (schedule.num_accepted >= reduced.target) == has_matching
        return agreements

    agreements = benchmark(pipeline)
    assert agreements == len(instances)


def test_optimality_gap(benchmark, results_dir):
    """Heuristic accept counts as a fraction of the exact optimum."""

    def measure():
        table = Table(
            ["seed", "exact", "lp_bound", "cumulated", "minbw", "fifo"],
            title="Optimality gap on small rigid instances (accepted requests)",
        )
        for seed in range(6):
            prob = paper_rigid_workload(8.0, 16, seed=seed)
            exact = max_requests_rigid_exact(prob)
            verify_schedule(prob.platform, prob.requests, exact)
            table.add_row(
                seed,
                exact.num_accepted,
                round(rigid_lp_bound(prob), 2),
                cumulated_slots().schedule(prob).num_accepted,
                minbw_slots().schedule(prob).num_accepted,
                fifo_slots().schedule(prob).num_accepted,
            )
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    save_artifacts(results_dir, "optimality_gap", table)
    for row in table.rows:
        r = dict(zip(table.headers, row))
        assert r["cumulated"] <= r["exact"] <= r["lp_bound"] + 1e-6
        assert r["minbw"] <= r["exact"]


def test_branch_bound_speed(benchmark):
    prob = paper_rigid_workload(8.0, 14, seed=5)
    result = benchmark(lambda: max_requests_rigid_bb(prob))
    assert result.num_accepted == max_requests_rigid_exact(prob).num_accepted
