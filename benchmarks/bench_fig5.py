"""Benchmark: regenerate Figure 5 (FCFS vs interval-based, heavy load, f=1).

Checks: WINDOW beats GREEDY in a very loaded network; longer windows help;
the strategies converge as the network lightens.
"""

from conftest import save_artifacts

from repro.experiments import fig5

GAPS = (0.1, 1.0, 5.0)
T_STEPS = (100.0, 400.0)
N_REQUESTS = 600
SEEDS = (0, 1)


def test_fig5(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: fig5(gaps=GAPS, t_steps=T_STEPS, n_requests=N_REQUESTS, seeds=SEEDS),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "fig5", table, chart)

    heaviest = dict(zip(table.headers, table.rows[0]))
    lightest = dict(zip(table.headers, table.rows[-1]))
    greedy = "greedy[f=1]"
    w100 = "window[100s,f=1]"
    w400 = "window[400s,f=1]"

    # interval-based improves a lot on FCFS under heavy load
    assert heaviest[w400] > heaviest[greedy]
    # the longer the interval, the better the accept rate (heavy load)
    assert heaviest[w400] >= heaviest[w100] - 0.01
    # similar performance when the network is not heavily loaded
    assert abs(lightest[w400] - lightest[greedy]) < 0.08
