"""Null-telemetry overhead guard for the booking hot path.

The telemetry layer promises that uninstrumented runs pay one attribute
read and a branch per instrumented call.  This bench holds it to that: it
times the instrumented :func:`repro.core.booking.earliest_fit` under the
default :class:`~repro.obs.telemetry.NullTelemetry` against a verbatim
copy of the pre-instrumentation search (the seed implementation, inlined
below so the baseline cannot silently drift), and asserts the overhead
stays under 5%.

Timing uses the injectable :class:`~repro.obs.perfclock.WallClock` — the
only sanctioned wall-clock source — with a min-of-repeats protocol so a
single noisy run cannot fail CI.  Results land in
``benchmarks/results/BENCH_obs.json``.
"""

from __future__ import annotations

import json
from collections.abc import Callable

import numpy as np

from repro.core import Platform, PortLedger, Request
from repro.core.booking import deadline_tolerance, earliest_fit
from repro.obs import NullTelemetry, Telemetry, WallClock, use_telemetry
from repro.obs.perfclock import PerfClock

from conftest import RESULTS_DIR

#: Allowed instrumented/seed ratio for the null-telemetry path.
MAX_NULL_OVERHEAD = 1.05
REPEATS = 15


# ----------------------------------------------------------------------
# The seed earliest_fit, copied verbatim from core/booking.py as of the
# commit before instrumentation.  Do not "fix" or share code with the
# library version: this IS the baseline.
# ----------------------------------------------------------------------
def _seed_min_rate_for(request: Request, sigma: float) -> float | None:
    needed = request.rate_for_deadline(sigma)
    if needed > request.max_rate * (1 + 1e-9):
        return None
    return min(needed, request.max_rate)


def _seed_earliest_fit(ledger, request, rate_for=None, *, not_before=None):
    if rate_for is None:
        rate_for = lambda sigma: _seed_min_rate_for(request, sigma)  # noqa: E731
    earliest = request.t_start if not_before is None else max(request.t_start, not_before)
    latest = request.t_end - request.min_duration
    if latest < earliest:
        return None
    starts = {earliest}
    points = list(ledger.ingress_timeline(request.ingress).breakpoints())
    points.extend(ledger.egress_timeline(request.egress).breakpoints())
    points.extend(ledger.degradation_edges("ingress", request.ingress))
    points.extend(ledger.degradation_edges("egress", request.egress))
    for t in points:
        if earliest < t <= latest:
            starts.add(float(t))
    tol = deadline_tolerance(request.t_end)
    for sigma in sorted(starts):
        bw = rate_for(sigma)
        if bw is None or bw <= 0:
            continue
        tau = sigma + request.volume / bw
        if tau > request.t_end + tol:
            continue
        if ledger.fits(request.ingress, request.egress, sigma, tau, bw):
            from repro.core.allocation import Allocation

            return Allocation.for_request(request, bw, sigma=sigma)
    return None


# ----------------------------------------------------------------------
def _workload(n: int = 300) -> tuple[Platform, PortLedger, list[Request]]:
    """A ledger with standing load plus a batch of probe requests."""
    platform = Platform.paper_platform()
    ledger = PortLedger(platform)
    rng = np.random.default_rng(7)
    for _ in range(200):
        i, e = int(rng.integers(10)), int(rng.integers(10))
        t0 = float(rng.uniform(0, 5e3))
        bw = float(rng.uniform(1, 40))
        if ledger.fits(i, e, t0, t0 + 300, bw):
            ledger.allocate(i, e, t0, t0 + 300, bw)
    requests = []
    for k in range(n):
        t0 = float(rng.uniform(0, 5e3))
        window = float(rng.uniform(600, 4000))
        bw_cap = float(rng.uniform(20, 200))
        requests.append(
            Request(
                rid=k,
                ingress=int(rng.integers(10)),
                egress=int(rng.integers(10)),
                volume=float(rng.uniform(0.1, 0.9)) * bw_cap * window,
                t_start=t0,
                t_end=t0 + window,
                max_rate=bw_cap,
            )
        )
    return platform, ledger, requests


def _time_min(clock: PerfClock, fn: Callable[[], object], repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of ``fn`` (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = clock.now()
        fn()
        t1 = clock.now()
        best = min(best, t1 - t0)
    return best


def test_null_telemetry_overhead_under_5_percent():
    clock = WallClock()
    _, ledger, requests = _workload()

    def run_seed() -> int:
        hits = 0
        for request in requests:
            if _seed_earliest_fit(ledger, request) is not None:
                hits += 1
        return hits

    def run_instrumented() -> int:
        hits = 0
        for request in requests:
            if earliest_fit(ledger, request) is not None:
                hits += 1
        return hits

    # Identical decisions first — a baseline that computes something else
    # would make the timing comparison meaningless.
    assert run_seed() == run_instrumented()

    with use_telemetry(NullTelemetry()):
        run_instrumented()  # warm-up
        null_time = _time_min(clock, run_instrumented)
    run_seed()  # warm-up
    seed_time = _time_min(clock, run_seed)

    with use_telemetry(Telemetry()):
        run_instrumented()  # warm-up
        enabled_time = _time_min(clock, run_instrumented)

    null_ratio = null_time / seed_time
    enabled_ratio = enabled_time / seed_time

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(
        json.dumps(
            {
                "requests": len(requests),
                "repeats": REPEATS,
                "seed_seconds": seed_time,
                "null_seconds": null_time,
                "enabled_seconds": enabled_time,
                "null_over_seed": null_ratio,
                "enabled_over_seed": enabled_ratio,
                "max_null_overhead": MAX_NULL_OVERHEAD,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )

    assert null_ratio < MAX_NULL_OVERHEAD, (
        f"null-telemetry booking path is {null_ratio:.3f}x the seed implementation "
        f"(budget {MAX_NULL_OVERHEAD}x); seed={seed_time:.6f}s null={null_time:.6f}s"
    )
