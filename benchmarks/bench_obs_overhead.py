"""Null-telemetry overhead guard for the booking hot path.

The telemetry layer promises that uninstrumented runs pay one attribute
read and a branch per instrumented call.  This bench holds it to that: it
times the instrumented :func:`repro.core.booking.earliest_fit` under the
default :class:`~repro.obs.telemetry.NullTelemetry` against a verbatim
copy of the pre-instrumentation search (the seed implementation, inlined
below so the baseline cannot silently drift), and asserts the overhead
stays under 5%.

A second gate covers the causal-tracing plane end to end: the full
sharded gateway on ``bench_gateway``'s wave workload with tracing
enabled (every RPC hop spans, every decision event carries its trace
context) must make byte-identical admission decisions to the same run
under :class:`~repro.obs.telemetry.NullTelemetry` and stay within 5% of
its simulated-cost throughput — the same currency ``bench_chaos``
gates the disabled chaos plane in.  Tracing observes, it never rides
the simulated critical path.  Wall-clock times for both runs are
recorded alongside (not gated: recording thousands of spans in pure
Python costs real wall time by design; the artifact keeps the trend
visible).

Timing uses the injectable :class:`~repro.obs.perfclock.WallClock` — the
only sanctioned wall-clock source — with a min-of-repeats protocol so a
single noisy run cannot fail CI.  Results land in
``benchmarks/results/BENCH_obs.json``.
"""

from __future__ import annotations

import json
from collections.abc import Callable

import numpy as np

from bench_gateway import CAP, PORTS, wave_workload

from repro.core import Platform, PortLedger, Request
from repro.core.booking import deadline_tolerance, earliest_fit
from repro.gateway import Gateway
from repro.obs import NullTelemetry, Telemetry, WallClock, use_telemetry
from repro.obs.perfclock import PerfClock

from conftest import RESULTS_DIR

#: Allowed instrumented/seed ratio for the null-telemetry path.
MAX_NULL_OVERHEAD = 1.05
#: Allowed simulated-cost overhead of the fully traced gateway.
MAX_TRACING_OVERHEAD = 0.05
REPEATS = 15
TRACING_REPEATS = 5


# ----------------------------------------------------------------------
# The seed earliest_fit, copied verbatim from core/booking.py as of the
# commit before instrumentation.  Do not "fix" or share code with the
# library version: this IS the baseline.
# ----------------------------------------------------------------------
def _seed_min_rate_for(request: Request, sigma: float) -> float | None:
    needed = request.rate_for_deadline(sigma)
    if needed > request.max_rate * (1 + 1e-9):
        return None
    return min(needed, request.max_rate)


def _seed_earliest_fit(ledger, request, rate_for=None, *, not_before=None):
    if rate_for is None:
        rate_for = lambda sigma: _seed_min_rate_for(request, sigma)  # noqa: E731
    earliest = request.t_start if not_before is None else max(request.t_start, not_before)
    latest = request.t_end - request.min_duration
    if latest < earliest:
        return None
    starts = {earliest}
    points = list(ledger.ingress_timeline(request.ingress).breakpoints())
    points.extend(ledger.egress_timeline(request.egress).breakpoints())
    points.extend(ledger.degradation_edges("ingress", request.ingress))
    points.extend(ledger.degradation_edges("egress", request.egress))
    for t in points:
        if earliest < t <= latest:
            starts.add(float(t))
    tol = deadline_tolerance(request.t_end)
    for sigma in sorted(starts):
        bw = rate_for(sigma)
        if bw is None or bw <= 0:
            continue
        tau = sigma + request.volume / bw
        if tau > request.t_end + tol:
            continue
        if ledger.fits(request.ingress, request.egress, sigma, tau, bw):
            from repro.core.allocation import Allocation

            return Allocation.for_request(request, bw, sigma=sigma)
    return None


# ----------------------------------------------------------------------
def _workload(n: int = 300) -> tuple[Platform, PortLedger, list[Request]]:
    """A ledger with standing load plus a batch of probe requests."""
    platform = Platform.paper_platform()
    ledger = PortLedger(platform)
    rng = np.random.default_rng(7)
    for _ in range(200):
        i, e = int(rng.integers(10)), int(rng.integers(10))
        t0 = float(rng.uniform(0, 5e3))
        bw = float(rng.uniform(1, 40))
        if ledger.fits(i, e, t0, t0 + 300, bw):
            ledger.allocate(i, e, t0, t0 + 300, bw)
    requests = []
    for k in range(n):
        t0 = float(rng.uniform(0, 5e3))
        window = float(rng.uniform(600, 4000))
        bw_cap = float(rng.uniform(20, 200))
        requests.append(
            Request(
                rid=k,
                ingress=int(rng.integers(10)),
                egress=int(rng.integers(10)),
                volume=float(rng.uniform(0.1, 0.9)) * bw_cap * window,
                t_start=t0,
                t_end=t0 + window,
                max_rate=bw_cap,
            )
        )
    return platform, ledger, requests


def _time_min(clock: PerfClock, fn: Callable[[], object], repeats: int = REPEATS) -> float:
    """Best-of-``repeats`` wall time of ``fn`` (min filters scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        t0 = clock.now()
        fn()
        t1 = clock.now()
        best = min(best, t1 - t0)
    return best


def test_null_telemetry_overhead_under_5_percent():
    clock = WallClock()
    _, ledger, requests = _workload()

    def run_seed() -> int:
        hits = 0
        for request in requests:
            if _seed_earliest_fit(ledger, request) is not None:
                hits += 1
        return hits

    def run_instrumented() -> int:
        hits = 0
        for request in requests:
            if earliest_fit(ledger, request) is not None:
                hits += 1
        return hits

    # Identical decisions first — a baseline that computes something else
    # would make the timing comparison meaningless.
    assert run_seed() == run_instrumented()

    with use_telemetry(NullTelemetry()):
        run_instrumented()  # warm-up
        null_time = _time_min(clock, run_instrumented)
    run_seed()  # warm-up
    seed_time = _time_min(clock, run_seed)

    with use_telemetry(Telemetry()):
        run_instrumented()  # warm-up
        enabled_time = _time_min(clock, run_instrumented)

    null_ratio = null_time / seed_time
    enabled_ratio = enabled_time / seed_time

    _merge_results(
        "booking",
        {
            "requests": len(requests),
            "repeats": REPEATS,
            "seed_seconds": seed_time,
            "null_seconds": null_time,
            "enabled_seconds": enabled_time,
            "null_over_seed": null_ratio,
            "enabled_over_seed": enabled_ratio,
            "max_null_overhead": MAX_NULL_OVERHEAD,
        },
    )

    assert null_ratio < MAX_NULL_OVERHEAD, (
        f"null-telemetry booking path is {null_ratio:.3f}x the seed implementation "
        f"(budget {MAX_NULL_OVERHEAD}x); seed={seed_time:.6f}s null={null_time:.6f}s"
    )


def _merge_results(section: str, payload: dict[str, object]) -> None:
    """Read-modify-write one section of ``BENCH_obs.json``.

    The booking and tracing gates run as separate tests; merging keeps one
    artifact regardless of which subset a CI shard executed.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "BENCH_obs.json"
    document: dict[str, object] = {}
    if path.exists():
        document = json.loads(path.read_text(encoding="utf-8"))
        if "null_over_seed" in document:  # pre-sectioned layout
            document = {"booking": document}
    document[section] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")


def test_traced_gateway_overhead_under_5_percent():
    clock = WallClock()
    submissions = wave_workload()

    def run_gateway(telemetry):
        gateway = Gateway(
            Platform.uniform(PORTS, PORTS, CAP),
            num_shards=4,
            batch_size=4,
            telemetry=telemetry,
        )
        for sub in submissions:
            gateway.submit(**sub)
        gateway.drain(submissions[-1]["now"])
        return gateway

    # Tracing must observe, never steer: byte-identical admission state.
    null_gw = run_gateway(NullTelemetry())
    traced_gw = run_gateway(Telemetry())
    assert traced_gw.snapshot() == null_gw.snapshot()
    assert vars(traced_gw.stats) == vars(null_gw.stats)
    spans = len(traced_gw.telemetry.tracer)
    assert spans > 0, "traced run recorded no spans — the gate measures nothing"

    # The gate: tracing adds no simulated cost (same currency bench_chaos
    # gates the chaos plane in — bench_gateway's throughput metric).
    overhead = 1.0 - traced_gw.throughput() / null_gw.throughput()

    run_gateway(NullTelemetry())  # warm-up
    null_time = _time_min(clock, lambda: run_gateway(NullTelemetry()), TRACING_REPEATS)
    run_gateway(Telemetry())  # warm-up
    traced_time = _time_min(clock, lambda: run_gateway(Telemetry()), TRACING_REPEATS)

    _merge_results(
        "tracing",
        {
            "submissions": len(submissions),
            "repeats": TRACING_REPEATS,
            "spans_per_run": spans,
            "simulated_overhead": overhead,
            "max_tracing_overhead": MAX_TRACING_OVERHEAD,
            "decisions_identical": True,
            "null_wall_seconds": null_time,
            "traced_wall_seconds": traced_time,
            "traced_over_null_wall": traced_time / null_time,
        },
    )

    assert abs(overhead) <= MAX_TRACING_OVERHEAD, (
        f"traced gateway loses {overhead * 100:.2f}% simulated throughput "
        f"(gate: <= {MAX_TRACING_OVERHEAD * 100:.0f}%); tracing must stay off "
        f"the simulated critical path"
    )
