"""Benchmarks: the CPU co-allocation layer and the enforcement validation."""

import numpy as np
from conftest import save_artifacts

from repro.experiments import coallocation
from repro.packetsim import AimdFlow, BottleneckLink, LinkSimulation, PacedFlow


def test_coallocation(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: coallocation(fs=("min-bw", 0.5, 1.0), n_jobs=250, seeds=(0, 1)),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "coallocation", table, chart)

    rows = {row[0]: dict(zip(table.headers, row)) for row in table.rows}
    # §2.3's trade: larger f lowers CPU·s/job and completion but admits less
    assert rows["1.0"]["cpu_s_per_job"] < rows["min-bw"]["cpu_s_per_job"]
    assert rows["1.0"]["mean_completion_s"] < rows["min-bw"]["mean_completion_s"]
    assert rows["1.0"]["completed_rate"] < rows["min-bw"]["completed_rate"]


def test_enforcement_validation(benchmark, results_dir):
    """§5.4: enforcement makes reserved rates exact under cross-traffic."""

    def run():
        link = BottleneckLink(capacity=125.0, buffer=12.5)
        flows = lambda: [PacedFlow(40.0), PacedFlow(30.0), AimdFlow(rtt=0.02, cwnd=4000.0)]
        protected = LinkSimulation(link, flows(), protect_paced=True).run(
            120.0, np.random.default_rng(0)
        )
        exposed = LinkSimulation(link, flows(), protect_paced=False).run(
            120.0, np.random.default_rng(0)
        )
        return protected, exposed

    protected, exposed = benchmark.pedantic(run, rounds=1, iterations=1)
    # protected reservations: exact rate, zero variance
    assert protected.goodput_std()[0] == 0.0
    assert protected.mean_goodput()[0] == 40.0
    # without enforcement the reservation degrades
    assert exposed.mean_goodput()[0] <= 40.0
    assert exposed.goodput_std()[0] >= 0.0


def test_link_simulation_speed(benchmark):
    link = BottleneckLink(capacity=125.0, buffer=12.5)
    flows = [AimdFlow(rtt=0.05, cwnd=2000.0) for _ in range(8)] + [PacedFlow(10.0)]
    sim = LinkSimulation(link, flows, protect_paced=True, dt=0.02)
    result = benchmark(lambda: sim.run(30.0, np.random.default_rng(1)))
    assert result.goodput.shape[1] == 9
