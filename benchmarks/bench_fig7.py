"""Benchmark: regenerate Figure 7 (WINDOW(400) under different f policies).

Checks the same policy conclusions as Figure 6 hold for the interval-based
heuristic, with the paper's note that heavy-load numbers are slightly
better than FCFS's.
"""

from conftest import save_artifacts

from repro.experiments import fig6, fig7

POLICIES = ("min-bw", 0.5, 1.0)
N_REQUESTS = 600
SEEDS = (0, 1)


def test_fig7(benchmark, results_dir):
    table, chart = benchmark.pedantic(
        lambda: fig7(
            gaps_heavy=(0.2, 1.0),
            gaps_light=(5.0, 20.0),
            policies=POLICIES,
            n_requests=N_REQUESTS,
            seeds=SEEDS,
        ),
        rounds=1,
        iterations=1,
    )
    save_artifacts(results_dir, "fig7", table, chart)

    rows = [dict(zip(table.headers, row)) for row in table.rows]
    lightest = rows[-1]
    # same conclusions as Figure 6 under light load
    assert lightest["min-bw"] > lightest["0.5"] > lightest["1.0"]


def test_fig7_beats_fig6_under_heavy_load(benchmark):
    """§5.3: the interval-based variant obtains slightly better results for
    small values of the average arrival time."""
    kwargs = dict(
        gaps_heavy=(0.2,),
        gaps_light=(),
        policies=("min-bw",),
        n_requests=N_REQUESTS,
        seeds=SEEDS,
    )

    def run():
        greedy_table, _ = fig6(**kwargs)
        window_table, _ = fig7(**kwargs)
        return (
            dict(zip(greedy_table.headers, greedy_table.rows[0])),
            dict(zip(window_table.headers, window_table.rows[0])),
        )

    greedy, window = benchmark.pedantic(run, rounds=1, iterations=1)
    assert window["min-bw"] >= greedy["min-bw"] - 0.02
