"""Tests for the scheduler registry."""

import pytest

from repro.core import ConfigurationError
from repro.schedulers import (
    Scheduler,
    available_schedulers,
    make_scheduler,
    register_scheduler,
)


class TestMakeScheduler:
    def test_all_names_construct(self):
        for name in available_schedulers():
            scheduler = make_scheduler(name)
            assert isinstance(scheduler, Scheduler)

    def test_expected_names_present(self):
        names = available_schedulers()
        for expected in ("fcfs-rigid", "fifo-slots", "cumulated-slots", "minbw-slots", "minvol-slots", "greedy", "window"):
            assert expected in names

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError, match="unknown scheduler"):
            make_scheduler("nope")

    def test_window_options(self):
        s = make_scheduler("window", t_step=123.0, policy=0.5)
        assert s.t_step == 123.0
        assert s.policy.f == 0.5

    def test_policy_spellings(self):
        assert make_scheduler("greedy", policy="min-bw").policy.name == "min-bw"
        assert make_scheduler("greedy", policy="f=0.8").policy.f == 0.8
        assert make_scheduler("greedy", policy=1.0).policy.f == 1.0

    def test_bad_policy(self):
        with pytest.raises(ConfigurationError):
            make_scheduler("greedy", policy="fastest")

    def test_unused_options_flagged(self):
        with pytest.raises(ConfigurationError, match="unused options"):
            make_scheduler("fcfs-rigid", t_step=10.0)

    def test_cumulated_ablation_options(self):
        s = make_scheduler("cumulated-slots", use_priority=False)
        assert "nopriority" in s.name

    def test_register_custom(self):
        class Dummy(Scheduler):
            name = "dummy"

            def schedule(self, problem):  # pragma: no cover - not exercised
                return self._new_result()

        register_scheduler("dummy", lambda kw: Dummy())
        try:
            assert isinstance(make_scheduler("dummy"), Dummy)
        finally:
            # keep the registry clean for other tests
            from repro.schedulers import registry

            del registry._FACTORIES["dummy"]
