"""The load harness: plans, percentile math, artifact schema, live runs.

The fleet tests drive a real in-process :class:`ServeApp` over a
listening socket — the same path the CI smoke takes, scaled down — with
a :class:`TickClock` injected so latency accounting is deterministic.
"""

import asyncio

import pytest

from repro.core.errors import ConfigurationError
from repro.core.platform import Platform
from repro.loadgen import (
    LOADGEN_SCHEMA,
    LatencySummary,
    LoadReport,
    LoadgenConfig,
    SubmissionPlan,
    percentile,
    run_load,
)
from repro.loadgen.plan import arrival_process
from repro.obs.perfclock import TickClock
from repro.obs.schema import SchemaError, validate
from repro.serve import ServeApp, ServeConfig
from repro.serve.clock import LogicalClock

PLATFORM = Platform.uniform(4, 4, 100.0)


def make_app(**overrides) -> ServeApp:
    settings = dict(
        platform=PLATFORM,
        num_shards=2,
        batch_size=4,
        slo_rules=(),
    )
    settings.update(overrides)
    return ServeApp(ServeConfig(**settings), clock=LogicalClock())


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestSubmissionPlan:
    def test_same_seed_same_bodies(self):
        a = SubmissionPlan(PLATFORM, 32, seed=5)
        b = SubmissionPlan(PLATFORM, 32, seed=5)
        assert [a.body(i) for i in range(32)] == [b.body(i) for i in range(32)]

    def test_different_seeds_differ(self):
        a = SubmissionPlan(PLATFORM, 32, seed=5)
        b = SubmissionPlan(PLATFORM, 32, seed=6)
        assert [a.body(i) for i in range(32)] != [b.body(i) for i in range(32)]

    def test_bodies_are_feasible_with_slack(self):
        """Every window exceeds the bottleneck transfer time by the floor —
        a wave flushed late never flips a plan body to infeasible."""
        floor = 600.0
        plan = SubmissionPlan(PLATFORM, 64, seed=1, deadline_floor=floor)
        for i in range(64):
            entry = plan.body(i)
            cap = PLATFORM.bottleneck(entry["ingress"], entry["egress"])
            window = entry["deadline"] - entry["at"]
            assert window >= entry["volume"] / cap + floor * 0.999

    def test_arrivals_are_sorted(self):
        plan = SubmissionPlan(PLATFORM, 64, seed=2)
        ats = [plan.body(i)["at"] for i in range(64)]
        assert ats == sorted(ats)

    def test_position_cycles_past_end(self):
        plan = SubmissionPlan(PLATFORM, 8, seed=0)
        assert plan.body(0) == plan.body(8)
        assert plan.body(3) == plan.body(11)

    def test_stride_slices_partition_the_plan(self):
        plan = SubmissionPlan(PLATFORM, 12, seed=0)
        seen = []
        for client in range(3):
            seen.extend(plan.slice_for(client, 3, 4))
        assert len(seen) == 12
        everything = [plan.body(i) for i in range(12)]
        for entry in everything:
            assert entry in seen

    def test_slice_rejects_client_outside_fleet(self):
        plan = SubmissionPlan(PLATFORM, 8, seed=0)
        with pytest.raises(ConfigurationError):
            plan.slice_for(3, 3, 1)

    def test_arrival_shapes(self):
        for shape in ("poisson", "uniform", "sinusoid"):
            assert arrival_process(shape, 1.0) is not None
        with pytest.raises(ConfigurationError):
            arrival_process("bursty", 1.0)
        with pytest.raises(ConfigurationError):
            arrival_process("poisson", 0.0)

    def test_plan_needs_positive_size(self):
        with pytest.raises(ConfigurationError):
            SubmissionPlan(PLATFORM, 0)


# ----------------------------------------------------------------------
# Percentiles and the artifact
# ----------------------------------------------------------------------
class TestPercentile:
    def test_nearest_rank_small_population(self):
        samples = [4.0, 1.0, 3.0, 2.0]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 25.0) == 1.0
        assert percentile(samples, 50.0) == 2.0
        assert percentile(samples, 75.0) == 3.0
        assert percentile(samples, 100.0) == 4.0

    def test_p99_and_p999_on_a_thousand(self):
        samples = [float(i) for i in range(1, 1001)]
        assert percentile(samples, 50.0) == 500.0
        assert percentile(samples, 99.0) == 990.0
        assert percentile(samples, 99.9) == 999.0

    def test_empty_population_reads_zero(self):
        assert percentile([], 99.0) == 0.0

    def test_out_of_range_quantile_rejected(self):
        with pytest.raises(ConfigurationError):
            percentile([1.0], 101.0)

    def test_latency_summary_of_samples(self):
        summary = LatencySummary.of([3.0, 1.0, 2.0])
        assert summary.count == 3
        assert summary.p50 == 2.0
        assert summary.max == 3.0
        assert summary.mean == pytest.approx(2.0)

    def test_latency_summary_empty(self):
        summary = LatencySummary.of([])
        assert summary.count == 0
        assert summary.p999 == 0.0


class TestLoadReportArtifact:
    def test_round_trip_validates(self):
        report = LoadReport(seed=1, clients=2, mode="closed")
        report.submits = 10
        report.accepted = 7
        report.rejected = 3
        report.submit_latencies = [0.01] * 10
        report.reject_reasons["ingress-full"] = 3
        report.endpoint_requests["/v1/reservations/batch"] = 2
        report.wall_seconds = 2.0
        doc = report.to_dict()
        assert validate(doc, LOADGEN_SCHEMA) == []
        assert doc["accept_rate"] == pytest.approx(0.7)
        assert doc["submits_per_second"] == pytest.approx(5.0)
        assert doc["latency"]["count"] == 10
        assert doc["endpoints"]["/v1/reservations/batch"]["per_second"] == 1.0

    def test_merge_folds_counters_and_samples(self):
        fleet = LoadReport(seed=0, clients=2, mode="closed")
        a = LoadReport(seed=0, clients=2, mode="closed")
        a.submits, a.accepted, a.submit_latencies = 3, 3, [0.1, 0.2, 0.3]
        b = LoadReport(seed=0, clients=2, mode="closed")
        b.submits, b.rejected, b.submit_latencies = 2, 2, [0.4, 0.5]
        b.reject_reasons["egress-full"] = 2
        fleet.merge(a)
        fleet.merge(b)
        assert fleet.submits == 5
        assert fleet.decided == 5
        assert fleet.accept_rate == pytest.approx(0.6)
        assert sorted(fleet.submit_latencies) == [0.1, 0.2, 0.3, 0.4, 0.5]
        assert fleet.reject_reasons["egress-full"] == 2

    def test_schema_rejects_malformed_artifact(self):
        report = LoadReport(seed=0, clients=1, mode="closed")
        doc = report.to_dict()
        doc["mode"] = "open"  # not in the enum
        assert validate(doc, LOADGEN_SCHEMA) != []
        report.mode = "open"
        with pytest.raises(SchemaError):
            report.to_dict()


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestLoadgenConfig:
    def test_rejects_nonpositive_fleet(self):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(host="h", port=1, clients=0)

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(host="h", port=1, mode="open")

    def test_rejects_unbounded_run(self):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(host="h", port=1, target_submissions=0, duration_s=0.0)

    def test_rejects_nonpositive_timescale(self):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(host="h", port=1, timescale=0.0)


# ----------------------------------------------------------------------
# Live fleet against an in-process service
# ----------------------------------------------------------------------
class TestRunLoad:
    def _run(self, config_overrides=None, app_overrides=None):
        async def inner():
            app = make_app(**(app_overrides or {}))
            host, port = await app.start()
            settings = dict(
                clients=4, batch=8, target_submissions=96, seed=3
            )
            settings.update(config_overrides or {})
            config = LoadgenConfig(host=host, port=port, **settings)
            report = await run_load(
                config, platform=PLATFORM, perf=TickClock(step=0.001)
            )
            await app.drain()
            return app, report

        return asyncio.run(inner())

    def test_closed_fleet_hits_the_target(self):
        app, report = self._run()
        assert report.submits == 96
        assert report.decided == 96
        assert report.transport_errors == 0
        assert report.http_errors == 0
        assert len(report.submit_latencies) == 96
        assert all(latency > 0 for latency in report.submit_latencies)
        assert app.gateway.stats.submits == 96

    def test_report_validates_and_counts_endpoints(self):
        _, report = self._run()
        report.wall_seconds = max(report.wall_seconds, 1e-9)
        doc = report.to_dict()
        assert validate(doc, LOADGEN_SCHEMA) == []
        assert doc["endpoints"]["/v1/reservations/batch"]["requests"] == 12

    def test_single_submit_mode_uses_singleton_endpoint(self):
        _, report = self._run({"batch": 1, "target_submissions": 8, "clients": 2})
        assert report.submits == 8
        assert report.endpoint_requests["/v1/reservations"] == 8

    def test_auxiliary_reads_share_the_connection(self):
        _, report = self._run(
            {"status_every": 4, "cancel_every": 8, "target_submissions": 32}
        )
        assert report.submits == 32
        assert report.endpoint_requests["/v1/reservations/{rid}"] > 0

    def test_paced_mode_with_timescale(self):
        _, report = self._run(
            {
                "mode": "paced",
                "timescale": 10_000.0,
                "target_submissions": 32,
                "clients": 2,
            }
        )
        assert report.submits == 32
        assert report.mode == "paced"

    def test_duration_bound_stops_the_fleet(self):
        # TickClock advances 1 ms per read: the deadline trips after a
        # bounded number of reads, so the run ends without a target.
        _, report = self._run(
            {"target_submissions": 0, "duration_s": 0.05, "clients": 2}
        )
        assert report.submits > 0
