"""Fixture tests for the flow-sensitive rules GL011–GL014.

Each rule gets fires-on-planted-violation and suppression coverage, plus
negative fixtures for the patterns the rules must stay quiet on (the
idioms ``gateway/twophase.py`` actually uses: lambda-wrapped verbs,
ownership transfer into result lists, try/except compensation).
"""

import json
import textwrap

from repro.analysis import all_rules, run_analysis
from repro.analysis.cli import main


def _scan(tmp_path, source, *, filename="mod.py"):
    (tmp_path / filename).parent.mkdir(parents=True, exist_ok=True)
    (tmp_path / filename).write_text(textwrap.dedent(source))
    return run_analysis([tmp_path], all_rules())


def _active(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


def _suppressed(report, rule_id):
    return [f for f in report.suppressed if f.rule == rule_id]


class TestGL011HoldLeak:
    def test_fires_on_early_return_leak(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def admit(channel, port):
                hold = channel.prepare(port)
                if port > 4:
                    return None
                channel.commit(hold.hold_id)
                return hold
            """,
        )
        findings = _active(report, "GL011")
        assert len(findings) == 1
        assert findings[0].line == 2  # reported at the acquire site
        assert "normal return path" in findings[0].message

    def test_fires_on_exception_path_leak(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def admit(channel, other, port):
                hold = channel.prepare(port)
                probe = other.prepare(port)
                channel.commit(hold.hold_id)
                other.commit(probe.hold_id)
            """,
        )
        findings = _active(report, "GL011")
        # If other.prepare raises, `hold` leaks; if channel.commit raises,
        # `probe` leaks.
        assert {(f.line, "exception path" in f.message) for f in findings} == {
            (2, True),
            (3, True),
        }

    def test_fires_on_discarded_prepare(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def admit(channel, port):
                channel.prepare(port)
            """,
        )
        findings = _active(report, "GL011")
        assert len(findings) == 1
        assert "discarded" in findings[0].message

    def test_quiet_on_try_finally_resolution(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def admit(channel, port):
                hold = channel.prepare(port)
                try:
                    use(hold)
                finally:
                    channel.abort_hold(hold.hold_id)
            """,
        )
        assert _active(report, "GL011") == []

    def test_quiet_on_ownership_transfer(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def place(channel, port, placed):
                hold = channel.prepare(port)
                placed.append((channel, hold))

            def passthrough(broker, side, port):
                return broker.prepare(side, port)
            """,
        )
        assert _active(report, "GL011") == []

    def test_quiet_on_lambda_wrapped_verbs(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def admit(self, channel, port):
                hold = self._with_retry(lambda: channel.prepare(port))
                self._with_retry(lambda h=hold: channel.commit(h.hold_id))
            """,
        )
        assert _active(report, "GL011") == []

    def test_quiet_on_none_guard(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def admit(channel, port):
                hold = channel.prepare(port)
                if hold is None:
                    return None
                channel.commit(hold.hold_id)
            """,
        )
        assert _active(report, "GL011") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def admit(channel, port):
                hold = channel.prepare(port)  # gridlint: disable=GL011 -- TTL sweep owns cleanup here
                return None
            """,
        )
        assert _active(report, "GL011") == []
        assert len(_suppressed(report, "GL011")) == 1


class TestGL012TwoPhase:
    def test_fires_on_commit_before_prepare(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def resolve(channel, hold, port):
                channel.commit(hold.hold_id)
                h2 = channel.prepare(port)
                channel.commit(h2.hold_id)
            """,
        )
        findings = _active(report, "GL012")
        assert len(findings) == 1
        assert findings[0].line == 2
        assert "order" in findings[0].message

    def test_fires_on_unkeyed_double_resolution(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def resolve(channel, port):
                hold = channel.prepare(port)
                channel.commit(hold.hold_id)
                channel.commit(hold.hold_id)
            """,
        )
        findings = _active(report, "GL012")
        assert len(findings) == 1
        assert "resolved twice" in findings[0].message

    def test_quiet_on_keyed_double_resolution(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def resolve(channel, port, rid):
                hold = channel.prepare(port)
                channel.commit(hold.hold_id, key=(rid, "in"))
                channel.commit(hold.hold_id, key=(rid, "in"))
            """,
        )
        assert _active(report, "GL012") == []

    def test_fires_on_rid_reuse_direct(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def readmit(request, now):
                return Request(rid=request.rid, t0=now)
            """,
        )
        findings = _active(report, "GL012")
        assert len(findings) == 1
        assert "fresh rid" in findings[0].message

    def test_fires_on_rid_reuse_via_local(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def readmit(request, now):
                stale = request.rid
                return replace(request, rid=stale, t0=now)
            """,
        )
        assert len(_active(report, "GL012")) == 1

    def test_quiet_on_fresh_rid(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def readmit(self, request, now):
                return Request(rid=self._take_rid(), t0=now)
            """,
        )
        assert _active(report, "GL012") == []

    def test_quiet_inside_reshape_tail(self, tmp_path):
        # The in-place reshape verb re-carves an existing reservation's
        # tail under the same rid on purpose (the rid never becomes a
        # broker idempotency key); the sanctioned exemption covers exactly
        # the `_reshape_tail` method name.
        body = (
            "    release_from = max(now, reservation.allocation.sigma)\n"
            "    return Request(rid=reservation.rid, t0=release_from)\n"
        )
        report = _scan(
            tmp_path / "a",
            f"def _reshape_tail(reservation, now):\n{body}",
        )
        assert _active(report, "GL012") == []
        # Any other function reusing a rid still fires.
        report = _scan(
            tmp_path / "b",
            f"def _rebook_tail(reservation, now):\n{body}",
        )
        assert len(_active(report, "GL012")) == 1

    def test_quiet_on_compensating_abort(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def resolve(channel, port):
                hold = channel.prepare(port)
                try:
                    channel.commit(hold.hold_id)
                except Exception:
                    channel.abort_hold(hold.hold_id)
            """,
        )
        assert _active(report, "GL012") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def readmit(request, now):
                return Request(rid=request.rid, t0=now)  # gridlint: disable=GL012 -- replay reconstruction reuses rids by design
            """,
        )
        assert _active(report, "GL012") == []
        assert len(_suppressed(report, "GL012")) == 1


class TestGL013NondetTaint:
    def test_fires_on_wall_clock_into_journal(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import time

            def log_op(journal, op):
                stamp = time.time()
                entry = (op, stamp + 1.0)
                journal.append(entry)
            """,
        )
        findings = _active(report, "GL013")
        assert len(findings) == 1
        assert "time.time" in findings[0].message

    def test_fires_through_one_level_wrapper(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import time

            def _stamp():
                return time.time()

            def log_op(journal, op):
                journal.append((op, _stamp()))
            """,
        )
        assert len(_active(report, "GL013")) == 1

    def test_fires_on_rng_into_record(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import random

            def decide(self, rid):
                jitter = random.random()
                self._record("admit", rid=rid, jitter=jitter)
            """,
        )
        findings = _active(report, "GL013")
        assert len(findings) == 1
        assert "random.random" in findings[0].message

    def test_fires_on_taint_into_reject_reason(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import time

            def reject(self):
                detail = f"at {time.time()}"
                return RejectReason(code=7, detail=detail)
            """,
        )
        assert len(_active(report, "GL013")) == 1

    def test_quiet_on_simulated_time(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def log_op(journal, op, now):
                journal.append((op, now))
            """,
        )
        assert _active(report, "GL013") == []

    def test_quiet_on_seeded_rng(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import random

            def decide(self, rid, seed):
                rng = random.Random(seed)
                self._record("admit", rid=rid, jitter=rng.random())
            """,
        )
        assert _active(report, "GL013") == []

    def test_rebinding_clears_taint(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import time

            def log_op(journal, op, now):
                stamp = time.time()
                stamp = now
                journal.append((op, stamp))
            """,
        )
        # GL001 still flags the bare call; the *flow* rule must not.
        assert _active(report, "GL013") == []

    def test_fires_on_wall_clock_into_flight_recorder(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import time

            def note(self, component, kind):
                stamp = time.time()
                self.recorder.record(component, stamp, kind)
            """,
        )
        findings = _active(report, "GL013")
        assert len(findings) == 1
        assert "recorder.record" in findings[0].message

    def test_fires_on_rng_into_slo_breach(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import random

            def breach(rule):
                observed = random.random()
                return SloBreach(
                    rule=rule.name,
                    metric=rule.metric,
                    bound=rule.bound,
                    threshold=rule.threshold,
                    value=observed,
                    at=0.0,
                )
            """,
        )
        findings = _active(report, "GL013")
        assert len(findings) == 1
        assert "SloBreach" in findings[0].message

    def test_quiet_on_recorder_fed_simulated_time(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def note(self, component, kind, now):
                self.recorder.record(component, now, kind)
            """,
        )
        assert _active(report, "GL013") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import time

            def log_op(journal, op):
                journal.append((op, time.time()))  # gridlint: disable=GL001,GL013 -- wall time wanted in this debug journal
            """,
        )
        assert _active(report, "GL013") == []
        assert len(_suppressed(report, "GL013")) == 1


class TestGL014ShardAliasing:
    def test_fires_on_returned_alias(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            class ShardBroker:
                def __init__(self):
                    self._holds = {}

                def holds(self):
                    return self._holds
            """,
        )
        findings = _active(report, "GL014")
        assert len(findings) == 1
        assert "returned as a live alias" in findings[0].message

    def test_fires_on_store_outside_owner(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            class ShardBroker:
                def __init__(self):
                    self._ledger = {}

                def share(self, other):
                    other._ledger = self._ledger
            """,
        )
        findings = _active(report, "GL014")
        assert len(findings) == 1
        assert "stored outside" in findings[0].message

    def test_fires_on_uncopied_external_call(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            class ShardBroker:
                def __init__(self):
                    self._booked = []

                def publish(self, registry):
                    registry.register(self._booked)
            """,
        )
        findings = _active(report, "GL014")
        assert len(findings) == 1
        assert "passed uncopied" in findings[0].message

    def test_quiet_on_copies_reads_and_borrows(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            from heapq import heappush

            class ShardBroker:
                def __init__(self):
                    self._holds = {}
                    self._heap = []

                def snapshot(self):
                    return dict(self._holds)

                def sweep(self, now):
                    heappush(self._heap, now)
                    return sorted(self._holds), len(self._heap)

                def lookup(self, hold_id):
                    return self._holds[hold_id].rid

                def contains(self, hold_id):
                    return hold_id in self._holds

                def tally(self, other):
                    return self._merge(self._holds)
            """,
        )
        assert _active(report, "GL014") == []

    def test_quiet_outside_shard_plane_classes(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            class EventQueue:
                def __init__(self):
                    self._heap = []

                def drain(self):
                    return self._heap
            """,
        )
        # Single-interpreter infrastructure shares containers by design;
        # only Broker/Shard/Gateway/Coordinator classes are in scope.
        assert _active(report, "GL014") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            class ShardBroker:
                def __init__(self):
                    self._holds = {}

                def holds(self):
                    return self._holds  # gridlint: disable=GL014 -- single-process test double
            """,
        )
        assert _active(report, "GL014") == []
        assert len(_suppressed(report, "GL014")) == 1


class TestPlantedPackageEndToEnd:
    """One temp package planting a violation of each flow rule; the CLI
    must gate on all four."""

    def test_cli_gates_on_all_flow_rules(self, tmp_path, capsys):
        pkg = tmp_path / "planted"
        pkg.mkdir()
        (pkg / "leaks.py").write_text(
            textwrap.dedent(
                """\
                import time


                def admit(channel, port):
                    hold = channel.prepare(port)
                    if port > 4:
                        return None
                    channel.commit(hold.hold_id)
                    return hold


                def readmit(request, now):
                    return Request(rid=request.rid, t0=now)


                def log_op(journal, op):
                    journal.append((op, time.time() + 1.0))


                class LeakyBroker:
                    def __init__(self):
                        self._holds = {}

                    def holds(self):
                        return self._holds
                """
            )
        )
        code = main(["--format", "json", str(pkg)])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        seen = {f["rule"] for f in payload["findings"]}
        assert {"GL011", "GL012", "GL013", "GL014"} <= seen
