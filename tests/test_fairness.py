"""Tests for max-min fairness and the fluid simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Platform, ProblemInstance, Request, RequestSet
from repro.fairness import FluidSimulation, is_maxmin_fair, maxmin_rates
from repro.workload import paper_flexible_workload


class TestMaxMin:
    def test_single_flow_gets_bottleneck(self):
        p = Platform([100.0], [40.0])
        rates = maxmin_rates(p, np.array([0]), np.array([0]))
        assert rates[0] == pytest.approx(40.0)

    def test_equal_split(self):
        p = Platform([90.0], [90.0])
        rates = maxmin_rates(p, np.zeros(3, dtype=int), np.zeros(3, dtype=int))
        np.testing.assert_allclose(rates, 30.0)

    def test_two_level_filling(self):
        # flows A, B share ingress 0 (cap 100); B alone on egress 1 (cap 30)
        p = Platform([100.0], [100.0, 30.0])
        rates = maxmin_rates(p, np.array([0, 0]), np.array([0, 1]))
        # B frozen at 30, A then fills ingress to 70
        assert rates[1] == pytest.approx(30.0)
        assert rates[0] == pytest.approx(70.0)

    def test_host_limit_respected(self):
        p = Platform([100.0], [100.0])
        rates = maxmin_rates(p, np.array([0, 0]), np.array([0, 0]), np.array([10.0, 200.0]))
        assert rates[0] == pytest.approx(10.0)
        assert rates[1] == pytest.approx(90.0)

    def test_empty(self):
        p = Platform.paper_platform()
        assert maxmin_rates(p, np.array([], dtype=int), np.array([], dtype=int)).size == 0

    def test_validation(self):
        p = Platform.uniform(2, 2, 10.0)
        with pytest.raises(ConfigurationError):
            maxmin_rates(p, np.array([0]), np.array([0, 1]))
        with pytest.raises(ConfigurationError):
            maxmin_rates(p, np.array([5]), np.array([0]))
        with pytest.raises(ConfigurationError):
            maxmin_rates(p, np.array([0]), np.array([0]), np.array([-1.0]))

    def test_certificate_accepts_maxmin(self):
        p = Platform([100.0], [100.0, 30.0])
        ingress = np.array([0, 0])
        egress = np.array([0, 1])
        rates = maxmin_rates(p, ingress, egress)
        assert is_maxmin_fair(p, ingress, egress, rates)

    def test_certificate_rejects_unfair(self):
        p = Platform([100.0], [100.0, 100.0])
        ingress = np.array([0, 0])
        egress = np.array([0, 1])
        # feasible but not max-min: one flow starved below the other with headroom
        assert not is_maxmin_fair(p, ingress, egress, np.array([10.0, 20.0]))

    def test_certificate_rejects_infeasible(self):
        p = Platform([10.0], [10.0])
        assert not is_maxmin_fair(p, np.array([0]), np.array([0]), np.array([50.0]))


@settings(max_examples=60, deadline=None)
@given(
    n_flows=st.integers(1, 25),
    seed=st.integers(0, 100_000),
    limited=st.booleans(),
)
def test_maxmin_properties(n_flows, seed, limited):
    """Property: progressive filling output is feasible and max-min fair."""
    rng = np.random.default_rng(seed)
    m, k = int(rng.integers(1, 5)), int(rng.integers(1, 5))
    platform = Platform(rng.uniform(10, 100, m), rng.uniform(10, 100, k))
    ingress = rng.integers(0, m, n_flows)
    egress = rng.integers(0, k, n_flows)
    max_rates = rng.uniform(1.0, 80.0, n_flows) if limited else None
    rates = maxmin_rates(platform, ingress, egress, max_rates)
    assert np.all(rates > 0)
    if max_rates is not None:
        assert np.all(rates <= max_rates * (1 + 1e-9))
    assert is_maxmin_fair(platform, ingress, egress, rates, max_rates)


class TestFluidSimulation:
    def _problem(self, requests):
        return ProblemInstance(Platform.uniform(2, 2, 100.0), RequestSet(requests))

    def test_single_flow_runs_at_host_rate(self):
        r = Request(0, 0, 1, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=50.0)
        result = FluidSimulation(self._problem([r])).run()
        outcome = result.outcomes[0]
        assert outcome.completion == pytest.approx(20.0)
        assert outcome.met_deadline
        assert result.deadline_met_rate == 1.0

    def test_contention_splits_fairly(self):
        reqs = [
            Request(0, 0, 1, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=100.0),
            Request(1, 0, 1, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=100.0),
        ]
        result = FluidSimulation(self._problem(reqs)).run()
        # 50 MB/s each: both finish at t = 20
        assert result.outcomes[0].completion == pytest.approx(20.0)
        assert result.outcomes[1].completion == pytest.approx(20.0)

    def test_released_bandwidth_speeds_survivor(self):
        reqs = [
            Request(0, 0, 1, volume=500.0, t_start=0.0, t_end=100.0, max_rate=100.0),
            Request(1, 0, 1, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=100.0),
        ]
        result = FluidSimulation(self._problem(reqs)).run()
        # both at 50 until t=10 (flow 0 done), then flow 1 at 100: 500 left -> t=15
        assert result.outcomes[0].completion == pytest.approx(10.0)
        assert result.outcomes[1].completion == pytest.approx(15.0)

    def test_deadline_miss_recorded(self):
        reqs = [
            Request(i, 0, 1, volume=1000.0, t_start=0.0, t_end=25.0, max_rate=100.0)
            for i in range(4)
        ]  # 25 MB/s each -> finish at 40 > deadline 25
        result = FluidSimulation(self._problem(reqs)).run()
        assert result.deadline_met_rate == 0.0
        assert result.completed_rate == 1.0
        assert all(o.slowdown > 1 for o in result.outcomes.values())

    def test_drop_mode_kills_and_wastes(self):
        reqs = [
            Request(i, 0, 1, volume=1000.0, t_start=0.0, t_end=25.0, max_rate=100.0)
            for i in range(4)
        ]
        result = FluidSimulation(self._problem(reqs), drop_at_deadline=True).run()
        assert result.dropped_rate == 1.0
        assert result.wasted_volume == pytest.approx(4 * 25 * 25.0)

    def test_late_arrival(self):
        reqs = [
            Request(0, 0, 1, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=100.0),
            Request(1, 0, 1, volume=500.0, t_start=5.0, t_end=100.0, max_rate=100.0),
        ]
        result = FluidSimulation(self._problem(reqs)).run()
        # flow 0 alone until t=5 (500 done); then 50/50; flow1 done at 15; flow0 at 15+0?
        # flow0: 500 remaining at t=5, 50 MB/s until 15 -> 0 remaining at t=15
        assert result.outcomes[0].completion == pytest.approx(15.0)
        assert result.outcomes[1].completion == pytest.approx(15.0)

    def test_volume_conservation(self):
        prob = paper_flexible_workload(2.0, 60, seed=9)
        result = FluidSimulation(prob).run()
        assert result.num_flows == 60
        for request in prob.requests:
            outcome = result.outcomes[request.rid]
            assert outcome.transferred == pytest.approx(request.volume, rel=1e-6)

    def test_empty(self):
        result = FluidSimulation(self._problem([])).run()
        assert result.num_flows == 0
        assert result.deadline_met_rate == 0.0

    def test_overload_degrades_vs_light(self):
        heavy = FluidSimulation(paper_flexible_workload(0.5, 150, seed=3)).run()
        light = FluidSimulation(paper_flexible_workload(30.0, 150, seed=3)).run()
        assert heavy.deadline_met_rate < light.deadline_met_rate
