"""Unit and integration tests for the sharded admission gateway."""

import pytest

from repro.control import BrokerCrash, PortFault, run_gateway_fault_drill
from repro.control.journal import Journal
from repro.core.errors import ConfigurationError, InternalInvariantError
from repro.core.ledger import Degradation
from repro.core.platform import Platform
from repro.core.request import Request
from repro.gateway import (
    AdmissionOrdering,
    Batcher,
    BrokerUnavailable,
    EdgeLimit,
    Gateway,
    PendingAdmission,
    ShardBroker,
    ShardMap,
)
from repro.obs.telemetry import Telemetry
from repro.sim.engine import Simulator


def platform(n=4, cap=1000.0):
    return Platform.uniform(n, n, cap)


class TestShardMap:
    def test_round_robin_assignment_covers_all_ports(self):
        smap = ShardMap(platform(6), 4)
        for side in ("ingress", "egress"):
            assigned = sorted(
                port for s in range(4) for port in
                (smap.ports_of(s)[0] if side == "ingress" else smap.ports_of(s)[1])
            )
            assert assigned == list(range(6))
        assert smap.shard_of("ingress", 5) == 5 % 4

    def test_is_local(self):
        smap = ShardMap(platform(4), 2)
        assert smap.is_local(0, 2)       # both on shard 0
        assert not smap.is_local(0, 1)   # shards 0 and 1

    def test_single_shard_owns_everything(self):
        smap = ShardMap(platform(3), 1)
        ins, outs = smap.ports_of(0)
        assert list(ins) == [0, 1, 2] and list(outs) == [0, 1, 2]

    def test_shard_count_bounds(self):
        with pytest.raises(ConfigurationError):
            ShardMap(platform(2), 0)
        with pytest.raises(ConfigurationError):
            ShardMap(platform(2), 3)


class TestShardBroker:
    def make(self, shards=2, shard=0, n=4):
        return ShardBroker(shard, ShardMap(platform(n), shards))

    def test_ownership_enforced(self):
        broker = self.make()
        assert broker.owns("ingress", 0) and not broker.owns("ingress", 1)
        with pytest.raises(ConfigurationError):
            broker.timeline("ingress", 1)
        with pytest.raises(ConfigurationError):
            broker.book_pair(1, 1, 0.0, 1.0, 5.0)

    def test_prepare_commit_books_capacity(self):
        broker = self.make()
        hold = broker.prepare("ingress", 0, 0.0, 10.0, 400.0, rid=7, expires=100.0)
        assert hold is not None
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(400.0)
        broker.commit(hold.hold_id)
        assert broker.holds() == []
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(400.0)

    def test_prepare_refuses_beyond_capacity(self):
        broker = self.make()
        assert broker.prepare("ingress", 0, 0.0, 10.0, 900.0, rid=1, expires=99.0)
        assert broker.prepare("ingress", 0, 0.0, 10.0, 200.0, rid=2, expires=99.0) is None

    def test_abort_hold_releases_capacity(self):
        broker = self.make()
        hold = broker.prepare("egress", 0, 0.0, 10.0, 400.0, rid=7, expires=100.0)
        assert broker.abort_hold(hold.hold_id) is True
        assert broker.usage_at("egress", 0, 5.0) == pytest.approx(0.0)
        assert broker.abort_hold(hold.hold_id) is False

    def test_expire_holds_sweep(self):
        broker = self.make()
        h1 = broker.prepare("ingress", 0, 0.0, 10.0, 100.0, rid=1, expires=50.0)
        h2 = broker.prepare("ingress", 0, 0.0, 10.0, 100.0, rid=2, expires=200.0)
        expired = broker.expire_holds(60.0)
        assert [h.hold_id for h in expired] == [h1.hold_id]
        assert [h.hold_id for h in broker.holds()] == [h2.hold_id]
        assert broker.holds_expired == 1
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(100.0)

    def test_crash_wipes_holds_but_keeps_commits(self):
        broker = self.make()
        broker.book_pair(0, 0, 0.0, 10.0, 300.0)
        hold = broker.prepare("ingress", 0, 0.0, 10.0, 400.0, rid=9, expires=99.0)
        assert broker.crash() == 1
        assert broker.holds_wiped == 1
        # Pinned capacity returned; the committed booking survives.
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(300.0)
        with pytest.raises(BrokerUnavailable):
            broker.prepare("ingress", 0, 0.0, 1.0, 1.0, rid=1, expires=9.0)
        with pytest.raises(BrokerUnavailable):
            broker.commit(hold.hold_id)
        assert broker.abort_hold(hold.hold_id) is False  # cleanup stays callable
        broker.restart()
        assert broker.prepare("ingress", 0, 0.0, 1.0, 1.0, rid=1, expires=9.0)

    def test_degraded_port_uses_free_capacity_path(self):
        broker = self.make()
        broker.degrade(Degradation(side="ingress", port=0, t0=0.0, t1=50.0, amount=800.0))
        assert broker.has_degradations("ingress", 0)
        assert not broker.fits_side("ingress", 0, 0.0, 10.0, 300.0)
        assert broker.fits_side("ingress", 0, 0.0, 10.0, 150.0)


class TestHeadroomIndex:
    def test_invalidation_on_every_mutation(self):
        broker = ShardBroker(0, ShardMap(platform(2), 1))
        tl = broker.timeline("ingress", 0)
        assert broker.cached_peak("ingress", 0) == pytest.approx(0.0)
        broker.book_pair(0, 0, 0.0, 10.0, 250.0)
        broker.headroom.verify_against("ingress", 0, tl)
        assert broker.cached_peak("ingress", 0) == pytest.approx(250.0)
        broker.release("ingress", 0, 5.0, 10.0, 250.0)
        broker.headroom.verify_against("ingress", 0, tl)
        assert broker.cached_peak("ingress", 0) == pytest.approx(250.0)
        stats = broker.headroom.stats
        assert stats["invalidations"] >= 3 and stats["misses"] >= 2

    def test_verify_against_detects_staleness(self):
        broker = ShardBroker(0, ShardMap(platform(2), 1))
        tl = broker.timeline("ingress", 0)
        broker.cached_peak("ingress", 0)
        # Mutate behind the index's back (test-only rigging).
        tl.add(0.0, 1.0, 100.0)
        with pytest.raises(InternalInvariantError):
            broker.headroom.verify_against("ingress", 0, tl)


class TestBatcher:
    def ticket(self, gw, **kw):
        return gw.submit(**kw)

    def requests(self):
        gw = Gateway(platform(), batch_size=3)
        return gw

    def pending(self, seq, rid, volume, t_end):
        req = Request(
            rid=rid, ingress=0, egress=0, volume=volume,
            t_start=0.0, t_end=t_end, max_rate=1000.0,
        )
        from repro.gateway.gateway import Ticket

        return PendingAdmission(seq=seq, ticket=Ticket(seq=seq, client="c", request=req))

    def test_fifo_preserves_submission_order(self):
        b = Batcher(3, AdmissionOrdering.FIFO)
        items = [self.pending(2, 2, 10.0, 100.0), self.pending(0, 0, 30.0, 100.0),
                 self.pending(1, 1, 20.0, 100.0)]
        for p in items:
            b.enqueue(p)
        assert [p.seq for p in b.drain(0.0)] == [0, 1, 2]

    def test_min_laxity_orders_tightest_first(self):
        b = Batcher(3, AdmissionOrdering.MIN_LAXITY)
        # laxity = (t_end - now) - volume/max_rate
        for p in [self.pending(0, 0, 100.0, 500.0),   # laxity 499.9
                  self.pending(1, 1, 900.0, 10.0),    # laxity 9.1
                  self.pending(2, 2, 100.0, 50.0)]:   # laxity 49.9
            b.enqueue(p)
        assert [p.seq for p in b.drain(0.0)] == [1, 2, 0]

    def test_max_value_orders_biggest_first(self):
        b = Batcher(3, AdmissionOrdering.MAX_VALUE)
        for p in [self.pending(0, 0, 10.0, 100.0), self.pending(1, 1, 99.0, 100.0),
                  self.pending(2, 2, 50.0, 100.0)]:
            b.enqueue(p)
        assert [p.seq for p in b.drain(0.0)] == [1, 2, 0]

    def test_ordering_from_name(self):
        assert AdmissionOrdering.from_name("min-laxity") is AdmissionOrdering.MIN_LAXITY
        with pytest.raises(ConfigurationError):
            AdmissionOrdering.from_name("lifo")


class TestGatewayBasics:
    def test_batch_of_one_decides_immediately(self):
        gw = Gateway(platform())
        t = gw.submit(ingress=0, egress=1, volume=1000.0, deadline=100.0, now=0.0)
        assert t.decided and t.reservation.confirmed

    def test_batch_flushes_when_full_or_on_time_advance(self):
        gw = Gateway(platform(), batch_size=3)
        t1 = gw.submit(ingress=0, egress=1, volume=10.0, deadline=100.0, now=0.0)
        t2 = gw.submit(ingress=1, egress=2, volume=10.0, deadline=100.0, now=0.0)
        assert not t1.decided and gw.pending() == 2
        # Time advance force-flushes the previous instant's batch.
        t3 = gw.submit(ingress=2, egress=3, volume=10.0, deadline=100.0, now=5.0)
        assert t1.decided and t2.decided and not t3.decided
        gw.drain(5.0)
        assert t3.decided
        assert gw.stats.batches == 2

    def test_time_cannot_go_backwards(self):
        gw = Gateway(platform())
        gw.submit(ingress=0, egress=0, volume=1.0, deadline=100.0, now=10.0)
        with pytest.raises(ConfigurationError):
            gw.submit(ingress=0, egress=0, volume=1.0, deadline=100.0, now=5.0)

    def test_cancel_returns_capacity(self):
        gw = Gateway(platform(2, 100.0))
        a = gw.submit(ingress=0, egress=0, volume=1000.0, deadline=10.0, now=0.0)
        assert a.reservation.confirmed
        b = gw.submit(ingress=0, egress=0, volume=1000.0, deadline=10.0, now=0.0)
        assert not b.reservation.confirmed
        assert gw.cancel(a.rid, now=0.0) is True
        c = gw.submit(ingress=0, egress=0, volume=1000.0, deadline=10.0, now=0.0)
        assert c.reservation.confirmed
        assert gw.cancel(a.rid, now=0.0) is False  # already terminated

    def test_abort_frees_tail_only(self):
        gw = Gateway(platform(2, 100.0))
        a = gw.submit(ingress=0, egress=0, volume=1000.0, deadline=10.0, now=0.0)
        assert gw.abort(a.rid, now=5.0) is True
        ins, _ = gw.port_usage(7.0)
        assert ins[0] == pytest.approx(0.0)
        assert a.reservation.carried == pytest.approx(500.0)

    def test_degrade_displaces_latest_start_first(self):
        gw = Gateway(platform(2, 100.0), num_shards=2)
        a = gw.submit(ingress=0, egress=0, volume=600.0, deadline=10.0, now=0.0)
        b = gw.submit(ingress=0, egress=1, volume=400.0, deadline=20.0, now=0.0)
        assert a.reservation.confirmed and b.reservation.confirmed
        displaced = gw.degrade(
            side="ingress", port=0, amount=70.0, start=0.0, end=20.0, now=0.0
        )
        # 30 MB/s remain: b (rid tiebreak on equal starts) yields first,
        # after which a's 60 MB/s still exceeds 30 and it yields too...
        assert [r.rid for r in displaced] == [b.rid, a.rid]
        assert gw.max_overcommit() <= 1e-6
        # ...and a smaller cut displaces only the tiebreak victim.
        gw2 = Gateway(platform(2, 100.0), num_shards=2)
        a2 = gw2.submit(ingress=0, egress=0, volume=600.0, deadline=10.0, now=0.0)
        b2 = gw2.submit(ingress=0, egress=1, volume=400.0, deadline=20.0, now=0.0)
        displaced2 = gw2.degrade(
            side="ingress", port=0, amount=30.0, start=0.0, end=20.0, now=0.0
        )
        assert [r.rid for r in displaced2] == [b2.rid]
        assert a2.reservation.confirmed and gw2.max_overcommit() <= 1e-6

    def test_unknown_rid_raises(self):
        gw = Gateway(platform())
        with pytest.raises(KeyError):
            gw.cancel(99, now=0.0)
        with pytest.raises(KeyError):
            gw.abort(99, now=0.0)


class TestEdgeLimiter:
    def test_refusals_counted_and_metered(self):
        tel = Telemetry()
        gw = Gateway(platform(), edge=EdgeLimit(rate=10.0, burst=100.0), telemetry=tel)
        a = gw.submit(ingress=0, egress=0, volume=80.0, deadline=500.0, now=0.0, client="u1")
        b = gw.submit(ingress=0, egress=0, volume=80.0, deadline=500.0, now=0.0, client="u1")
        c = gw.submit(ingress=0, egress=0, volume=80.0, deadline=500.0, now=0.0, client="u2")
        assert not a.edge_refused and b.edge_refused and not c.edge_refused
        assert b.reservation is None and b.decided
        assert gw.stats.edge_refused == 1
        counter = tel.metrics.counter("gateway_edge_refusals_total")
        assert counter.value(client="u1") == pytest.approx(1.0)
        assert counter.value(client="u2") == pytest.approx(0.0)

    def test_bucket_refills_over_time(self):
        gw = Gateway(platform(), edge=EdgeLimit(rate=10.0, burst=100.0))
        gw.submit(ingress=0, egress=0, volume=100.0, deadline=500.0, now=0.0)
        refused = gw.submit(ingress=0, egress=0, volume=100.0, deadline=500.0, now=0.0)
        assert refused.edge_refused
        later = gw.submit(ingress=0, egress=0, volume=100.0, deadline=500.0, now=10.0)
        assert not later.edge_refused


class TestTwoPhase:
    def test_cross_shard_admission_books_both_slices(self):
        gw = Gateway(platform(), num_shards=2)
        t = gw.submit(ingress=0, egress=1, volume=1000.0, deadline=100.0, now=0.0)
        assert t.reservation.confirmed
        assert gw.stats.cross_shard == 1 and gw.stats.local == 0
        alloc = t.reservation.allocation
        b_in = gw.coordinator.broker_for("ingress", 0)
        b_out = gw.coordinator.broker_for("egress", 1)
        mid = (alloc.sigma + alloc.tau) / 2
        assert b_in.usage_at("ingress", 0, mid) == pytest.approx(alloc.bw)
        assert b_out.usage_at("egress", 1, mid) == pytest.approx(alloc.bw)
        assert b_in.holds() == [] and b_out.holds() == []

    def test_crash_mid_prepare_releases_all_holds(self):
        """A broker crash between submission and flush aborts the pending
        two-phase transactions and strands no capacity anywhere."""
        gw = Gateway(platform(), num_shards=2, batch_size=2)
        gw.submit(ingress=0, egress=1, volume=500.0, deadline=100.0, now=0.0)
        gw.crash_broker(1, now=0.0)  # egress 1's owner; batch still open
        t2 = gw.submit(ingress=2, egress=3, volume=500.0, deadline=100.0, now=0.0)
        assert t2.decided  # batch full -> flushed against the crashed broker
        for ticket in (gw.get(0), t2):
            r = ticket.reservation
            assert not r.confirmed
            assert r.reject_reason.value == "broker-unavailable"
        assert gw.stats.twophase_aborts >= 1
        assert gw.stats.prepare_retries > 0
        for broker in gw.brokers:
            assert broker.holds() == []
        healthy = gw.brokers[0]
        for port in (0, 2):
            assert healthy.usage_at("ingress", port, 50.0) == pytest.approx(0.0)

    def test_recovers_after_restart(self):
        gw = Gateway(platform(), num_shards=2)
        gw.crash_broker(1, now=0.0)
        bad = gw.submit(ingress=0, egress=1, volume=10.0, deadline=100.0, now=0.0)
        assert not bad.reservation.confirmed
        gw.restart_broker(1, now=1.0)
        good = gw.submit(ingress=0, egress=1, volume=10.0, deadline=100.0, now=1.0)
        assert good.reservation.confirmed

    def test_hold_ttl_expires_via_clock_advance(self):
        gw = Gateway(platform(), num_shards=2, hold_ttl=30.0)
        broker = gw.brokers[0]
        # A stranded hold (e.g. a crashed coordinator): placed directly,
        # never committed.
        broker.prepare("ingress", 0, 0.0, 100.0, 500.0, rid=77, expires=30.0)
        gw.submit(ingress=1, egress=0, volume=10.0, deadline=100.0, now=40.0)
        assert broker.holds() == []
        assert gw.stats.holds_expired == 1
        assert broker.usage_at("ingress", 0, 50.0) == pytest.approx(0.0)


class TestTelemetry:
    def test_decision_counters_and_batch_span(self):
        tel = Telemetry()
        gw = Gateway(platform(2, 50.0), num_shards=2, batch_size=2, telemetry=tel)
        # First fills the pipe for the whole window; second cannot fit.
        gw.submit(ingress=0, egress=1, volume=5000.0, deadline=100.0, now=0.0)
        gw.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        submits = tel.metrics.counter("gateway_submits_total")
        assert submits.value(outcome="accepted") == pytest.approx(1.0)
        assert submits.value(outcome="rejected") == pytest.approx(1.0)
        assert tel.metrics.counter("gateway_rejects_total").total() == pytest.approx(1.0)
        assert tel.metrics.counter("gateway_batches_total").value(
            ordering="fifo"
        ) == pytest.approx(1.0)
        names = [s.name for s in tel.tracer.spans()]
        assert "gateway.batch" in names
        assert any(e.name == "gateway.submit" for e in tel.events)


class TestJournalReplay:
    def workload(self, gw):
        gw.submit(ingress=0, egress=1, volume=800.0, deadline=60.0, now=0.0)
        gw.submit(ingress=1, egress=2, volume=400.0, deadline=80.0, now=0.0)
        gw.submit(ingress=2, egress=0, volume=600.0, deadline=90.0, now=3.0)
        gw.cancel(0, now=5.0)
        gw.crash_broker(0, now=6.0)
        gw.submit(ingress=0, egress=1, volume=100.0, deadline=99.0, now=6.0)
        gw.restart_broker(0, now=8.0)
        gw.degrade(side="egress", port=2, amount=900.0, start=9.0, end=40.0, now=9.0)
        gw.submit(ingress=3, egress=3, volume=50.0, deadline=70.0, now=10.0)
        gw.abort(2, now=11.0)
        gw.drain(12.0)

    @pytest.mark.parametrize("shards,batch", [(1, 1), (2, 2), (4, 3)])
    def test_replay_reconstructs_snapshot(self, shards, batch):
        journal = Journal()
        gw = Gateway(platform(), num_shards=shards, batch_size=batch, journal=journal)
        self.workload(gw)
        rebuilt = Gateway.replay(journal)
        assert rebuilt.snapshot() == gw.snapshot()

    def test_replay_with_edge_and_ordering(self):
        journal = Journal()
        gw = Gateway(
            platform(),
            num_shards=2,
            batch_size=4,
            ordering="min-laxity",
            edge=EdgeLimit(rate=200.0, burst=900.0),
            journal=journal,
        )
        self.workload(gw)
        assert gw.stats.edge_refused >= 1  # the limiter did shape the run
        rebuilt = Gateway.replay(journal)
        assert rebuilt.snapshot() == gw.snapshot()

    def test_replay_requires_gateway_journal(self):
        journal = Journal()
        journal.set_header({"kind": "service"})
        with pytest.raises(ConfigurationError):
            Gateway.replay(journal)


class TestGatewayFaultDrill:
    def requests(self, seed, n=40, ports=6):
        import numpy as np

        rng = np.random.default_rng(seed)
        out = []
        for rid in range(n):
            t0 = float(rng.uniform(0.0, 300.0))
            out.append(
                Request(
                    rid=rid,
                    ingress=int(rng.integers(ports)),
                    egress=int(rng.integers(ports)),
                    volume=float(rng.uniform(1_000.0, 40_000.0)),
                    t_start=t0,
                    t_end=t0 + float(rng.uniform(120.0, 900.0)),
                    max_rate=1000.0,
                )
            )
        return out

    def test_drill_decides_everything_and_journal_replays(self):
        journal = Journal()
        report = run_gateway_fault_drill(
            Platform.uniform(6, 6, 1000.0),
            self.requests(11),
            num_shards=4,
            batch_size=4,
            abort_rate=0.15,
            faults=[PortFault(side="ingress", port=2, amount=700.0, start=60.0, end=200.0)],
            crashes=[BrokerCrash(shard=1, at=100.0, restart_at=150.0)],
            journal=journal,
            seed=5,
        )
        gw = report.gateway
        assert gw.pending() == 0
        assert gw.stats.submits == 40
        assert gw.stats.accepted + gw.stats.rejected == 40
        rebuilt = Gateway.replay(journal)
        assert rebuilt.snapshot() == gw.snapshot()
        for broker in gw.brokers:
            assert broker.holds() == []

    def test_crash_without_restart_keeps_rejecting(self):
        report = run_gateway_fault_drill(
            Platform.uniform(4, 4, 1000.0),
            self.requests(3, n=20, ports=4),
            num_shards=4,
            crashes=[BrokerCrash(shard=0, at=0.0)],
            seed=2,
        )
        gw = report.gateway
        unavailable = [
            r for r in gw.reservations()
            if r.reject_reason is not None and r.reject_reason.value == "broker-unavailable"
        ]
        assert unavailable
        assert gw.max_overcommit() <= 1e-6


class TestSimulatorEvery:
    def test_fires_on_interval_until_bound(self):
        sim = Simulator()
        seen = []
        sim.every(5.0, lambda e: seen.append(sim.now), until=22.0)
        sim.run(until=100.0)
        assert seen == [5.0, 10.0, 15.0, 20.0]

    def test_explicit_start_and_validation(self):
        sim = Simulator(start_time=10.0)
        seen = []
        sim.every(2.0, lambda e: seen.append(sim.now), start=11.0, until=15.0)
        sim.run()
        assert seen == [11.0, 13.0, 15.0]
        with pytest.raises(ValueError):
            sim.every(0.0, lambda e: None)
