"""CFG builder + solver tests on adversarial control-flow constructs.

Every test asserts the *complete* edge set against a hand-written
expectation (``cfg.edge_set()`` renders edges as
``(src_label, dst_label, kind)`` with ``StmtType:line`` labels), so a
builder regression cannot hide behind a partial containment check.
"""

import ast
import textwrap

from repro.analysis.flow import (
    build_cfg,
    liveness,
    reaching_definitions,
)


def _cfg(source, *, can_raise=None, name=None):
    tree = ast.parse(textwrap.dedent(source))
    funcs = [
        node
        for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef)
    ]
    func = next(f for f in funcs if name is None or f.name == name)
    if can_raise is None:
        return build_cfg(func)
    return build_cfg(func, can_raise=can_raise)


def _never(stmt):
    return False


class TestLinearAndBranches:
    def test_linear(self):
        cfg = _cfg(
            """\
            def f():
                a = 1
                b = a
            """
        )
        assert cfg.edge_set() == {
            ("entry", "Assign:2", "normal"),
            ("Assign:2", "Assign:3", "normal"),
            ("Assign:3", "exit", "normal"),
        }

    def test_if_else(self):
        cfg = _cfg(
            """\
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """
        )
        assert cfg.edge_set() == {
            ("entry", "If:2", "normal"),
            ("If:2", "Assign:3", "true"),
            ("If:2", "Assign:5", "false"),
            ("Assign:3", "Return:6", "normal"),
            ("Assign:5", "Return:6", "normal"),
            ("Return:6", "exit", "normal"),
        }

    def test_if_without_else_falls_through(self):
        cfg = _cfg(
            """\
            def f(x):
                if x:
                    a = 1
                return x
            """
        )
        assert cfg.edge_set() == {
            ("entry", "If:2", "normal"),
            ("If:2", "Assign:3", "true"),
            ("If:2", "Return:4", "false"),
            ("Assign:3", "Return:4", "normal"),
            ("Return:4", "exit", "normal"),
        }


class TestLoops:
    def test_while_else_with_break(self):
        cfg = _cfg(
            """\
            def f(x):
                while x:
                    if x:
                        break
                    x = g(x)
                else:
                    a = 1
                return x
            """,
            can_raise=_never,
        )
        assert cfg.edge_set() == {
            ("entry", "While:2", "normal"),
            ("While:2", "If:3", "true"),
            ("If:3", "Break:4", "true"),
            ("If:3", "Assign:5", "false"),
            ("Assign:5", "While:2", "normal"),
            ("While:2", "Assign:7", "false"),
            ("Assign:7", "Return:8", "normal"),
            ("Break:4", "Return:8", "normal"),
            ("Return:8", "exit", "normal"),
        }

    def test_while_true_has_no_false_edge(self):
        cfg = _cfg(
            """\
            def f(x):
                while True:
                    if x:
                        break
                return x
            """,
            can_raise=_never,
        )
        assert cfg.edge_set() == {
            ("entry", "While:2", "normal"),
            ("While:2", "If:3", "true"),
            ("If:3", "Break:4", "true"),
            ("If:3", "While:2", "false"),
            ("Break:4", "Return:5", "normal"),
            ("Return:5", "exit", "normal"),
        }

    def test_for_else(self):
        cfg = _cfg(
            """\
            def f(xs):
                for x in xs:
                    a = x
                else:
                    b = 1
                return b
            """,
            can_raise=_never,
        )
        assert cfg.edge_set() == {
            ("entry", "For:2", "normal"),
            ("For:2", "Assign:3", "true"),
            ("Assign:3", "For:2", "normal"),
            ("For:2", "Assign:5", "false"),
            ("Assign:5", "Return:6", "normal"),
            ("Return:6", "exit", "normal"),
        }

    def test_continue_routed_through_finally(self):
        cfg = _cfg(
            """\
            def f(xs):
                for x in xs:
                    try:
                        if x:
                            continue
                        a = 1
                    finally:
                        b = 2
                return 1
            """,
            can_raise=_never,
        )
        # No node for the `try` line itself: the loop body enters the
        # protected region directly, and both the continue and the normal
        # body end reach the loop header *through* the finally block.
        assert cfg.edge_set() == {
            ("entry", "For:2", "normal"),
            ("For:2", "If:4", "true"),
            ("If:4", "Continue:5", "true"),
            ("If:4", "Assign:6", "false"),
            ("Continue:5", "Assign:8", "normal"),
            ("Assign:6", "Assign:8", "normal"),
            ("Assign:8", "For:2", "normal"),
            ("For:2", "Return:9", "false"),
            ("Return:9", "exit", "normal"),
        }


class TestExceptions:
    def test_try_except_else_finally(self):
        cfg = _cfg(
            """\
            def f(x):
                try:
                    a = g(x)
                except ValueError:
                    b = h(x)
                finally:
                    c = 1
                return c
            """
        )
        assert cfg.edge_set() == {
            ("entry", "Assign:3", "normal"),
            # handler entry
            ("Assign:3", "Assign:5", "exc"),
            # normal completion and the may-slip-past-ValueError path,
            # both funnelled through the finally
            ("Assign:3", "Assign:7", "normal"),
            ("Assign:3", "Assign:7", "exc"),
            # handler completion (normal) and handler raising (h(x))
            ("Assign:5", "Assign:7", "normal"),
            ("Assign:5", "Assign:7", "exc"),
            # finally re-raises pending exceptions, else falls through
            ("Assign:7", "raise", "exc"),
            ("Assign:7", "Return:8", "normal"),
            ("Return:8", "exit", "normal"),
        }

    def test_bare_raise_reraise(self):
        cfg = _cfg(
            """\
            def f(x):
                try:
                    a = g(x)
                except Exception:
                    raise
                return a
            """
        )
        assert cfg.edge_set() == {
            ("entry", "Assign:3", "normal"),
            ("Assign:3", "Raise:5", "exc"),
            ("Raise:5", "raise", "exc"),
            ("Assign:3", "Return:6", "normal"),
            ("Return:6", "exit", "normal"),
        }

    def test_return_routed_through_finally(self):
        cfg = _cfg(
            """\
            def f(x):
                try:
                    return g(x)
                finally:
                    c = 1
            """
        )
        assert cfg.edge_set() == {
            ("entry", "Return:3", "normal"),
            # the call may raise (exc) or produce the return value
            # (normal); either way the finally runs next
            ("Return:3", "Assign:5", "exc"),
            ("Return:3", "Assign:5", "normal"),
            ("Assign:5", "raise", "exc"),
            ("Assign:5", "exit", "normal"),
        }

    def test_with_unwinding(self):
        cfg = _cfg(
            """\
            def f(x):
                with g(x) as h:
                    a = h
                return a
            """
        )
        assert cfg.edge_set() == {
            ("entry", "With:2", "normal"),
            ("With:2", "raise", "exc"),
            ("With:2", "Assign:3", "normal"),
            ("Assign:3", "Return:4", "normal"),
            ("Return:4", "exit", "normal"),
        }

    def test_uncaught_exception_leaves_function(self):
        cfg = _cfg(
            """\
            def f(x):
                a = g(x)
                return a
            """
        )
        assert cfg.edge_set() == {
            ("entry", "Assign:2", "normal"),
            ("Assign:2", "raise", "exc"),
            ("Assign:2", "Return:3", "normal"),
            ("Return:3", "exit", "normal"),
        }


class TestMatchAndComprehensions:
    def test_match_with_irrefutable_case(self):
        cfg = _cfg(
            """\
            def f(x):
                match x:
                    case 1:
                        a = 1
                    case _:
                        a = 2
                return a
            """
        )
        assert cfg.edge_set() == {
            ("entry", "Match:2", "normal"),
            ("Match:2", "Assign:4", "true"),
            ("Match:2", "Assign:6", "true"),
            ("Assign:4", "Return:7", "normal"),
            ("Assign:6", "Return:7", "normal"),
            ("Return:7", "exit", "normal"),
        }

    def test_match_without_wildcard_can_fall_through(self):
        cfg = _cfg(
            """\
            def f(x):
                match x:
                    case 1:
                        a = 1
                return x
            """
        )
        assert cfg.edge_set() == {
            ("entry", "Match:2", "normal"),
            ("Match:2", "Assign:4", "true"),
            ("Match:2", "Return:5", "false"),
            ("Assign:4", "Return:5", "normal"),
            ("Return:5", "exit", "normal"),
        }

    def test_nested_comprehension_is_one_node(self):
        cfg = _cfg(
            """\
            def f(xs):
                ys = [i for row in xs for i in row if i]
                return ys
            """,
            can_raise=_never,
        )
        assert cfg.edge_set() == {
            ("entry", "Assign:2", "normal"),
            ("Assign:2", "Return:3", "normal"),
            ("Return:3", "exit", "normal"),
        }


class TestSolverPasses:
    def test_reaching_definitions_join_at_merge(self):
        cfg = _cfg(
            """\
            def f(x):
                a = 1
                if x:
                    a = 2
                return a
            """,
            can_raise=_never,
        )
        return_nid = next(
            n.nid for n in cfg.stmt_nodes() if isinstance(n.stmt, ast.Return)
        )
        defs = reaching_definitions(cfg).before[return_nid]
        lines = sorted(
            cfg.node(nid).stmt.lineno for var, nid in defs if var == "a"
        )
        assert lines == [2, 4]

    def test_liveness_kills_dead_store(self):
        cfg = _cfg(
            """\
            def f(x):
                dead = 1
                alive = 2
                return alive
            """,
            can_raise=_never,
        )
        live = liveness(cfg)
        entry_assign = next(
            n.nid for n in cfg.stmt_nodes() if n.stmt.lineno == 2
        )
        # Live-out of `dead = 1`: only `alive` is ever read afterwards.
        assert "dead" not in live.before[entry_assign]

    def test_liveness_through_loop(self):
        cfg = _cfg(
            """\
            def f(xs):
                total = 0
                for x in xs:
                    total = total + x
                return total
            """,
            can_raise=_never,
        )
        live = liveness(cfg)
        init_nid = next(
            n.nid for n in cfg.stmt_nodes() if n.stmt.lineno == 2
        )
        assert "total" in live.before[init_nid]
