"""Backend-equivalence fuzz: both kernels agree on random op streams.

One seeded stream drives a :class:`BreakpointProfile` and a
:class:`VectorProfile` through the same interleaving of mutations
(allocate-style adds, releases of previously-added intervals,
degradation-style negative adds) and queries (``usage_at`` /
``max_usage`` / ``min_usage`` / ``integral`` / ``segments``), asserting
agreement within :data:`repro.units.REL_TOL` at every step.  The
deliberate tolerance is belt-and-braces: the backends are designed to be
*bit*-identical (same insertion positions, same addition order), and the
stricter exact check runs on the final segment lists.

Error behaviour is part of the contract too: reversed and zero-length
intervals must raise :class:`ValueError` on both backends.
"""

import math

import pytest

import numpy as np

from repro.core.capacity import make_profile
from repro.units import close

SEEDS = [0, 1, 2, 7, 42, 1337]


def _random_interval(rng, horizon=1000.0):
    t0 = float(rng.uniform(0.0, horizon))
    t1 = t0 + float(rng.uniform(0.05, horizon / 4))
    return t0, t1


def _assert_profiles_agree(bp, vec, rng, horizon=1000.0):
    """Spot-check the query surface of both backends at random points."""
    for _ in range(4):
        t = float(rng.uniform(-10.0, horizon + 10.0))
        assert close(bp.usage_at(t), vec.usage_at(t))
    q0, q1 = _random_interval(rng, horizon)
    assert close(bp.max_usage(q0, q1), vec.max_usage(q0, q1))
    assert close(bp.min_usage(q0, q1), vec.min_usage(q0, q1))
    assert close(bp.integral(q0, q1), vec.integral(q0, q1))
    assert close(bp.global_max(), vec.global_max())
    assert close(bp.max_usage(q0, math.inf), vec.max_usage(q0, math.inf))


@pytest.mark.parametrize("seed", SEEDS)
def test_random_op_stream_agreement(seed):
    rng = np.random.default_rng(seed)
    bp = make_profile("breakpoint")
    vec = make_profile("vector")
    live = []  # (t0, t1, bw) previously added, candidates for release

    for step in range(300):
        op = rng.random()
        if op < 0.45 or not live:
            # Allocate: positive bandwidth over a random window.
            t0, t1 = _random_interval(rng)
            bw = float(rng.uniform(0.5, 100.0))
            bp.add(t0, t1, bw)
            vec.add(t0, t1, bw)
            live.append((t0, t1, bw))
        elif op < 0.75:
            # Release a previous allocation exactly (negative delta).
            t0, t1, bw = live.pop(int(rng.integers(len(live))))
            bp.add(t0, t1, -bw)
            vec.add(t0, t1, -bw)
        else:
            # Degradation-style overlay: a reduction that is not tied to
            # any allocation (capacity dips can push usage negative in
            # the overlay profile; the kernel must not care).
            t0, t1 = _random_interval(rng)
            dip = -float(rng.uniform(0.5, 50.0))
            bp.add(t0, t1, dip)
            vec.add(t0, t1, dip)

        if step % 10 == 0:
            _assert_profiles_agree(bp, vec, rng)

    # The backends are designed bit-identical, not just tolerance-close:
    # the final segment structures must match exactly.
    assert list(bp.segments()) == list(vec.segments())
    assert bp.num_segments == vec.num_segments
    assert list(bp.breakpoints()) == list(vec.breakpoints())


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_add_batch_stream_agreement(seed):
    rng = np.random.default_rng(seed)
    bp = make_profile("breakpoint")
    vec = make_profile("vector")
    for _ in range(20):
        batch = []
        for _ in range(int(rng.integers(1, 12))):
            t0, t1 = _random_interval(rng)
            batch.append((t0, t1, float(rng.uniform(-20.0, 60.0))))
        bp.add_batch(batch)
        vec.add_batch(batch)
        _assert_profiles_agree(bp, vec, rng)
    assert list(bp.segments()) == list(vec.segments())


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_copies_stay_equivalent(seed):
    rng = np.random.default_rng(seed)
    bp = make_profile("breakpoint")
    vec = make_profile("vector")
    for _ in range(50):
        t0, t1 = _random_interval(rng)
        bw = float(rng.uniform(0.5, 80.0))
        bp.add(t0, t1, bw)
        vec.add(t0, t1, bw)
    bp2, vec2 = bp.copy(), vec.copy()
    t0, t1 = _random_interval(rng)
    bp2.add(t0, t1, 5.0)
    vec2.add(t0, t1, 5.0)
    assert list(bp2.segments()) == list(vec2.segments())
    # Originals untouched and still agreeing.
    assert list(bp.segments()) == list(vec.segments())


@pytest.mark.parametrize("backend", ["breakpoint", "vector"])
class TestErrorParity:
    def test_zero_length_interval(self, backend):
        profile = make_profile(backend)
        with pytest.raises(ValueError):
            profile.add(3.0, 3.0, 1.0)

    def test_reversed_interval(self, backend):
        profile = make_profile(backend)
        with pytest.raises(ValueError):
            profile.add(7.0, 3.0, 1.0)

    def test_reversed_queries(self, backend):
        profile = make_profile(backend)
        profile.add(0.0, 10.0, 1.0)
        for method in (profile.max_usage, profile.min_usage, profile.integral):
            with pytest.raises(ValueError):
                method(8.0, 2.0)
            with pytest.raises(ValueError):
                method(4.0, 4.0)

    def test_mutation_failure_leaves_profile_usable(self, backend):
        profile = make_profile(backend)
        profile.add(0.0, 10.0, 2.0)
        with pytest.raises(ValueError):
            profile.add(5.0, 5.0, 1.0)
        assert profile.max_usage(0.0, 10.0) == 2.0
        assert profile.num_segments == 3
