"""Tests for the experiment harness (small, fast parameterisations)."""

import pytest

from repro.experiments import (
    FIGURES,
    Aggregate,
    ablation_cost,
    ablation_window,
    ascii_chart,
    fig4,
    fig5,
    fig6,
    fig7,
    replicate,
    section53_claims,
    tcp_baseline,
    tuning_factor,
)
from repro.metrics import Table

FAST = dict(n_requests=150, seeds=(0,))


class TestReplicate:
    def test_aggregates(self):
        agg = replicate(lambda seed: {"x": float(seed)}, seeds=[1, 2, 3])
        assert agg["x"].mean == pytest.approx(2.0)
        assert agg["x"].n == 3
        assert agg["x"].std == pytest.approx((2 / 3) ** 0.5)

    def test_key_mismatch_caught(self):
        def run(seed):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ValueError):
            replicate(run, seeds=[0, 1])

    def test_empty_seeds(self):
        with pytest.raises(ValueError):
            replicate(lambda s: {}, seeds=[])

    def test_format(self):
        agg = Aggregate(mean=0.5, std=0.1, n=3)
        assert "±" in f"{agg:.2f}"


class TestAsciiChart:
    def test_renders_series(self):
        chart = ascii_chart({"a": ([0, 1, 2], [0.0, 0.5, 1.0])}, width=20, height=5, title="T")
        assert "T" in chart
        assert "o = a" in chart
        assert "|" in chart

    def test_empty(self):
        assert "(no data)" in ascii_chart({}, title="x")

    def test_constant_series(self):
        chart = ascii_chart({"flat": ([0, 1], [1.0, 1.0])})
        assert "flat" in chart


class TestFigures:
    """Each figure runs end-to-end at a tiny size and produces a table."""

    def test_fig4(self):
        table, chart = fig4(loads=(2.0, 8.0), **FAST)
        assert isinstance(table, Table)
        assert len(table.rows) == 2
        assert "fifo:accept" in table.headers
        assert chart

    def test_fig5(self):
        table, chart = fig5(gaps=(0.5, 5.0), t_steps=(100.0,), **FAST)
        assert len(table.rows) == 2
        assert any("window" in h for h in table.headers)

    def test_fig6(self):
        table, _ = fig6(gaps_heavy=(0.5,), gaps_light=(10.0,), policies=("min-bw", 1.0), **FAST)
        assert len(table.rows) == 2
        assert table.rows[0][0] == "heavy"
        assert table.rows[1][0] == "light"

    def test_fig7(self):
        table, _ = fig7(gaps_heavy=(0.5,), gaps_light=(10.0,), policies=("min-bw", 1.0), **FAST)
        assert len(table.rows) == 2

    def test_tuning(self):
        table, _ = tuning_factor(fs=(0.5, 1.0), gap=10.0, **FAST)
        assert len(table.rows) == 2
        # f=1 row has zero gain by definition
        assert table.rows[-1][2] == pytest.approx(0.0)

    def test_tcp(self):
        table, _ = tcp_baseline(gaps=(2.0,), n_requests=80, seeds=(0,))
        assert len(table.rows) == 1
        assert "fluid_met" in table.headers

    def test_ablation_window(self):
        table, _ = ablation_window(t_steps=(100.0, 800.0), gap=1.0, **FAST)
        assert len(table.rows) == 2
        # longer interval means longer mean wait
        waits = table.column("mean_wait")
        assert waits[1] > waits[0]

    def test_ablation_cost(self):
        table, _ = ablation_cost(loads=(4.0,), n_requests=150, seeds=(0,))
        assert len(table.rows) == 1
        assert "no-priority" in table.headers

    def test_claims_table_shape(self):
        table, _ = section53_claims(n_requests=300, seeds=(0,))
        assert table.headers == ["claim", "measured", "holds"]
        assert len(table.rows) == 6

    def test_registry_complete(self):
        assert set(FIGURES) == {
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "tuning",
            "tcp",
            "ablation-window",
            "ablation-cost",
            "claims",
            "extensions",
            "hotspot",
            "control-latency",
            "optgap",
            "rtt-unfairness",
            "diurnal",
            "localsearch",
            "coallocation",
        }

    def test_extensions_experiment(self):
        from repro.experiments import extensions

        table, _ = extensions(gaps=(2.0,), n_requests=150, seeds=(0,))
        row = dict(zip(table.headers, table.rows[0]))
        book = next(v for h, v in row.items() if h.startswith("bookahead"))
        greedy = next(v for h, v in row.items() if h.startswith("greedy"))
        assert book >= greedy

    def test_hotspot_experiment(self):
        from repro.experiments import hotspot

        table, _ = hotspot(skews=(1.0, 4.0), n_requests=150, seeds=(0,))
        assert len(table.rows) == 2

    def test_control_latency_experiment(self):
        from repro.experiments import control_latency

        table, _ = control_latency(latencies=(0.0, 5.0), n_requests=150, seeds=(0,))
        assert len(table.rows) == 2
        assert all(m <= 3.0 for m in table.column("messages_per_request"))


class TestPublishedOrderings:
    """The headline orderings at moderate (still fast) sizes."""

    def test_fig4_orderings(self):
        table, _ = fig4(loads=(16.0,), n_requests=500, seeds=(0, 1))
        row = dict(zip(table.headers, table.rows[0]))
        assert row["fifo:accept"] < row["cumulated:accept"]
        assert row["fifo:accept"] < row["minbw:accept"]
        assert row["minvol:util"] < row["minbw:util"]
        assert row["minvol:util"] < row["cumulated:util"]
        assert abs(row["cumulated:accept"] - row["minbw:accept"]) < 0.10

    def test_fig5_ordering(self):
        table, _ = fig5(gaps=(0.1,), t_steps=(400.0,), n_requests=600, seeds=(0, 1))
        row = dict(zip(table.headers, table.rows[0]))
        greedy = row["greedy[f=1]"]
        window = row["window[400s,f=1]"]
        assert window > greedy

    def test_fig6_light_ordering(self):
        table, _ = fig6(
            gaps_heavy=(0.5,), gaps_light=(20.0,), policies=("min-bw", 0.5, 1.0),
            n_requests=600, seeds=(0, 1),
        )
        light = dict(zip(table.headers, table.rows[1]))
        assert light["min-bw"] > light["0.5"] > light["1.0"]

    def test_tcp_reservation_reliability(self):
        table, _ = tcp_baseline(gaps=(0.5,), n_requests=300, seeds=(0,))
        row = dict(zip(table.headers, table.rows[0]))
        # statistical sharing wastes capacity; reservation never does
        assert row["fluid_dropped"] > 0.2
        assert row["fluid_met"] < 0.5
        assert row["fluid_wasted_tb"] > 0.0


class TestHeterogeneousAblation:
    def test_runs_on_grid5000(self):
        table, _ = ablation_cost(loads=(8.0,), n_requests=150, seeds=(0,), heterogeneous=True)
        assert "Grid'5000" in table.title
        row = dict(zip(table.headers, table.rows[0]))
        # all variants produce sane rates on the heterogeneous platform
        for name in ("full", "no-priority", "no-bmin", "minbw"):
            assert 0.0 <= row[name] <= 1.0


class TestSweep:
    def test_grid_points_order(self):
        from repro.experiments import grid_points

        points = grid_points({"a": [1, 2], "b": ["x", "y"]})
        assert points == [
            {"a": 1, "b": "x"},
            {"a": 1, "b": "y"},
            {"a": 2, "b": "x"},
            {"a": 2, "b": "y"},
        ]
        assert grid_points({}) == [{}]

    def test_grid_points_empty_axis(self):
        from repro.experiments import grid_points

        with pytest.raises(ValueError):
            grid_points({"a": []})

    def test_sweep_table(self):
        from repro.experiments import sweep

        def run(params, seed):
            return {"value": params["a"] * 10 + seed}

        table = sweep({"a": [1, 2]}, run, seeds=(0, 1), title="demo")
        assert table.headers == ["a", "value"]
        assert table.rows[0][1] == pytest.approx(10.5)  # mean of 10, 11
        assert table.rows[1][1] == pytest.approx(20.5)

    def test_sweep_with_std_rendering(self):
        from repro.experiments import sweep

        table = sweep(
            {"a": [3]},
            lambda p, s: {"v": float(s)},
            seeds=(0, 2),
            include_std=True,
        )
        assert "±" in table.rows[0][1]

    def test_sweep_inconsistent_metrics(self):
        from repro.experiments import sweep

        def run(params, seed):
            return {"x": 1.0} if params["a"] == 1 else {"y": 1.0}

        with pytest.raises(ValueError):
            sweep({"a": [1, 2]}, run, seeds=(0,))

    def test_sweep_real_scheduler(self):
        from repro.experiments import sweep
        from repro.schedulers import GreedyFlexible
        from repro.workload import paper_flexible_workload

        def run(params, seed):
            prob = paper_flexible_workload(params["gap"], 80, seed=seed)
            return {"accept": GreedyFlexible().schedule(prob).accept_rate}

        table = sweep({"gap": [0.5, 10.0]}, run, seeds=(0,))
        assert table.rows[1][1] >= table.rows[0][1]  # lighter load accepts more
