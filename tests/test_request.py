"""Tests for the Request / RequestSet data model."""

import json

import numpy as np
import pytest

from repro.core import InvalidRequestError, Request, RequestSet


def make_request(**kw):
    defaults = dict(rid=0, ingress=0, egress=1, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=50.0)
    defaults.update(kw)
    return Request(**defaults)


class TestRequestValidation:
    def test_valid(self):
        r = make_request()
        assert r.min_rate == pytest.approx(10.0)

    def test_negative_volume(self):
        with pytest.raises(InvalidRequestError):
            make_request(volume=-1.0)

    def test_zero_volume(self):
        with pytest.raises(InvalidRequestError):
            make_request(volume=0.0)

    def test_empty_window(self):
        with pytest.raises(InvalidRequestError):
            make_request(t_end=0.0)

    def test_inverted_window(self):
        with pytest.raises(InvalidRequestError):
            make_request(t_start=200.0)

    def test_max_rate_below_min_rate(self):
        # window implies MinRate 10; max_rate 5 is structurally unservable
        with pytest.raises(InvalidRequestError):
            make_request(max_rate=5.0)

    def test_nonpositive_max_rate(self):
        with pytest.raises(InvalidRequestError):
            make_request(max_rate=0.0)

    def test_same_index_pair_is_legal(self):
        # ingress and egress index different port sets (single-pair case, §3)
        r = make_request(ingress=0, egress=0)
        assert r.ingress == r.egress == 0


class TestRequestDerived:
    def test_min_rate(self):
        r = make_request(volume=500.0, t_start=10.0, t_end=60.0)
        assert r.min_rate == pytest.approx(10.0)

    def test_window_length(self):
        assert make_request().window_length == pytest.approx(100.0)

    def test_rigid_classification(self):
        rigid = Request.rigid(1, 0, 1, volume=1000.0, t_start=0.0, t_end=100.0)
        assert rigid.is_rigid
        assert not rigid.is_flexible
        assert rigid.max_rate == pytest.approx(rigid.min_rate)

    def test_flexible_classification(self):
        r = make_request(max_rate=100.0)
        assert r.is_flexible

    def test_min_duration(self):
        r = make_request(max_rate=100.0)
        assert r.min_duration == pytest.approx(10.0)

    def test_rate_for_deadline(self):
        r = make_request()  # vol 1000, window [0, 100]
        assert r.rate_for_deadline(0.0) == pytest.approx(10.0)
        assert r.rate_for_deadline(50.0) == pytest.approx(20.0)
        assert r.rate_for_deadline(100.0) == float("inf")
        assert r.rate_for_deadline(150.0) == float("inf")

    def test_feasible_rate_interval_default_start(self):
        r = make_request()
        lo, hi = r.feasible_rate_interval()
        assert lo == pytest.approx(10.0)
        assert hi == pytest.approx(50.0)

    def test_feasible_rate_interval_late_start(self):
        r = make_request()
        lo, hi = r.feasible_rate_interval(start=80.0)
        assert lo == pytest.approx(50.0)
        assert hi == pytest.approx(50.0)

    def test_duration_at(self):
        r = make_request()
        assert r.duration_at(20.0) == pytest.approx(50.0)
        with pytest.raises(InvalidRequestError):
            r.duration_at(0.0)

    def test_flexible_constructor_derives_deadline(self):
        r = Request.flexible(2, 1, 3, volume=600.0, t_start=5.0, min_rate=6.0, max_rate=60.0)
        assert r.t_end == pytest.approx(105.0)
        assert r.min_rate == pytest.approx(6.0)

    def test_with_rid(self):
        r = make_request()
        r2 = r.with_rid(99)
        assert r2.rid == 99
        assert r2.volume == r.volume


class TestRequestSerialisation:
    def test_roundtrip(self):
        r = make_request(rid=7)
        assert Request.from_dict(r.to_dict()) == r

    def test_dict_is_json_safe(self):
        json.dumps(make_request().to_dict())


class TestRequestSet:
    def _set(self, n=5):
        return RequestSet(
            make_request(rid=i, t_start=float(10 - i), t_end=float(110 - i)) for i in range(n)
        )

    def test_len_iter_getitem(self):
        rs = self._set()
        assert len(rs) == 5
        assert [r.rid for r in rs] == [0, 1, 2, 3, 4]
        assert rs[0].rid == 0
        assert isinstance(rs[1:3], RequestSet)
        assert len(rs[1:3]) == 2

    def test_duplicate_rids_rejected(self):
        with pytest.raises(InvalidRequestError):
            RequestSet([make_request(rid=1), make_request(rid=1)])

    def test_by_rid(self):
        rs = self._set()
        assert rs.by_rid(3).rid == 3
        with pytest.raises(KeyError):
            rs.by_rid(42)

    def test_sorted_by_arrival(self):
        rs = self._set().sorted_by_arrival()
        starts = [r.t_start for r in rs]
        assert starts == sorted(starts)

    def test_sorted_by_arrival_tie_break_min_rate(self):
        a = make_request(rid=0, volume=2000.0)  # min_rate 20
        b = make_request(rid=1, volume=1000.0)  # min_rate 10
        rs = RequestSet([a, b]).sorted_by_arrival()
        assert [r.rid for r in rs] == [1, 0]

    def test_as_arrays(self):
        arrays = self._set().as_arrays()
        assert arrays["rid"].shape == (5,)
        assert np.all(arrays["min_rate"] > 0)
        np.testing.assert_allclose(
            arrays["min_rate"], arrays["volume"] / (arrays["t_end"] - arrays["t_start"])
        )

    def test_time_span(self):
        rs = self._set()
        t0, t1 = rs.time_span()
        assert t0 == 6.0
        assert t1 == 110.0
        assert RequestSet().time_span() == (0.0, 0.0)

    def test_breakpoints_sorted_unique(self):
        rs = RequestSet(
            [
                make_request(rid=0, t_start=0.0, t_end=10.0, volume=100.0, max_rate=100.0),
                make_request(rid=1, t_start=0.0, t_end=5.0, volume=100.0, max_rate=100.0),
            ]
        )
        bp = rs.breakpoints()
        assert list(bp) == [0.0, 5.0, 10.0]

    def test_total_volume(self):
        assert self._set(3).total_volume() == pytest.approx(3000.0)

    def test_subsets(self):
        rigid = Request.rigid(10, 0, 1, 100.0, 0.0, 10.0)
        flex = make_request(rid=11, max_rate=500.0)
        rs = RequestSet([rigid, flex])
        assert [r.rid for r in rs.rigid_subset()] == [10]
        assert [r.rid for r in rs.flexible_subset()] == [11]

    def test_json_roundtrip(self):
        rs = self._set()
        rs2 = RequestSet.from_json(rs.to_json())
        assert list(rs2) == list(rs)

    def test_contains(self):
        rs = self._set()
        assert rs[0] in rs
