"""End-to-end acceptance tests for the observability layer.

The ISSUE-level contract: a seeded ReservationService run produces an
artifact from which ``grid-obs summary`` reports accept count, reject
counts by RejectReason, and per-port peak utilization consistent with
:func:`repro.metrics.collector.evaluate` on the same run — and two
identical seeded runs produce byte-identical telemetry.
"""

import json

import numpy as np
import pytest

from repro.control.service import ReservationService
from repro.core import Platform, ProblemInstance, RejectReason
from repro.metrics.collector import evaluate
from repro.obs import RunTelemetry, Telemetry, summarize, use_telemetry, validate_chrome_trace
from repro.obs.cli import main

SEED = 2006
NUM_SUBMITS = 80


def _run_workload(seed: int = SEED) -> tuple[ReservationService, RunTelemetry]:
    """A seeded submit-only run captured into an artifact."""
    platform = Platform.paper_platform()
    rng = np.random.default_rng(seed)
    telemetry = Telemetry()
    with use_telemetry(telemetry):
        service = ReservationService(platform)
        for k in range(NUM_SUBMITS):
            now = float(k * 50)
            window = float(rng.uniform(900, 6000))
            ingress = int(rng.integers(platform.num_ingress))
            egress = int(rng.integers(platform.num_egress))
            cap = platform.bottleneck(ingress, egress)
            service.submit(
                ingress=ingress,
                egress=egress,
                volume=float(rng.uniform(0.3, 0.95)) * cap * window,
                deadline=now + window,
                now=now,
            )
    artifact = RunTelemetry("integration", meta={"seed": seed})
    artifact.capture("run", telemetry)
    return service, artifact


@pytest.fixture(scope="module")
def workload():
    return _run_workload()


class TestSummaryMatchesService:
    def test_accept_and_reject_counts(self, workload):
        service, artifact = workload
        summary = summarize(artifact)
        confirmed = [r for r in service.reservations() if r.confirmed]
        rejected = [r for r in service.reservations() if not r.confirmed]
        assert rejected, "workload must actually saturate the platform"
        assert summary.accepted == len(confirmed)
        assert summary.rejected == len(rejected)

    def test_reject_reasons_match_reservations(self, workload):
        service, artifact = workload
        summary = summarize(artifact)
        expected: dict[str, int] = {}
        for r in service.reservations():
            if not r.confirmed:
                assert isinstance(r.reject_reason, RejectReason)
                key = r.reject_reason.value
                expected[key] = expected.get(key, 0) + 1
        assert summary.reject_reasons == expected

    def test_matches_collector_evaluate(self, workload):
        service, artifact = workload
        summary = summarize(artifact)
        requests, result = service.surviving_schedule()
        problem = ProblemInstance(platform=service.platform, requests=requests)
        report = evaluate(problem, result)
        assert summary.accept_rate == pytest.approx(report.accept_rate)
        assert summary.accepted + summary.rejected == report.num_requests
        assert result.rejection_breakdown() == summary.reject_reasons

    def test_port_peaks_match_schedule_ledger(self, workload):
        service, artifact = workload
        summary = summarize(artifact)
        requests, result = service.surviving_schedule()
        ledger = result.build_ledger(service.platform)
        t0, t1 = requests.time_span()
        for (side, port), peak in summary.port_peaks.items():
            if side == "ingress":
                timeline = ledger.ingress_timeline(port)
                cap = service.platform.bin(port)
            else:
                timeline = ledger.egress_timeline(port)
                cap = service.platform.bout(port)
            expected = timeline.max_usage(t0, t1) / cap
            assert peak == pytest.approx(expected, rel=1e-9), (side, port)

    def test_grid_obs_summary_cli(self, workload, tmp_path, capsys):
        service, artifact = workload
        path = artifact.save(tmp_path / "run.json")
        assert main(["summary", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        summary = summarize(artifact)
        assert data["accepted"] == summary.accepted
        assert data["reject_reasons"] == summary.reject_reasons
        assert data["accept_rate"] == pytest.approx(service.accept_rate())

    def test_chrome_export_validates(self, workload):
        _, artifact = workload
        validate_chrome_trace(artifact.chrome_trace())


class TestDeterminism:
    def test_identical_seeds_are_byte_identical(self):
        _, first = _run_workload()
        _, second = _run_workload()
        assert first.to_json() == second.to_json()

    def test_different_seeds_differ(self):
        _, first = _run_workload(seed=1)
        _, second = _run_workload(seed=2)
        assert first.to_json() != second.to_json()


class TestDecisionEvents:
    def test_every_submit_has_an_event(self, workload):
        _, artifact = workload
        (capture,) = list(artifact.captures())
        submit_events = [e for e in capture["events"] if e["name"] == "service.submit"]
        assert len(submit_events) == NUM_SUBMITS

    def test_rejection_events_carry_diagnostics(self, workload):
        _, artifact = workload
        (capture,) = list(artifact.captures())
        rejections = [
            e["fields"]
            for e in capture["events"]
            if e["name"] == "service.submit" and e["fields"]["outcome"] == "rejected"
        ]
        assert rejections
        for fields in rejections:
            assert fields["reason"] in {r.value for r in RejectReason}
            assert fields["candidates"] >= 1
        capacity_rejects = [f for f in rejections if f["reason"].endswith("-full")]
        assert capacity_rejects, "expected capacity-driven rejections in this workload"
        for fields in capacity_rejects:
            assert "ingress_headroom" in fields and "egress_headroom" in fields
