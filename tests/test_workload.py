"""Tests for workload generation: arrivals, distributions, generators, load."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Platform
from repro.units import GB, TB
from repro.workload import (
    ChoiceVolumes,
    DeterministicArrivals,
    FixedDuration,
    FixedPair,
    FixedRate,
    FixedVolume,
    FlexibleWorkload,
    HotspotPairs,
    LogUniformDurations,
    LogUniformRates,
    LogUniformVolumes,
    PaperVolumes,
    PoissonArrivals,
    RigidWorkload,
    SlottedRigidWorkload,
    TraceArrivals,
    UniformPairs,
    UniformRates,
    UniformVolumes,
    arrival_rate_for_load,
    empirical_load,
    mean_interarrival_for_load,
    offered_load,
    paper_flexible_workload,
    paper_rigid_workload,
    paper_volume_set,
    steady_state_load,
)

RNG = lambda seed=0: np.random.default_rng(seed)


class TestArrivals:
    def test_poisson_sorted_positive(self):
        times = PoissonArrivals(2.0).generate(100, RNG())
        assert np.all(np.diff(times) >= 0)
        assert times[0] > 0

    def test_poisson_mean(self):
        times = PoissonArrivals(2.0).generate(20_000, RNG())
        assert np.mean(np.diff(times)) == pytest.approx(2.0, rel=0.05)

    def test_poisson_with_rate(self):
        assert PoissonArrivals.with_rate(4.0).mean_interarrival() == pytest.approx(0.25)
        assert PoissonArrivals(0.5).rate() == pytest.approx(2.0)

    def test_poisson_rejects_bad(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigurationError):
            PoissonArrivals.with_rate(-1.0)

    def test_deterministic(self):
        times = DeterministicArrivals(5.0).generate(4, RNG(), t0=100.0)
        assert list(times) == [105.0, 110.0, 115.0, 120.0]

    def test_trace(self):
        trace = TraceArrivals([1.0, 2.0, 5.0])
        assert list(trace.generate(2, RNG())) == [1.0, 2.0]
        assert trace.mean_interarrival() == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            trace.generate(5, RNG())

    def test_trace_must_be_sorted(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals([3.0, 1.0])


class TestVolumes:
    def test_paper_values(self):
        values = paper_volume_set()
        assert values[0] == 10 * GB
        assert values[-1] == TB
        assert len(values) == 19

    def test_choice_draws_from_set(self):
        dist = PaperVolumes()
        draws = dist.generate(500, RNG())
        assert set(draws).issubset(set(paper_volume_set()))

    def test_choice_mean(self):
        dist = ChoiceVolumes([100.0, 300.0])
        assert dist.mean() == pytest.approx(200.0)

    def test_choice_rejects_empty_or_negative(self):
        with pytest.raises(ConfigurationError):
            ChoiceVolumes([])
        with pytest.raises(ConfigurationError):
            ChoiceVolumes([10.0, -1.0])

    def test_uniform_bounds(self):
        draws = UniformVolumes(10.0, 20.0).generate(1000, RNG())
        assert draws.min() >= 10.0
        assert draws.max() <= 20.0

    def test_loguniform_bounds_and_mean(self):
        dist = LogUniformVolumes(10.0, 1000.0)
        draws = dist.generate(20_000, RNG())
        assert draws.min() >= 10.0 and draws.max() <= 1000.0
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.05)

    def test_fixed(self):
        draws = FixedVolume(42.0).generate(10, RNG())
        assert np.all(draws == 42.0)

    def test_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformVolumes(10.0, 5.0)
        with pytest.raises(ConfigurationError):
            LogUniformVolumes(0.0, 5.0)


class TestRatesAndDurations:
    def test_uniform_rates(self):
        draws = UniformRates(10.0, 1000.0).generate(1000, RNG())
        assert draws.min() >= 10.0 and draws.max() <= 1000.0

    def test_loguniform_rates_mean(self):
        dist = LogUniformRates(10.0, 1000.0)
        draws = dist.generate(20_000, RNG())
        assert np.mean(draws) == pytest.approx(dist.mean(), rel=0.05)

    def test_fixed_rate(self):
        assert FixedRate(5.0).mean() == 5.0

    def test_durations(self):
        dist = LogUniformDurations(60.0, 3600.0)
        draws = dist.generate(1000, RNG())
        assert draws.min() >= 60.0 and draws.max() <= 3600.0
        assert FixedDuration(10.0).generate(3, RNG()).tolist() == [10.0, 10.0, 10.0]


class TestPairs:
    def test_uniform_excludes_same_index(self):
        p = Platform.uniform(5, 5, 10.0)
        ing, egr = UniformPairs().generate(p, 2000, RNG())
        assert not np.any(ing == egr)
        assert ing.min() >= 0 and ing.max() < 5

    def test_uniform_allows_same_when_disabled(self):
        p = Platform.uniform(3, 3, 10.0)
        ing, egr = UniformPairs(exclude_same_index=False).generate(p, 2000, RNG())
        assert np.any(ing == egr)

    def test_uniform_1x1_exclusion_impossible(self):
        p = Platform.uniform(1, 1, 10.0)
        with pytest.raises(ConfigurationError):
            UniformPairs().generate(p, 10, RNG())

    def test_hotspot_bias(self):
        p = Platform.uniform(4, 4, 10.0)
        sel = HotspotPairs(ingress_weights=[10.0, 1.0, 1.0, 1.0], exclude_same_index=False)
        ing, _ = sel.generate(p, 5000, RNG())
        counts = np.bincount(ing, minlength=4)
        assert counts[0] > 2 * counts[1]

    def test_hotspot_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            HotspotPairs(ingress_weights=[-1.0, 1.0])
        with pytest.raises(ConfigurationError):
            HotspotPairs(ingress_weights=[0.0, 0.0])

    def test_hotspot_wrong_length(self):
        p = Platform.uniform(3, 3, 10.0)
        with pytest.raises(ConfigurationError):
            HotspotPairs(ingress_weights=[1.0, 2.0]).generate(p, 10, RNG())

    def test_fixed_pair(self):
        p = Platform.uniform(3, 3, 10.0)
        ing, egr = FixedPair(1, 2).generate(p, 5, RNG())
        assert np.all(ing == 1) and np.all(egr == 2)

    def test_fixed_pair_bounds(self):
        p = Platform.uniform(2, 2, 10.0)
        with pytest.raises(ConfigurationError):
            FixedPair(5, 0).generate(p, 1, RNG())


class TestLoad:
    def test_calibration_roundtrip(self):
        p = Platform.paper_platform()
        rate = arrival_rate_for_load(p, 2.0, mean_volume=313_157.0)
        assert steady_state_load(p, rate, 313_157.0) == pytest.approx(2.0)
        assert mean_interarrival_for_load(p, 2.0, 313_157.0) == pytest.approx(1.0 / rate)

    def test_calibration_rejects_bad(self):
        p = Platform.paper_platform()
        with pytest.raises(ValueError):
            arrival_rate_for_load(p, 0.0, 100.0)
        with pytest.raises(ValueError):
            arrival_rate_for_load(p, 1.0, 0.0)

    def test_empirical_load_tracks_target(self):
        # long run with bounded durations: empirical load near target
        p = Platform.paper_platform()
        prob = paper_rigid_workload(load=2.0, n_requests=4000, seed=5)
        measured = empirical_load(p, prob.requests)
        assert measured == pytest.approx(2.0, rel=0.25)

    def test_offered_load(self):
        p = Platform.uniform(1, 1, 100.0)
        prob = paper_rigid_workload(0.5, 50, seed=1)
        assert offered_load(prob.platform, prob.requests) > 0


class TestGenerators:
    def test_rigid_all_rigid(self):
        p = Platform.paper_platform()
        prob = RigidWorkload(p, PoissonArrivals(5.0)).generate(200, RNG(3))
        assert all(r.is_rigid for r in prob.requests)
        prob.validate()

    def test_rigid_rates_within_port_capacity(self):
        p = Platform.uniform(3, 3, 50.0)
        prob = RigidWorkload(p, PoissonArrivals(5.0)).generate(300, RNG(3))
        assert all(r.min_rate <= 50.0 * (1 + 1e-9) for r in prob.requests)

    def test_slotted_windows_on_grid(self):
        p = Platform.paper_platform()
        wl = SlottedRigidWorkload(p, PoissonArrivals(5.0), slot=300.0, max_slots=10)
        prob = wl.generate(300, RNG(3))
        for r in prob.requests:
            assert r.t_start % 300.0 == pytest.approx(0.0, abs=1e-6)
            spans = r.window_length / 300.0
            assert spans == pytest.approx(round(spans))
            assert r.is_rigid
            assert r.min_rate <= 1000.0 * (1 + 1e-9)

    def test_slotted_rejects_bad_config(self):
        p = Platform.paper_platform()
        with pytest.raises(ConfigurationError):
            SlottedRigidWorkload(p, PoissonArrivals(5.0), slot=0.0).generate(1, RNG())
        with pytest.raises(ConfigurationError):
            SlottedRigidWorkload(p, PoissonArrivals(5.0), max_slots=0).generate(1, RNG())

    def test_flexible_rate_structure(self):
        p = Platform.paper_platform()
        wl = FlexibleWorkload(p, PoissonArrivals(5.0), slack=6.0)
        prob = wl.generate(300, RNG(4))
        for r in prob.requests:
            assert r.max_rate <= 1000.0 * (1 + 1e-9)
            assert r.min_rate == pytest.approx(r.max_rate / 6.0, rel=1e-9)
            assert r.is_flexible

    def test_flexible_rejects_bad_slack(self):
        p = Platform.paper_platform()
        with pytest.raises(ConfigurationError):
            FlexibleWorkload(p, PoissonArrivals(5.0), slack=0.5).generate(1, RNG())

    def test_negative_count_rejected(self):
        p = Platform.paper_platform()
        with pytest.raises(ConfigurationError):
            RigidWorkload(p, PoissonArrivals(5.0)).generate(-1, RNG())

    def test_determinism_same_seed(self):
        a = paper_flexible_workload(2.0, 50, seed=11)
        b = paper_flexible_workload(2.0, 50, seed=11)
        assert list(a.requests) == list(b.requests)

    def test_different_seeds_differ(self):
        a = paper_flexible_workload(2.0, 50, seed=11)
        b = paper_flexible_workload(2.0, 50, seed=12)
        assert list(a.requests) != list(b.requests)

    def test_paper_rigid_workload_shape(self):
        prob = paper_rigid_workload(2.0, 100, seed=1)
        assert prob.num_requests == 100
        assert prob.platform == Platform.paper_platform()


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(1, 100),
    seed=st.integers(0, 2**32 - 1),
    slack=st.floats(1.0, 20.0, allow_nan=False),
)
def test_flexible_generation_always_valid(n, seed, slack):
    """Any generated flexible instance satisfies the request invariants."""
    p = Platform.paper_platform()
    wl = FlexibleWorkload(p, PoissonArrivals(3.0), slack=slack)
    prob = wl.generate(n, np.random.default_rng(seed))
    prob.validate()
    for r in prob.requests:
        assert r.min_rate <= r.max_rate * (1 + 1e-9)
        assert r.t_end > r.t_start


class TestSinusoidalArrivals:
    def test_sorted_and_mean(self):
        from repro.workload import SinusoidalArrivals

        proc = SinusoidalArrivals(mean=2.0, amplitude=0.8, period=500.0)
        times = proc.generate(5000, RNG(0))
        assert np.all(np.diff(times) >= 0)
        assert np.mean(np.diff(times)) == pytest.approx(2.0, rel=0.1)

    def test_zero_amplitude_matches_poisson_stats(self):
        from repro.workload import SinusoidalArrivals

        proc = SinusoidalArrivals(mean=3.0, amplitude=0.0)
        times = proc.generate(8000, RNG(1))
        assert np.mean(np.diff(times)) == pytest.approx(3.0, rel=0.1)

    def test_intensity_oscillates(self):
        from repro.workload import SinusoidalArrivals

        proc = SinusoidalArrivals(mean=2.0, amplitude=0.5, period=100.0)
        assert proc.intensity(25.0) == pytest.approx(1.5 / 2.0)   # peak
        assert proc.intensity(75.0) == pytest.approx(0.5 / 2.0)   # trough

    def test_day_night_density(self):
        from repro.workload import SinusoidalArrivals

        proc = SinusoidalArrivals(mean=1.0, amplitude=0.9, period=1000.0)
        times = proc.generate(20_000, RNG(2))
        phase = (times % 1000.0) / 1000.0
        day = np.sum((phase > 0.0) & (phase < 0.5))    # high-intensity half
        night = np.sum((phase >= 0.5) & (phase < 1.0))
        assert day > 1.5 * night

    def test_validation(self):
        from repro.workload import SinusoidalArrivals

        with pytest.raises(ConfigurationError):
            SinusoidalArrivals(mean=0.0)
        with pytest.raises(ConfigurationError):
            SinusoidalArrivals(mean=1.0, amplitude=1.0)
        with pytest.raises(ConfigurationError):
            SinusoidalArrivals(mean=1.0, period=-5.0)


class TestGravityPairs:
    def test_defaults_to_capacity_masses(self):
        from repro.workload import GravityPairs

        p = Platform([100.0, 10.0, 10.0], [100.0, 10.0, 10.0])
        ing, egr = GravityPairs(exclude_same_index=False).generate(p, 6000, RNG(0))
        counts = np.bincount(ing, minlength=3)
        assert counts[0] > 4 * counts[1]

    def test_explicit_masses(self):
        from repro.workload import GravityPairs

        p = Platform.uniform(3, 3, 10.0)
        sel = GravityPairs(masses=[1.0, 1.0, 10.0], exclude_same_index=False)
        ing, egr = sel.generate(p, 6000, RNG(1))
        assert np.bincount(egr, minlength=3)[2] > 3 * np.bincount(egr, minlength=3)[0]

    def test_mass_length_checked(self):
        from repro.workload import GravityPairs

        p = Platform.uniform(3, 3, 10.0)
        with pytest.raises(ConfigurationError):
            GravityPairs(masses=[1.0, 2.0]).generate(p, 5, RNG(2))

    def test_bad_masses(self):
        from repro.workload import GravityPairs

        with pytest.raises(ConfigurationError):
            GravityPairs(masses=[-1.0, 1.0])


class TestSummary:
    def test_summarize_table(self):
        from repro.workload import summarize

        prob = paper_flexible_workload(2.0, 100, seed=0)
        table = summarize(prob.requests, prob.platform)
        dims = table.column("dimension")
        for expected in ("volume", "MinRate", "MaxRate", "window", "inter-arrival", "empirical load"):
            assert expected in dims

    def test_summarize_empty(self):
        from repro.core import RequestSet
        from repro.workload import summarize

        assert summarize(RequestSet()).rows == []

    def test_histogram(self):
        from repro.workload import text_histogram

        text = text_histogram([1.0, 2.0, 2.5, 9.0], bins=4, title="h")
        assert "h" in text
        assert text.count("|") == 4

    def test_histogram_log(self):
        from repro.workload import text_histogram

        text = text_histogram([1.0, 10.0, 100.0, 1000.0], bins=3, log=True)
        assert "|" in text
        with pytest.raises(ValueError):
            text_histogram([0.0, 1.0], log=True)

    def test_histogram_empty(self):
        from repro.workload import text_histogram

        assert "(no data)" in text_histogram([], title="x")
