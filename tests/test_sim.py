"""Tests for the discrete-event simulation engine."""


import pytest

from repro.obs import Telemetry, use_telemetry
from repro.sim import EventQueue, EventTrace, Simulator


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        seen = []
        q.push(5.0, lambda e: seen.append(5))
        q.push(1.0, lambda e: seen.append(1))
        q.push(3.0, lambda e: seen.append(3))
        while (e := q.pop()) is not None:
            e.callback(e)
        assert seen == [1, 3, 5]

    def test_same_time_fifo(self):
        q = EventQueue()
        order = []
        for i in range(5):
            q.push(1.0, lambda e, i=i: order.append(i))
        while (e := q.pop()) is not None:
            e.callback(e)
        assert order == [0, 1, 2, 3, 4]

    def test_priority_breaks_ties(self):
        q = EventQueue()
        order = []
        q.push(1.0, lambda e: order.append("low"), priority=1)
        q.push(1.0, lambda e: order.append("high"), priority=0)
        while (e := q.pop()) is not None:
            e.callback(e)
        assert order == ["high", "low"]

    def test_cancel(self):
        q = EventQueue()
        ev = q.push(1.0, lambda e: pytest.fail("cancelled event ran"))
        ev.cancel()
        assert q.pop() is None
        assert len(q) == 0

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        ev = q.push(1.0, lambda e: None)
        q.push(2.0, lambda e: None)
        ev.cancel()
        assert q.peek_time() == 2.0

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, lambda e: None)
        assert q


class TestSimulator:
    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.at(2.0, lambda e: times.append(sim.now))
        sim.at(7.0, lambda e: times.append(sim.now))
        sim.run()
        assert times == [2.0, 7.0]
        assert sim.now == 7.0
        assert sim.steps == 2

    def test_after(self):
        sim = Simulator(start_time=10.0)
        fired = []
        sim.after(5.0, lambda e: fired.append(sim.now))
        sim.run()
        assert fired == [15.0]

    def test_no_scheduling_in_past(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(ValueError):
            sim.at(5.0, lambda e: None)
        with pytest.raises(ValueError):
            sim.after(-1.0, lambda e: None)

    def test_events_can_spawn_events(self):
        sim = Simulator()
        fired = []

        def chain(event):
            fired.append(sim.now)
            if len(fired) < 4:
                sim.after(1.0, chain)

        sim.at(0.0, chain)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]

    def test_run_until_stops(self):
        sim = Simulator()
        fired = []
        for t in [1.0, 2.0, 3.0, 4.0]:
            sim.at(t, lambda e: fired.append(sim.now))
        sim.run(until=2.5)
        assert fired == [1.0, 2.0]
        assert sim.now == 2.5
        sim.run()
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_run_until_inclusive(self):
        sim = Simulator()
        fired = []
        sim.at(2.0, lambda e: fired.append(sim.now))
        sim.run(until=2.0)
        assert fired == [2.0]

    def test_max_steps(self):
        sim = Simulator()
        for t in range(10):
            sim.at(float(t), lambda e: None)
        sim.run(max_steps=3)
        assert sim.steps == 3

    def test_empty_run_advances_to_until(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_payloads_delivered(self):
        sim = Simulator()
        got = []
        sim.at(1.0, lambda e: got.append(e.payload), payload={"x": 1})
        sim.run()
        assert got == [{"x": 1}]


class TestEventTrace:
    def test_records_dispatched_events(self):
        trace = EventTrace()
        sim = Simulator(trace=trace)

        def handler(event):
            pass

        sim.at(1.0, handler)
        sim.at(2.0, handler)
        sim.run()
        assert len(trace) == 2
        assert trace.times() == [1.0, 2.0]
        assert trace[0].label == "handler"

    def test_capacity_bound(self):
        trace = EventTrace(capacity=3)
        for i in range(10):
            trace.append(float(i), "tick")
        assert len(trace) == 3
        assert trace.dropped == 7
        assert trace.times() == [7.0, 8.0, 9.0]

    def test_filter(self):
        trace = EventTrace()
        trace.append(0.0, "a")
        trace.append(1.0, "b")
        trace.append(2.0, "a")
        assert len(trace.filter("a")) == 2

    def test_summary_counts_dropped_events(self):
        trace = EventTrace(capacity=4)
        for i in range(10):
            trace.append(float(i), "tick" if i % 2 == 0 else "tock")
        digest = trace.summary()
        assert digest["retained"] == 4
        assert digest["dropped"] == 6
        assert digest["recorded"] == 10
        assert digest["labels"] == {"tick": 2, "tock": 2}
        assert digest["first_time"] == 6.0
        assert digest["last_time"] == 9.0

    def test_summary_of_empty_trace(self):
        digest = EventTrace().summary()
        assert digest["retained"] == 0
        assert digest["dropped"] == 0
        assert digest["recorded"] == 0
        assert digest["labels"] == {}
        assert digest["first_time"] is None
        assert digest["last_time"] is None

    def test_summary_tallies_reject_reasons_and_readmissions(self):
        from repro.core.booking import RejectReason

        trace = EventTrace()
        trace.append(0.0, "gw_submit", {"rid": 0, "outcome": "accepted"})
        # Enum payloads and pre-stringified ones normalise to the same key.
        trace.append(1.0, "gw_reject", {"rid": 1, "reason": RejectReason.SHARD_UNREACHABLE})
        trace.append(2.0, "gw_reject", {"rid": 2, "reason": "shard-unreachable"})
        trace.append(3.0, "gw_reject", {"rid": 3, "reason": RejectReason.WINDOW_INFEASIBLE})
        trace.append(4.0, "gw_readmit", {"rid": 1, "origin": 1})
        trace.append(5.0, "backlog_readmit_attempt", {"rid": 2})
        digest = trace.summary()
        assert digest["reject_reasons"]["shard-unreachable"] == 2
        assert digest["reject_reasons"][RejectReason.WINDOW_INFEASIBLE.value] == 1
        assert digest["readmissions"] == 2

    def test_summary_reads_attribute_style_payloads(self):
        class Decision:
            reason = "no-capacity"

        trace = EventTrace(capacity=2)
        trace.append(0.0, "old", Decision())  # evicted below
        trace.append(1.0, "gw_reject", Decision())
        trace.append(2.0, "gw_reject", Decision())
        digest = trace.summary()
        assert digest["reject_reasons"] == {"no-capacity": 2}
        assert digest["dropped"] == 1 and digest["recorded"] == 3
        assert digest["readmissions"] == 0

    def test_fifo_eviction_keeps_newest_tail(self):
        # Regression guard: eviction must discard the *oldest* records and
        # the dropped counter must keep the true dispatch count.
        trace = EventTrace(capacity=2)
        for i in range(5):
            trace.append(float(i), f"e{i}")
        assert [r.label for r in trace] == ["e3", "e4"]
        assert trace.dropped == 3
        assert trace.summary()["recorded"] == 5


class TestEngineTelemetry:
    def test_run_emits_counters_and_span(self):
        tel = Telemetry()
        with use_telemetry(tel):
            sim = Simulator()

            def handler(event):
                pass

            sim.at(1.0, handler)
            sim.at(2.0, handler)
            sim.run()
        counter = tel.metrics.counter("sim_events_total")
        assert counter.value(label="handler") == 2.0
        (run_span,) = tel.tracer.spans(name="sim.run")
        assert run_span.end == 2.0
        assert run_span.args["steps"] == 2
        assert len(tel.tracer.spans(name="sim.handler")) == 2

    def test_disabled_telemetry_records_nothing(self):
        sim = Simulator()
        sim.at(1.0, lambda e: None)
        sim.run()
        # The default handle is the no-op null telemetry; nothing to assert
        # beyond "this ran without touching a real registry".
        from repro.obs import get_telemetry

        assert get_telemetry().is_empty()
