"""Fixture-driven tests for the per-module gridlint rules (GL001–GL010,
GL015; the flow-sensitive GL011–GL014 live in test_analysis_dataflow.py).

Each rule gets (at least) one fixture proving it fires and one proving
inline suppression silences it; the end-to-end test plants a violation of
every rule in one temp package and checks the CLI gates on all of them.
"""

import textwrap

from repro.analysis import all_rules, run_analysis
from repro.analysis.cli import main
from repro.analysis.rules import rules_by_id
from repro.analysis.rules.float_eq import is_quantity_name


def _scan(tmp_path, source, *, rules=None, filename="mod.py"):
    (tmp_path / filename).parent.mkdir(parents=True, exist_ok=True)
    (tmp_path / filename).write_text(textwrap.dedent(source))
    return run_analysis([tmp_path], rules if rules is not None else all_rules())


def _active(report, rule_id):
    return [f for f in report.findings if f.rule == rule_id]


def _suppressed(report, rule_id):
    return [f for f in report.suppressed if f.rule == rule_id]


class TestGL001WallClock:
    def test_fires_on_time_time(self, tmp_path):
        report = _scan(tmp_path, "import time\n\ndef f():\n    return time.time()\n")
        assert len(_active(report, "GL001")) == 1

    def test_fires_on_from_import_and_datetime(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            from time import perf_counter as pc
            from datetime import datetime

            def f():
                return pc(), datetime.now()
            """,
        )
        assert len(_active(report, "GL001")) == 2

    def test_simulated_time_argument_is_fine(self, tmp_path):
        report = _scan(tmp_path, "def f(now):\n    return now + 1.0\n")
        assert _active(report, "GL001") == []

    def test_allowlisted_in_report_gen_and_benchmarks(self, tmp_path):
        source = "import time\n\ndef f():\n    return time.time()\n"
        report = _scan(tmp_path, source, filename="experiments/report_gen.py")
        assert _active(report, "GL001") == []
        report = _scan(tmp_path, source, filename="benchmarks/bench_x.py")
        assert _active(report, "GL001") == []

    def test_perfclock_allowlist_is_scoped_to_one_module(self, tmp_path):
        source = "import time\n\ndef now():\n    return time.perf_counter()\n"
        report = _scan(tmp_path / "a", source, filename="obs/perfclock.py")
        assert _active(report, "GL001") == []
        # The exemption covers exactly repro/obs/perfclock.py — its siblings
        # in the obs package still must not read the wall clock.
        report = _scan(tmp_path / "b", source, filename="obs/metrics.py")
        assert len(_active(report, "GL001")) == 1
        report = _scan(tmp_path / "c", source, filename="obs/tracer.py")
        assert len(_active(report, "GL001")) == 1

    def test_flight_recorder_joins_the_clock_allowlist(self, tmp_path):
        # Post-mortem dumps may stamp host metadata; the SLO watchdog (and
        # every other obs sibling) still must not read the wall clock.
        source = "import time\n\ndef dumped_at():\n    return time.time()\n"
        report = _scan(tmp_path / "a", source, filename="obs/recorder.py")
        assert _active(report, "GL001") == []
        report = _scan(tmp_path / "b", source, filename="obs/slo.py")
        assert len(_active(report, "GL001")) == 1

    def test_serve_clock_joins_the_allowlist_scoped(self, tmp_path):
        # The service's wall-clock seam (WallServiceClock) legitimately
        # reads the host clock; its serve/ siblings still may not.
        source = "import time\n\ndef origin():\n    return time.monotonic()\n"
        report = _scan(tmp_path / "a", source, filename="serve/clock.py")
        assert _active(report, "GL001") == []
        report = _scan(tmp_path / "b", source, filename="serve/app.py")
        assert len(_active(report, "GL001")) == 1
        report = _scan(tmp_path / "c", source, filename="serve/frontier.py")
        assert len(_active(report, "GL001")) == 1

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            "import time\n\ndef f():\n"
            "    return time.time()  # gridlint: disable=GL001 -- wall time wanted\n",
        )
        assert _active(report, "GL001") == []
        assert len(_suppressed(report, "GL001")) == 1


class TestGL002UnseededRng:
    def test_fires_on_module_level_random(self, tmp_path):
        report = _scan(tmp_path, "import random\n\ndef f():\n    return random.uniform(0, 1)\n")
        assert len(_active(report, "GL002")) == 1

    def test_fires_on_np_random_alias(self, tmp_path):
        report = _scan(tmp_path, "import numpy as np\n\ndef f():\n    return np.random.normal()\n")
        assert len(_active(report, "GL002")) == 1

    def test_seeded_constructors_allowed(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            import random
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                r = random.Random(seed)
                return rng.integers(10), r.random()
            """,
        )
        assert _active(report, "GL002") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            "import random\n\ndef f():\n"
            "    return random.random()  # gridlint: disable=GL002 -- nonce, not simulation\n",
        )
        assert _active(report, "GL002") == []
        assert len(_suppressed(report, "GL002")) == 1


class TestGL003FloatEq:
    def test_fires_on_quantity_vs_quantity(self, tmp_path):
        report = _scan(tmp_path, "def f(t_end, deadline):\n    return t_end == deadline\n")
        assert len(_active(report, "GL003")) == 1

    def test_fires_on_quantity_vs_float_literal(self, tmp_path):
        report = _scan(tmp_path, "def f(bw):\n    return bw != 1000.0\n")
        assert len(_active(report, "GL003")) == 1

    def test_fires_on_container_subscript(self, tmp_path):
        report = _scan(
            tmp_path,
            "class T:\n"
            "    def f(self, i, t1):\n"
            "        return self._times[i] == t1\n",
        )
        assert len(_active(report, "GL003")) == 1

    def test_int_literal_and_non_quantity_names_pass(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def f(count, mode, volume):
                a = count == 3
                b = mode == "rigid"
                c = volume is None
                return a, b, c
            """,
        )
        assert _active(report, "GL003") == []

    def test_ordering_comparisons_pass(self, tmp_path):
        report = _scan(tmp_path, "def f(t0, t1):\n    return t0 < t1 <= t1 + 5.0\n")
        assert _active(report, "GL003") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            "def f(t_end, deadline):\n"
            "    return t_end == deadline  # gridlint: disable=GL003 -- exact identity\n",
        )
        assert _active(report, "GL003") == []
        assert len(_suppressed(report, "GL003")) == 1

    def test_vocabulary(self):
        assert is_quantity_name("t_start")
        assert is_quantity_name("cancelled_at")
        assert is_quantity_name("_times")
        assert is_quantity_name("max_rate")
        assert not is_quantity_name("mode")
        assert not is_quantity_name("count")
        assert not is_quantity_name(None)


class TestGL004LedgerEncapsulation:
    def test_fires_on_foreign_ledger_write(self, tmp_path):
        report = _scan(
            tmp_path,
            "def f(ledger, tl):\n    ledger._ingress[0] = tl\n",
            filename="schedulers/hack.py",
        )
        assert len(_active(report, "GL004")) == 1

    def test_fires_on_reservation_stamp_write(self, tmp_path):
        report = _scan(
            tmp_path,
            "def f(reservation, now):\n    reservation.cancelled_at = now\n",
            filename="schedulers/hack.py",
        )
        assert len(_active(report, "GL004")) == 1

    def test_owning_modules_may_write(self, tmp_path):
        report = _scan(
            tmp_path,
            "class PortLedger:\n    def __init__(self):\n        self._ingress = []\n",
            filename="core/ledger.py",
        )
        assert _active(report, "GL004") == []
        report = _scan(
            tmp_path,
            "def cancel(reservation, now):\n    reservation.cancelled_at = now\n",
            filename="control/service.py",
        )
        assert _active(report, "GL004") == []

    def test_fires_on_foreign_profile_segment_write(self, tmp_path):
        report = _scan(
            tmp_path,
            "def widen(profile, segs):\n    profile._segments = segs\n",
            filename="schedulers/hack.py",
        )
        assert len(_active(report, "GL004")) == 1

    def test_core_owns_profile_segments(self, tmp_path):
        report = _scan(
            tmp_path,
            "class RateProfile:\n"
            "    def __init__(self, segments):\n"
            "        self._segments = tuple(segments)\n",
            filename="core/profile.py",
        )
        assert _active(report, "GL004") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            "def f(ledger, tl):\n"
            "    ledger._ingress[0] = tl  # gridlint: disable=GL004 -- test harness rewiring\n",
        )
        assert _active(report, "GL004") == []
        assert len(_suppressed(report, "GL004")) == 1


class TestGL005RegistryCompleteness:
    @staticmethod
    def _plant(tmp_path, *, registered: bool, suppress: bool = False):
        pkg = tmp_path / "schedulers"
        pkg.mkdir(parents=True, exist_ok=True)
        (pkg / "base.py").write_text("class Scheduler:\n    pass\n")
        suffix = "  # gridlint: disable=GL005 -- experimental, not user-facing" if suppress else ""
        (pkg / "extra.py").write_text(
            "from .base import Scheduler\n\n\n"
            f"class OrphanScheduler(Scheduler):{suffix}\n"
            "    pass\n"
        )
        body = "from .extra import OrphanScheduler\n_F = {'orphan': OrphanScheduler}\n" if registered else "_F = {}\n"
        (pkg / "registry.py").write_text(body)

    def test_fires_on_unregistered_subclass(self, tmp_path):
        self._plant(tmp_path, registered=False)
        report = run_analysis([tmp_path], all_rules())
        findings = _active(report, "GL005")
        assert len(findings) == 1
        assert "OrphanScheduler" in findings[0].message

    def test_registered_subclass_passes(self, tmp_path):
        self._plant(tmp_path, registered=True)
        report = run_analysis([tmp_path], all_rules())
        assert _active(report, "GL005") == []

    def test_base_class_itself_exempt(self, tmp_path):
        self._plant(tmp_path, registered=True)
        report = run_analysis([tmp_path], all_rules())
        assert all("Scheduler is not referenced" not in f.message for f in report.findings)

    def test_suppression_on_class_line(self, tmp_path):
        self._plant(tmp_path, registered=False, suppress=True)
        report = run_analysis([tmp_path], all_rules())
        assert _active(report, "GL005") == []
        assert len(_suppressed(report, "GL005")) == 1

    def test_real_registry_is_complete(self):
        """Every Scheduler subclass in the shipped tree is constructible by name."""
        from pathlib import Path

        src = Path(__file__).parent.parent / "src"
        rule = rules_by_id()["GL005"]
        report = run_analysis([src], [rule])
        assert report.findings == []


class TestGL006JournalSafety:
    def test_fires_on_mutation_after_append(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def record(journal, entry, now):
                journal.append("submit", now, entry=entry)
                entry["volume"] = 0.0
            """,
        )
        assert len(_active(report, "GL006")) == 1

    def test_fires_on_mutator_method(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def record(self, payload, now):
                self.journal.append("op", now, data=payload)
                payload.update(done=True)
            """,
        )
        assert len(_active(report, "GL006")) == 1

    def test_mutation_before_append_is_fine(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def record(journal, entry, now):
                entry["volume"] = 0.0
                journal.append("submit", now, entry=entry)
            """,
        )
        assert _active(report, "GL006") == []

    def test_rebinding_is_not_mutation(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def record(journal, entry, now):
                journal.append("submit", now, entry=entry)
                entry = {}
                return entry
            """,
        )
        assert _active(report, "GL006") == []

    def test_record_wrapper_is_tracked(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            class Service:
                def op(self, req, now):
                    self._record("op", now, rid=req.rid, req=req)
                    req.volume = 0.0
            """,
        )
        assert len(_active(report, "GL006")) == 1

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def record(journal, entry, now):
                journal.append("submit", now, entry=entry)
                entry["volume"] = 0.0  # gridlint: disable=GL006 -- entry was deep-copied by append
            """,
        )
        assert _active(report, "GL006") == []
        assert len(_suppressed(report, "GL006")) == 1


class TestGL007NoAssert:
    def test_fires_on_assert(self, tmp_path):
        report = _scan(tmp_path, "def f(x):\n    assert x is not None\n    return x\n")
        assert len(_active(report, "GL007")) == 1

    def test_allowlisted_under_tests(self, tmp_path):
        report = _scan(
            tmp_path,
            "def test_f():\n    assert 1 + 1 == 2\n",
            filename="tests/test_x.py",
        )
        assert _active(report, "GL007") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            "def f(x):\n"
            "    assert x is not None  # gridlint: disable=GL007 -- mypy narrowing only\n"
            "    return x\n",
        )
        assert _active(report, "GL007") == []
        assert len(_suppressed(report, "GL007")) == 1


class TestGL008ShardLedgerOwnership:
    def test_fires_on_foreign_owned_ledger_mutation(self, tmp_path):
        report = _scan(
            tmp_path,
            "def f(broker):\n"
            "    broker._owned_ledger.allocate(0, 0, 0.0, 1.0, 5.0)\n",
            filename="schedulers/hack.py",
        )
        assert len(_active(report, "GL008")) == 1

    def test_fires_on_hold_table_writes(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def f(broker, hold):
                broker._holds = {}
                broker._holds[hold.hold_id] = hold
                broker._holds.pop(hold.hold_id)
            """,
            filename="gateway/gateway.py",
        )
        assert len(_active(report, "GL008")) == 3

    def test_reads_and_unrelated_mutators_are_fine(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def f(broker, holds):
                n = len(broker._holds)
                holds.pop(0)
                broker.release("ingress", 0, 0.0, 1.0, 5.0)
                return n
            """,
            filename="gateway/gateway.py",
        )
        assert _active(report, "GL008") == []

    def test_owning_modules_may_mutate(self, tmp_path):
        source = (
            "class ShardBroker:\n"
            "    def book(self):\n"
            "        self._owned_ledger.allocate(0, 0, 0.0, 1.0, 5.0)\n"
            "        self._holds[0] = None\n"
        )
        for owner in ("gateway/broker.py", "gateway/twophase.py"):
            report = _scan(tmp_path / owner.replace("/", "_"), source, filename=owner)
            assert _active(report, "GL008") == []

    def test_allowlisted_under_tests(self, tmp_path):
        report = _scan(
            tmp_path,
            "def test_f(broker):\n    broker._owned_ledger.allocate(0, 0, 0.0, 1.0, 5.0)\n",
            filename="tests/test_x.py",
        )
        assert _active(report, "GL008") == []

    def test_fires_on_foreign_segment_mutators(self, tmp_path):
        # The malleable-transfer verbs mutate the owned ledger just as
        # surely as the constant-rate ones: same single-writer rule.
        report = _scan(
            tmp_path,
            """\
            def f(broker, segs):
                broker._owned_ledger.allocate_segments(0, 0, segs)
                broker._owned_ledger.release_segments(0, 0, segs)
                broker._owned_ledger.restore("ingress", 0, segs)
            """,
            filename="schedulers/hack.py",
        )
        assert len(_active(report, "GL008")) == 3

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            "def f(broker):\n"
            "    broker._owned_ledger.allocate(0, 0, 0.0, 1.0, 5.0)"
            "  # gridlint: disable=GL008 -- drill rigging\n",
        )
        assert _active(report, "GL008") == []
        assert len(_suppressed(report, "GL008")) == 1


class TestGL009TimelineInternals:
    def test_fires_on_internal_array_write(self, tmp_path):
        report = _scan(
            tmp_path,
            "def poke(timeline, bw):\n    timeline._values[2] += bw\n",
            filename="schedulers/hack.py",
        )
        assert len(_active(report, "GL009")) == 1

    def test_fires_on_internal_array_read(self, tmp_path):
        report = _scan(
            tmp_path,
            "def peek(timeline):\n    return timeline._breakpoints[-1]\n",
            filename="gateway/hack.py",
        )
        assert len(_active(report, "GL009")) == 1

    def test_fires_on_direct_backend_construction(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            from repro.core.capacity import BreakpointProfile, VectorProfile

            def build():
                return BreakpointProfile(), VectorProfile()
            """,
            filename="control/hack.py",
        )
        assert len(_active(report, "GL009")) == 2

    def test_interface_calls_are_fine(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def use(profile, t0, t1, bw):
                profile.add(t0, t1, bw)
                return profile.max_usage(t0, t1), list(profile.segments(t0, t1))
            """,
            filename="schedulers/clean.py",
        )
        assert _active(report, "GL009") == []

    def test_kernel_package_owns_its_internals(self, tmp_path):
        source = """\
        class BreakpointProfile:
            def clear(self):
                self._breakpoints = [0.0]
                self._values = [0.0]
        """
        report = _scan(tmp_path, source, filename="core/capacity/breakpoint.py")
        assert _active(report, "GL009") == []

    def test_fires_on_rate_profile_segment_access(self, tmp_path):
        source = "def peek(profile):\n    return profile._segments[0]\n"
        report = _scan(tmp_path / "a", source, filename="gateway/hack.py")
        assert len(_active(report, "GL009")) == 1
        # ...while repro.core as a whole owns the segment tuple — not just
        # the capacity sub-package.
        report = _scan(tmp_path / "b", source, filename="core/profile.py")
        assert _active(report, "GL009") == []
        report = _scan(tmp_path / "c", source, filename="core/booking.py")
        assert _active(report, "GL009") == []

    def test_capacity_arrays_stay_capacity_owned(self, tmp_path):
        # The per-attribute ownership must not widen: core modules outside
        # core/capacity/ still may not touch the backend arrays.
        source = "def peek(timeline):\n    return timeline._values\n"
        report = _scan(tmp_path, source, filename="core/ledger.py")
        assert len(_active(report, "GL009")) == 1

    def test_allowlisted_under_tests_and_benchmarks(self, tmp_path):
        source = "def f(profile):\n    return profile._values\n"
        report = _scan(tmp_path, source, filename="tests/test_backend.py")
        assert _active(report, "GL009") == []
        report = _scan(tmp_path, source, filename="benchmarks/bench_cap.py")
        assert _active(report, "GL009") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            "def dbg(tl):\n"
            "    return tl._breakpoints"
            "  # gridlint: disable=GL009 -- repr drilling\n",
            filename="obs/dump.py",
        )
        assert _active(report, "GL009") == []
        assert len(_suppressed(report, "GL009")) == 1


class TestGL010ChannelBoundary:
    def test_fires_on_direct_protocol_calls(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def f(broker, hold):
                broker.prepare("ingress", 0, 0.0, 1.0, 5.0)
                broker.commit(hold.hold_id)
                broker.abort_hold(hold.hold_id)
                broker.book_pair(0, 0, 0.0, 1.0, 5.0)
            """,
            filename="gateway/gateway.py",
        )
        assert len(_active(report, "GL010")) == 4

    def test_fires_through_containers_and_attributes(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def f(self, gateway, shard, hold):
                self._brokers[shard].commit(hold.hold_id)
                gateway.brokers[shard].prepare("egress", 1, 0.0, 1.0, 2.0)
            """,
            filename="control/orchestrate.py",
        )
        assert len(_active(report, "GL010")) == 2

    def test_channel_calls_and_non_protocol_methods_are_fine(self, tmp_path):
        report = _scan(
            tmp_path,
            """\
            def f(channel, broker, journal, now):
                channel.prepare("ingress", 0, 0.0, 1.0, 5.0, rid=1, expires=9.0, now=now)
                channel.commit(3, now=now)
                broker.release("ingress", 0, 0.0, 1.0, 5.0)
                broker.expire_holds(now)
                journal.commit()
            """,
            filename="gateway/gateway.py",
        )
        assert _active(report, "GL010") == []

    def test_protocol_internals_may_call_directly(self, tmp_path):
        source = (
            "def f(broker, hold):\n"
            "    broker.prepare('ingress', 0, 0.0, 1.0, 5.0)\n"
            "    broker.commit(hold.hold_id)\n"
        )
        for owner in ("gateway/broker.py", "gateway/twophase.py", "gateway/rpc.py"):
            report = _scan(tmp_path / owner.replace("/", "_"), source, filename=owner)
            assert _active(report, "GL010") == []

    def test_allowlisted_under_tests_and_benchmarks(self, tmp_path):
        source = "def f(broker):\n    broker.book_pair(0, 0, 0.0, 1.0, 5.0)\n"
        report = _scan(tmp_path, source, filename="tests/test_broker.py")
        assert _active(report, "GL010") == []
        report = _scan(tmp_path, source, filename="benchmarks/bench_gw.py")
        assert _active(report, "GL010") == []

    def test_suppression(self, tmp_path):
        report = _scan(
            tmp_path,
            "def f(broker, hid):\n"
            "    broker.abort_hold(hid)"
            "  # gridlint: disable=GL010 -- janitor tooling\n",
            filename="obs/janitor.py",
        )
        assert _active(report, "GL010") == []
        assert len(_suppressed(report, "GL010")) == 1


class TestGL015RouteRegistry:
    @staticmethod
    def _plant(tmp_path, *, routed: bool, suppress: bool = False, routes: bool = True):
        endpoints = tmp_path / "serve" / "api" / "v1" / "endpoints"
        endpoints.mkdir(parents=True, exist_ok=True)
        suffix = (
            "  # gridlint: disable=GL015 -- internal debug hook" if suppress else ""
        )
        (endpoints / "things.py").write_text(
            f"async def handle_orphan(ctx, request):{suffix}\n"
            "    return None\n"
        )
        if routes:
            body = (
                "from .api.v1.endpoints.things import handle_orphan\n"
                "ROUTE_TABLE = [('GET', '/v1/things', handle_orphan)]\n"
                if routed
                else "ROUTE_TABLE = []\n"
            )
            (tmp_path / "serve" / "routes.py").write_text(body)

    def test_fires_on_unrouted_handler(self, tmp_path):
        self._plant(tmp_path, routed=False)
        report = run_analysis([tmp_path], all_rules())
        findings = _active(report, "GL015")
        assert len(findings) == 1
        assert "handle_orphan" in findings[0].message

    def test_routed_handler_passes(self, tmp_path):
        self._plant(tmp_path, routed=True)
        report = run_analysis([tmp_path], all_rules())
        assert _active(report, "GL015") == []

    def test_missing_route_table_flags_every_handler(self, tmp_path):
        self._plant(tmp_path, routed=False, routes=False)
        report = run_analysis([tmp_path], all_rules())
        findings = _active(report, "GL015")
        assert len(findings) == 1
        assert "routes.py is missing" in findings[0].message

    def test_helpers_outside_api_tree_ignored(self, tmp_path):
        (tmp_path / "serve").mkdir(parents=True, exist_ok=True)
        (tmp_path / "serve" / "helpers.py").write_text(
            "async def handle_internal(x):\n    return x\n"
        )
        report = run_analysis([tmp_path], all_rules())
        assert _active(report, "GL015") == []

    def test_suppression_on_def_line(self, tmp_path):
        self._plant(tmp_path, routed=False, suppress=True)
        report = run_analysis([tmp_path], all_rules())
        assert _active(report, "GL015") == []
        assert len(_suppressed(report, "GL015")) == 1

    def test_real_route_table_is_complete(self):
        """Every handle_* coroutine in the shipped serve/api tree is routed."""
        from pathlib import Path

        src = Path(__file__).parent.parent / "src"
        rule = rules_by_id()["GL015"]
        report = run_analysis([src], [rule])
        assert report.findings == []


class TestEndToEnd:
    def test_temp_package_with_every_violation_gates(self, tmp_path, capsys):
        """CLI over a package violating every rule: exit 1, all ids reported."""
        pkg = tmp_path / "pkg"
        (pkg / "schedulers").mkdir(parents=True)
        (pkg / "schedulers" / "base.py").write_text("class Scheduler:\n    pass\n")
        (pkg / "schedulers" / "registry.py").write_text("_F = {}\n")
        (pkg / "schedulers" / "orphan.py").write_text(
            "from .base import Scheduler\n\n\nclass OrphanScheduler(Scheduler):\n    pass\n"
        )
        endpoints = pkg / "serve" / "api" / "v1" / "endpoints"
        endpoints.mkdir(parents=True)
        (endpoints / "things.py").write_text(
            "async def handle_unrouted(ctx, request):\n    return None\n"
        )
        (pkg / "serve" / "routes.py").write_text("ROUTE_TABLE = []\n")
        (pkg / "soup.py").write_text(
            textwrap.dedent(
                """\
                import random
                import time


                def stamp(ledger, entry, journal, broker, now, t_end, deadline):
                    t0 = time.time()
                    jitter = random.random()
                    same = t_end == deadline
                    ledger._ingress[0] = None
                    broker._owned_ledger.allocate(0, 0, 0.0, 1.0, 5.0)
                    broker.timeline("ingress", 0)._values[0] = 99.0
                    broker.book_pair(0, 0, 0.0, 1.0, 5.0)
                    journal.append("op", now, entry=entry)
                    entry["late"] = True
                    assert t0 >= 0
                    return t0, jitter, same
                """
            )
        )
        code = main(["--format", "json", str(tmp_path)])
        assert code == 1
        doc = __import__("json").loads(capsys.readouterr().out)
        seen = {f["rule"] for f in doc["findings"]}
        assert {
            "GL001",
            "GL002",
            "GL003",
            "GL004",
            "GL005",
            "GL006",
            "GL007",
            "GL008",
            "GL009",
            "GL010",
            "GL015",
        } <= seen

    def test_clean_package_exits_zero(self, tmp_path, capsys):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "good.py").write_text(
            "def shift(now, dt):\n    return now + dt\n"
        )
        assert main([str(tmp_path)]) == 0
