"""Tests for the steady-state TCP throughput models."""

import numpy as np
import pytest

from repro.core import ConfigurationError
from repro.fairness import (
    BIC_LIKE,
    RENO,
    ResponseFunction,
    mathis_throughput,
    pftk_throughput,
    rtt_unfairness,
)


class TestMathis:
    def test_known_value(self):
        # MSS 1460 B, RTT 100 ms, p 1e-4: 1460/0.1 * sqrt(1.5e4) B/s ≈ 1.79 MB/s
        assert mathis_throughput(1460, 0.1, 1e-4) == pytest.approx(1.788, rel=1e-3)

    def test_scales_inverse_rtt(self):
        fast = mathis_throughput(1460, 0.01, 1e-4)
        slow = mathis_throughput(1460, 0.1, 1e-4)
        assert fast / slow == pytest.approx(10.0)

    def test_scales_inverse_sqrt_loss(self):
        low = mathis_throughput(1460, 0.1, 1e-4)
        high = mathis_throughput(1460, 0.1, 1e-2)
        assert low / high == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mathis_throughput(0, 0.1, 1e-4)
        with pytest.raises(ConfigurationError):
            mathis_throughput(1460, -1, 1e-4)
        with pytest.raises(ConfigurationError):
            mathis_throughput(1460, 0.1, 0.0)
        with pytest.raises(ConfigurationError):
            mathis_throughput(1460, 0.1, 1.5)


class TestPftk:
    def test_below_mathis(self):
        # PFTK adds timeout losses: always at or below the square-root law
        for p in (1e-4, 1e-3, 1e-2):
            assert pftk_throughput(1460, 0.1, p) <= mathis_throughput(1460, 0.1, p) * 1.01

    def test_approaches_mathis_at_low_loss(self):
        p = 1e-6
        ratio = pftk_throughput(1460, 0.1, p, b=1) / mathis_throughput(1460, 0.1, p)
        assert ratio == pytest.approx(1.0, rel=0.05)

    def test_window_cap(self):
        capped = pftk_throughput(1460, 0.1, 1e-6, wmax=65535)
        assert capped == pytest.approx(65535 / 0.1 / 1e6)

    def test_monotone_in_loss(self):
        rates = [pftk_throughput(1460, 0.1, p) for p in (1e-5, 1e-4, 1e-3, 1e-2)]
        assert all(a > b for a, b in zip(rates, rates[1:]))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            pftk_throughput(1460, 0.1, 1e-4, rto=0)


class TestResponseFunctions:
    def test_reno_matches_mathis(self):
        assert RENO.throughput(1460, 0.1, 1e-4) == pytest.approx(
            mathis_throughput(1460, 0.1, 1e-4), rel=1e-9
        )

    def test_bic_less_rtt_sensitive(self):
        """The §5.4 observation: high-speed variants suffer less RTT bias."""
        rtts = np.array([0.01, 0.3])
        reno = rtt_unfairness(RENO, rtts)
        bic = rtt_unfairness(BIC_LIKE, rtts)
        # the slow flow's relative share is higher under the BIC-like law
        assert bic[1] > reno[1]

    def test_unfairness_normalised(self):
        shares = rtt_unfairness(RENO, np.array([0.02, 0.05, 0.2]))
        assert shares.max() == pytest.approx(1.0)
        assert np.all(shares > 0)

    def test_unfairness_validation(self):
        with pytest.raises(ConfigurationError):
            rtt_unfairness(RENO, np.array([0.1, -0.1]))

    def test_custom_response(self):
        flat = ResponseFunction("flat", c=1.0, rtt_exp=0.0, loss_exp=0.0)
        shares = rtt_unfairness(flat, np.array([0.01, 1.0]))
        np.testing.assert_allclose(shares, 1.0)
