"""Tests for the ASCII Gantt / occupancy renderers."""

import pytest

from repro.core import Platform, ProblemInstance, RequestSet
from repro.experiments import occupancy_strip, schedule_gantt
from repro.schedulers import GreedyFlexible, WindowFlexible
from repro.workload import paper_flexible_workload


@pytest.fixture(scope="module")
def scheduled():
    prob = paper_flexible_workload(5.0, 30, seed=3)
    result = WindowFlexible(t_step=200.0).schedule(prob)
    return prob, result


class TestGantt:
    def test_contains_all_visible_requests(self, scheduled):
        prob, result = scheduled
        text = schedule_gantt(prob, result, max_rows=30)
        for request in list(prob.requests)[:5]:
            assert f"r{request.rid}" in text

    def test_marks_accept_and_reject(self, scheduled):
        prob, result = scheduled
        text = schedule_gantt(prob, result, max_rows=30)
        if result.num_accepted:
            assert "ACC" in text and "#" in text
        if result.num_rejected:
            assert "rej" in text and "x" in text

    def test_truncation(self, scheduled):
        prob, result = scheduled
        text = schedule_gantt(prob, result, max_rows=5)
        assert "more requests not shown" in text

    def test_empty(self):
        prob = ProblemInstance(Platform.uniform(1, 1, 10.0), RequestSet())
        assert "(empty" in schedule_gantt(prob, GreedyFlexible().schedule(prob))

    def test_custom_horizon(self, scheduled):
        prob, result = scheduled
        text = schedule_gantt(prob, result, t0=0.0, t1=100.0)
        assert "0s .. 100s" in text


class TestOccupancy:
    def test_one_row_per_port(self, scheduled):
        prob, result = scheduled
        text = occupancy_strip(prob, result, side="ingress")
        rows = [line for line in text.splitlines() if line.startswith("ing") and "|" in line]
        assert len(rows) == prob.platform.num_ingress

    def test_egress_side(self, scheduled):
        prob, result = scheduled
        text = occupancy_strip(prob, result, side="egress")
        rows = [line for line in text.splitlines() if line.startswith("egr") and "|" in line]
        assert len(rows) == prob.platform.num_egress

    def test_bad_side(self, scheduled):
        prob, result = scheduled
        with pytest.raises(ValueError):
            occupancy_strip(prob, result, side="sideways")

    def test_busy_port_shaded(self):
        prob = paper_flexible_workload(0.2, 60, seed=4)
        result = GreedyFlexible().schedule(prob)
        text = occupancy_strip(prob, result)
        # some port must show non-idle shading
        body = "".join(line.split("|")[1] for line in text.splitlines() if "|" in line)
        assert any(ch != " " for ch in body)
