"""End-to-end tests for the malleable-transfer plane.

Stepwise :class:`~repro.core.profile.RateProfile` requests and the
shaped-fallback / reshape-before-displace recovery verbs, exercised at
every layer above the booking kernel: the reservation service, the
sharded gateway (including 2PC cross-shard placement and journal
replay), the chaos matrix, and the serve HTTP API.  The kernel-level
properties (decision identity, reserve/release restoration, shaping
math) live in ``tests/test_profile.py``; this module checks that the
layers *above* thread profiles through without corrupting their
constant-rate decision traces.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.control import (
    PortFault,
    RejectReason,
    ReservationService,
    run_chaos_matrix,
    run_gateway_fault_drill,
)
from repro.control.journal import Journal
from repro.core.errors import InvalidRequestError
from repro.core.platform import Platform
from repro.core.request import Request
from repro.gateway import Gateway, check_gateway
from repro.loadgen import ServiceClient
from repro.serve import ServeApp, ServeConfig
from repro.serve.clock import LogicalClock


def run(coro):
    return asyncio.run(coro)


def small_platform(cap: float = 100.0) -> Platform:
    return Platform.uniform(2, 2, cap)


def submit_hotspot(svc_or_gw, *, now: float = 20.0) -> None:
    """Book 90 MB/s over [20, 60) on the 0→1 pair (free: 10 MB/s)."""
    svc_or_gw.submit(
        ingress=0, egress=1, volume=3600.0, deadline=60.0, now=now, max_rate=90.0
    )


def submit_probe(svc_or_gw, *, now: float = 20.0):
    """A request no constant rate can serve around the hotspot.

    Volume 700 MB by deadline 70 at max_rate 40: the latest constant
    start is 52.5, inside the hotspot where only 10 MB/s is free, and
    any feasible constant rate (>= 14 MB/s) exceeds that headroom.  A
    stepwise shape fits: 10 MB/s through the hotspot, 40 MB/s after.
    """
    return svc_or_gw.submit(
        ingress=0, egress=1, volume=700.0, deadline=70.0, now=now, max_rate=40.0
    )


# ----------------------------------------------------------------------
# Reservation service
# ----------------------------------------------------------------------
class TestServiceMalleable:
    def test_explicit_profile_granted_as_given(self):
        svc = ReservationService(small_platform(), malleable=True)
        res = svc.submit(
            ingress=0,
            egress=1,
            volume=300.0,
            deadline=100.0,
            now=0.0,
            profile=[[0.0, 10.0, 20.0], [20.0, 30.0, 10.0]],
        )
        assert res.confirmed
        alloc = res.allocation
        assert alloc is not None and alloc.profile is not None
        assert alloc.profile.to_list() == [[0.0, 10.0, 20.0], [20.0, 30.0, 10.0]]
        assert alloc.sigma == 0.0 and alloc.tau == 30.0

    def test_profile_volume_mismatch_is_malformed_not_rejected(self):
        svc = ReservationService(small_platform(), malleable=True)
        with pytest.raises(InvalidRequestError):
            svc.submit(
                ingress=0,
                egress=1,
                volume=999.0,
                deadline=100.0,
                now=0.0,
                profile=[[0.0, 10.0, 20.0]],
            )

    def test_profile_longer_than_window_rejects_profile_infeasible(self):
        svc = ReservationService(small_platform(), malleable=True)
        res = svc.submit(
            ingress=0,
            egress=1,
            volume=500.0,
            deadline=30.0,
            now=0.0,
            profile=[[0.0, 50.0, 10.0]],
        )
        assert not res.confirmed
        assert res.reject_reason == RejectReason.PROFILE_INFEASIBLE

    def test_shaped_fallback_rescues_hotspot_request(self):
        rigid = ReservationService(small_platform(), malleable=False)
        submit_hotspot(rigid)
        assert not submit_probe(rigid).confirmed

        malleable = ReservationService(small_platform(), malleable=True)
        submit_hotspot(malleable)
        res = submit_probe(malleable)
        assert res.confirmed
        profile = res.allocation.profile
        assert profile is not None and len(profile.segments) >= 2
        assert profile.conserves(700.0)
        assert profile.tau <= 70.0 + 1e-9
        assert profile.peak_rate <= 40.0 + 1e-9

    def test_reshape_conserves_volume(self):
        svc = ReservationService(small_platform(), malleable=True)
        res = svc.submit(
            ingress=0, egress=1, volume=2000.0, deadline=100.0, now=0.0, max_rate=50.0
        )
        assert res.confirmed and res.allocation.bw == pytest.approx(20.0)
        assert svc.reshape(res.rid, now=10.0)
        profile = res.allocation.profile
        assert profile is not None
        assert profile.conserves(2000.0)
        assert profile.peak_rate <= 50.0 + 1e-9
        assert svc._ledger.max_overcommit() <= 1e-9

    def test_degrade_reshapes_before_displacing(self):
        svc = ReservationService(small_platform(), malleable=True)
        res = svc.submit(
            ingress=0, egress=1, volume=2000.0, deadline=100.0, now=0.0, max_rate=50.0
        )
        assert res.confirmed
        displaced = svc.degrade(
            side="ingress", port=0, amount=95.0, start=30.0, end=60.0, now=10.0
        )
        assert displaced == []
        assert svc.stats.reshaped >= 1
        assert svc.stats.displaced == 0
        assert res.displaced_at is None
        profile = res.allocation.profile
        assert profile is not None and profile.conserves(2000.0)
        # The reshaped tail respects the degraded headroom (5 MB/s free).
        for t0, t1, rate in profile.segments:
            if t0 < 60.0 and t1 > 30.0 and t0 >= 10.0:
                assert rate <= 5.0 + 1e-9
        assert svc._ledger.max_overcommit() <= 1e-9

    def test_degrade_without_malleable_displaces(self):
        svc = ReservationService(small_platform(), malleable=False)
        res = svc.submit(
            ingress=0, egress=1, volume=2000.0, deadline=100.0, now=0.0, max_rate=50.0
        )
        displaced = svc.degrade(
            side="ingress", port=0, amount=95.0, start=30.0, end=60.0, now=10.0
        )
        assert [r.rid for r in displaced] == [res.rid]
        assert svc.stats.reshaped == 0

    def test_journal_replay_converges_with_profiles(self):
        journal = Journal()
        svc = ReservationService(small_platform(), malleable=True, journal=journal)
        submit_hotspot(svc)
        shaped = submit_probe(svc)
        assert shaped.confirmed
        explicit = svc.submit(
            ingress=1,
            egress=0,
            volume=150.0,
            deadline=100.0,
            now=25.0,
            profile=[[30.0, 40.0, 10.0], [50.0, 60.0, 5.0]],
        )
        assert explicit.confirmed
        svc.degrade(side="egress", port=1, amount=95.0, start=62.0, end=68.0, now=30.0)
        svc.reshape(explicit.rid, now=35.0)
        replayed = ReservationService.replay(journal)
        assert replayed.snapshot() == svc.snapshot()

    def test_constant_journal_stays_profile_free(self):
        journal = Journal()
        svc = ReservationService(small_platform(), malleable=False, journal=journal)
        res = svc.submit(ingress=0, egress=1, volume=100.0, deadline=50.0, now=0.0)
        assert res.confirmed
        assert "malleable" not in journal.header
        assert all("profile" not in entry.args for entry in journal.entries)


# ----------------------------------------------------------------------
# Sharded gateway
# ----------------------------------------------------------------------
class TestGatewayMalleable:
    def test_explicit_profile_cross_shard_two_phase(self):
        journal = Journal()
        gw = Gateway(
            Platform.uniform(4, 4, 100.0),
            num_shards=2,
            batch_size=1,
            malleable=True,
            journal=journal,
        )
        ticket = gw.submit(
            ingress=0,
            egress=3,
            volume=300.0,
            deadline=100.0,
            now=0.0,
            profile=[[0.0, 10.0, 20.0], [20.0, 30.0, 10.0]],
        )
        assert ticket.decided and ticket.reservation.confirmed
        alloc = ticket.reservation.allocation
        assert alloc.profile is not None
        assert alloc.profile.to_list() == [[0.0, 10.0, 20.0], [20.0, 30.0, 10.0]]
        assert gw.stats.cross_shard >= 1
        report = check_gateway(gw, journal=journal, now=gw.now)
        assert report.ok, report.violations

    def test_profile_volume_mismatch_raises_before_rid_burn(self):
        gw = Gateway(Platform.uniform(4, 4, 100.0), num_shards=2, batch_size=1)
        with pytest.raises(InvalidRequestError):
            gw.submit(
                ingress=0,
                egress=1,
                volume=5.0,
                deadline=100.0,
                now=0.0,
                profile=[[0.0, 10.0, 20.0]],
            )
        ticket = gw.submit(ingress=0, egress=1, volume=10.0, deadline=100.0, now=0.0)
        assert ticket.rid == 0  # the failed submit consumed nothing

    def test_shaped_fallback_matches_service_semantics(self):
        rigid = Gateway(small_platform(), num_shards=1, batch_size=1, malleable=False)
        submit_hotspot(rigid)
        assert not submit_probe(rigid).reservation.confirmed

        gw = Gateway(small_platform(), num_shards=1, batch_size=1, malleable=True)
        submit_hotspot(gw)
        ticket = submit_probe(gw)
        assert ticket.reservation.confirmed
        profile = ticket.reservation.allocation.profile
        assert profile is not None and len(profile.segments) >= 2
        assert profile.conserves(700.0)

    def test_degrade_reshapes_and_replay_converges(self):
        journal = Journal()
        gw = Gateway(
            small_platform(),
            num_shards=1,
            batch_size=1,
            malleable=True,
            journal=journal,
        )
        ticket = gw.submit(
            ingress=0, egress=1, volume=2000.0, deadline=100.0, now=0.0, max_rate=50.0
        )
        assert ticket.reservation.confirmed
        displaced = gw.degrade(
            side="ingress", port=0, amount=95.0, start=30.0, end=60.0, now=10.0
        )
        assert displaced == []
        assert gw.stats.reshaped >= 1 and gw.stats.displaced == 0
        report = check_gateway(gw, journal=journal, now=gw.now)
        assert report.ok, report.violations

    def test_constant_gateway_journal_stays_profile_free(self):
        journal = Journal()
        gw = Gateway(small_platform(), num_shards=1, batch_size=1, journal=journal)
        gw.submit(ingress=0, egress=1, volume=100.0, deadline=50.0, now=0.0)
        assert "malleable" not in journal.header
        assert all("profile" not in entry.args for entry in journal.entries)


# ----------------------------------------------------------------------
# Chaos matrix (satellite: reshape never overcommits under chaos)
# ----------------------------------------------------------------------
def chaotic_workload(seed, n=24, ports=8, horizon=400.0):
    rng = random.Random(seed)
    requests = []
    for rid in range(n):
        t0 = rng.uniform(0.0, horizon)
        duration = rng.uniform(60.0, 200.0)
        rate = rng.uniform(10.0, 40.0)
        volume = rng.uniform(0.2, 0.8) * rate * duration
        requests.append(
            Request(
                rid=rid,
                ingress=rng.randrange(ports),
                egress=rng.randrange(ports),
                volume=volume,
                t_start=t0,
                t_end=t0 + duration,
                max_rate=rate,
            )
        )
    return requests


def planned_faults(seed):
    rng = random.Random(seed ^ 0x5EED)
    return [
        PortFault(
            side=rng.choice(("ingress", "egress")),
            port=rng.randrange(8),
            amount=900.0,
            start=rng.uniform(50.0, 150.0),
            end=rng.uniform(200.0, 350.0),
        )
        for _ in range(3)
    ]


class TestChaosReshape:
    def test_drill_with_faults_stays_invariant_clean(self):
        report = run_gateway_fault_drill(
            Platform.uniform(8, 8, 1000.0),
            chaotic_workload(3, n=40, horizon=300.0),
            num_shards=2,
            batch_size=2,
            faults=planned_faults(3),
            malleable=True,
            journal=Journal(),
            seed=3,
        )
        gw = report.gateway
        audit = check_gateway(gw, journal=gw.journal, now=gw.now)
        assert audit.ok, audit.violations

    def test_matrix_reshape_never_overcommits(self):
        report = run_chaos_matrix(
            Platform.uniform(8, 8, 1000.0),
            lambda seed: chaotic_workload(seed, n=20),
            seeds=[7, 11],
            scenarios=("clean", "lossy"),
            num_shards=2,
            batch_size=2,
            malleable=True,
            make_faults=planned_faults,
            horizon=600.0,
        )
        assert report.ok, report.failures if hasattr(report, "failures") else report
        assert all("reshaped" in cell and "displaced" in cell for cell in report.cells)


# ----------------------------------------------------------------------
# Serve HTTP API
# ----------------------------------------------------------------------
def make_app(**overrides) -> ServeApp:
    settings = dict(
        platform=Platform.uniform(2, 2, 100.0),
        num_shards=1,
        batch_size=1,
        slo_rules=(),
        malleable=True,
    )
    settings.update(overrides)
    return ServeApp(ServeConfig(**settings), clock=LogicalClock())


async def serving(app: ServeApp):
    host, port = await app.start()
    client = ServiceClient(host, port)
    await client.connect()
    return client


class TestServeProfile:
    def test_profile_submit_and_status_echo(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                resp = await client.request(
                    "POST",
                    "/v1/reservations",
                    payload={
                        "ingress": 0,
                        "egress": 1,
                        "volume": 300.0,
                        "deadline": 100.0,
                        "at": 0.0,
                        "profile": [[0.0, 10.0, 20.0], [20.0, 30.0, 10.0]],
                    },
                )
                assert resp.status == 201
                decision = resp.json()
                assert decision["outcome"] == "accepted"
                assert decision["allocation"]["profile"] == [
                    [0.0, 10.0, 20.0],
                    [20.0, 30.0, 10.0],
                ]
                rid = decision["rid"]
                status = await client.request("GET", f"/v1/reservations/{rid}")
                assert status.status == 200
                assert status.json()["allocation"]["profile"] == [
                    [0.0, 10.0, 20.0],
                    [20.0, 30.0, 10.0],
                ]
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_malformed_profile_is_400(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                for bad in ([[10.0, 0.0, 5.0]], [["a", 1.0, 2.0]], []):
                    resp = await client.request(
                        "POST",
                        "/v1/reservations",
                        payload={
                            "ingress": 0,
                            "egress": 1,
                            "volume": 50.0,
                            "deadline": 100.0,
                            "at": 0.0,
                            "profile": bad,
                        },
                    )
                    assert resp.status == 400
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_profile_volume_mismatch_is_400(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                resp = await client.request(
                    "POST",
                    "/v1/reservations",
                    payload={
                        "ingress": 0,
                        "egress": 1,
                        "volume": 999.0,
                        "deadline": 100.0,
                        "at": 0.0,
                        "profile": [[0.0, 10.0, 20.0]],
                    },
                )
                assert resp.status == 400
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_constant_submit_has_no_profile_key(self):
        async def main():
            app = make_app(malleable=False)
            client = await serving(app)
            try:
                resp = await client.request(
                    "POST",
                    "/v1/reservations",
                    payload={
                        "ingress": 0,
                        "egress": 1,
                        "volume": 50.0,
                        "deadline": 100.0,
                        "at": 0.0,
                    },
                )
                assert resp.status == 201
                assert "profile" not in resp.json()["allocation"]
            finally:
                await client.close()
                await app.drain()

        run(main())
