"""Tests for causal request tracing (repro.obs.causal).

The acceptance contract: a traced gateway run records every pipeline hop
(submit → prepare → commit → decision, plus chaos faults and backlog
re-admissions) under derived trace ids, and ``grid-obs explain <rid>``
reconstructs one request's complete causal timeline byte-identically
across repeated seeded runs.
"""

import json
import random

import pytest

from repro.control.journal import Journal
from repro.core.platform import Platform
from repro.core.request import Request
from repro.gateway import ChaosPolicy, Gateway
from repro.obs import (
    FlightRecorder,
    RunTelemetry,
    Telemetry,
    TraceContext,
    child_of,
    explain_request,
)
from repro.obs.cli import main
from repro.schedulers.retry import BackoffSchedule


def platform(n=4, cap=1000.0):
    return Platform.uniform(n, n, cap)


def workload(seed, n=20, ports=4, horizon=300.0):
    rng = random.Random(seed)
    requests = []
    for rid in range(n):
        t0 = rng.uniform(0.0, horizon)
        duration = rng.uniform(60.0, 200.0)
        rate = rng.uniform(10.0, 40.0)
        requests.append(
            Request(
                rid=rid,
                ingress=rng.randrange(ports),
                egress=rng.randrange(ports),
                volume=rng.uniform(0.2, 0.8) * rate * duration,
                t_start=t0,
                t_end=t0 + duration,
                max_rate=rate,
            )
        )
    return sorted(requests, key=lambda r: r.t_start)


def traced_run(seed=11, *, chaos=None, backlog_limit=0, journal=None):
    """One seeded gateway run with tracing enabled; returns (gw, artifact)."""
    telemetry = Telemetry()
    gw = Gateway(
        platform(),
        num_shards=2,
        batch_size=2,
        hold_ttl=120.0,
        chaos=chaos,
        backoff=BackoffSchedule(base=1.0, max_attempts=4),
        rpc_deadline=60.0,
        backlog_limit=backlog_limit,
        journal=journal,
        telemetry=telemetry,
    )
    for request in workload(seed):
        gw.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=request.volume,
            deadline=request.t_end,
            now=request.t_start,
            max_rate=request.max_rate,
        )
    gw.drain(500.0)
    artifact = RunTelemetry("causal-test", meta={"seed": seed})
    artifact.capture("run", telemetry)
    return gw, artifact


class TestTraceContext:
    def test_root_is_a_pure_function_of_the_rid(self):
        assert TraceContext.root(7) == TraceContext.root(7)
        ctx = TraceContext.root(7)
        assert ctx.trace_id == "req-7" and ctx.span_id == "req-7"
        assert ctx.parent_id is None

    def test_child_extends_the_span_path(self):
        child = TraceContext.root(7).child("prepare:ingress")
        assert child.trace_id == "req-7"
        assert child.span_id == "req-7/prepare:ingress"
        assert child.parent_id == "req-7"
        grand = child.child("retry")
        assert grand.span_id == "req-7/prepare:ingress/retry"
        assert grand.parent_id == "req-7/prepare:ingress"

    def test_fields_omit_absent_parent(self):
        assert TraceContext.root(1).fields() == {"trace": "req-1", "span": "req-1"}
        assert "parent" in TraceContext.root(1).child("x").fields()

    def test_child_of_propagates_none(self):
        assert child_of(None, "x") is None
        assert child_of(TraceContext.root(2), "x").span_id == "req-2/x"


class TestTracedPipeline:
    def test_two_phase_hops_carry_the_trace(self):
        gw, artifact = traced_run()
        capture = next(iter(artifact.captures()))
        spans = [s for s in capture["spans"] if s.get("cat") == "rpc"]
        assert spans, "no rpc hops traced"
        cross = [r for r in gw.reservations() if r.confirmed]
        assert cross
        names = {s["name"] for s in spans}
        assert "rpc.prepare" in names and "rpc.commit" in names
        for span in spans:
            args = span["args"]
            assert args["trace"].startswith("req-")
            assert args["span"].startswith(args["trace"])

    def test_every_decision_event_carries_its_trace(self):
        _, artifact = traced_run()
        capture = next(iter(artifact.captures()))
        submits = [e for e in capture["events"] if e["name"] == "gateway.submit"]
        assert submits
        for event in submits:
            fields = event["fields"]
            assert fields["trace"] == f"req-{fields['rid']}"

    def test_chaos_faults_are_annotated_on_the_timeline(self):
        gw, artifact = traced_run(chaos=ChaosPolicy.lossy(seed=5), backlog_limit=4)
        assert gw.stats.chaos_drops + gw.stats.chaos_duplicates > 0
        capture = next(iter(artifact.captures()))
        chaos_spans = [s for s in capture["spans"] if s.get("cat") == "chaos"]
        assert chaos_spans, "no chaos faults annotated"
        kinds = {s["name"] for s in chaos_spans}
        assert kinds <= {
            "chaos.drop",
            "chaos.duplicate",
            "chaos.delay",
            "chaos.partition",
            "chaos.crash",
        }
        for span in chaos_spans:
            assert "op" in span["args"] and "trace" in span["args"]

    def test_disabled_telemetry_records_nothing(self):
        gw = Gateway(platform(), num_shards=2)
        for request in workload(3, n=6):
            gw.submit(
                ingress=request.ingress,
                egress=request.egress,
                volume=request.volume,
                deadline=request.t_end,
                now=request.t_start,
                max_rate=request.max_rate,
            )
        gw.drain(500.0)
        assert gw._trace_roots == {}

    def test_recorder_alone_enables_tracing(self):
        recorder = FlightRecorder()
        gw = Gateway(platform(), num_shards=2, recorder=recorder)
        request = workload(3, n=1)[0]
        gw.submit(
            ingress=request.ingress,
            egress=request.egress,
            volume=request.volume,
            deadline=request.t_end,
            now=request.t_start,
            max_rate=request.max_rate,
        )
        gw.drain(500.0)
        assert "gateway" in recorder.components()
        kinds = {e.kind for e in recorder.entries("gateway")}
        assert "gateway.trace.submit" in kinds


class TestExplainRequest:
    def test_reconstructs_the_full_story(self):
        journal = Journal()
        gw, artifact = traced_run(journal=journal)
        stories = {
            r.rid: explain_request(artifact, r.rid, journal=journal)
            for r in gw.reservations()
            if r.confirmed
        }
        assert stories and all(s is not None for s in stories.values())
        for rid, story in stories.items():
            assert f"causal timeline for rid {rid}" in story
            assert "gw_submit" in story
            assert "gateway.trace.decision" in story
        # Cross-shard admissions show both two-phase hops; local ones the
        # direct pair booking.  Every confirmed story has its protocol leg.
        assert any("rpc.prepare" in s and "rpc.commit" in s for s in stories.values())
        assert all(
            ("rpc.prepare" in s and "rpc.commit" in s) or "rpc.book_pair" in s
            for s in stories.values()
        )

    def test_includes_injected_faults(self):
        gw, artifact = traced_run(chaos=ChaosPolicy.lossy(seed=5), backlog_limit=4)
        chaos_rids = set()
        capture = next(iter(artifact.captures()))
        for span in capture["spans"]:
            if span.get("cat") == "chaos":
                chaos_rids.add(int(span["args"]["trace"].split("-")[1].split("/")[0]))
        assert chaos_rids
        rid = min(chaos_rids)
        story = explain_request(artifact, rid)
        assert story is not None and "chaos." in story

    def test_follows_readmission_lineage(self):
        gw, artifact = traced_run(
            chaos=ChaosPolicy.with_partition(1, 0.0, 150.0, seed=0), backlog_limit=8
        )
        assert gw.stats.readmitted > 0
        readmitted = next(r for r in gw.reservations() if r.origin is not None)
        story = explain_request(artifact, readmitted.origin)
        assert story is not None
        # The re-admission's fresh rid rides the origin's trace.
        assert f"readmit:{readmitted.rid}" in story

    def test_unknown_rid_returns_none(self):
        _, artifact = traced_run()
        assert explain_request(artifact, 10_000) is None

    def test_byte_identical_across_identical_seeded_runs(self):
        _, first = traced_run(chaos=ChaosPolicy.lossy(seed=9), backlog_limit=4)
        _, second = traced_run(chaos=ChaosPolicy.lossy(seed=9), backlog_limit=4)
        assert first.to_json() == second.to_json()
        for rid in range(20):
            assert explain_request(first, rid) == explain_request(second, rid)

    def test_accepts_the_json_dict_form(self):
        _, artifact = traced_run()
        as_dict = json.loads(artifact.to_json())
        assert explain_request(as_dict, 0) == explain_request(artifact, 0)


class TestExplainCli:
    def _write_run(self, tmp_path):
        journal = Journal()
        gw, artifact = traced_run(journal=journal)
        art_path = tmp_path / "run.json"
        jr_path = tmp_path / "run.journal.jsonl"
        artifact.save(art_path)
        journal.save(jr_path)
        rid = next(
            r.rid
            for r in gw.reservations()
            if r.confirmed and "rpc.prepare" in explain_request(artifact, r.rid)
        )
        return art_path, jr_path, rid

    def test_explain_prints_the_timeline(self, tmp_path, capsys):
        art, jr, rid = self._write_run(tmp_path)
        code = main(["explain", str(rid), str(art), "--journal", str(jr)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"causal timeline for rid {rid}" in out
        assert "journal" in out and "rpc.prepare" in out

    def test_unknown_rid_exits_one(self, tmp_path, capsys):
        art, _, _ = self._write_run(tmp_path)
        assert main(["explain", "10000", str(art)]) == 1
        assert "no record" in capsys.readouterr().err

    def test_missing_artifact_exits_two(self, capsys):
        assert main(["explain", "1", "no/such/file.json"]) == 2
