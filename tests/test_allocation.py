"""Tests for Allocation, ScheduleResult and verify_schedule."""

import pytest

from repro.core import (
    Allocation,
    Platform,
    Request,
    RequestSet,
    ScheduleResult,
    ScheduleViolation,
    verify_schedule,
)


@pytest.fixture
def platform():
    return Platform.uniform(2, 2, 100.0)


@pytest.fixture
def requests():
    return RequestSet(
        [
            Request(0, 0, 1, volume=500.0, t_start=0.0, t_end=50.0, max_rate=50.0),
            Request(1, 1, 0, volume=200.0, t_start=10.0, t_end=30.0, max_rate=20.0),
        ]
    )


class TestAllocation:
    def test_for_request_default_start(self, requests):
        alloc = Allocation.for_request(requests[0], bw=25.0)
        assert alloc.sigma == 0.0
        assert alloc.tau == pytest.approx(20.0)
        assert alloc.transferred == pytest.approx(500.0)

    def test_for_request_late_start(self, requests):
        alloc = Allocation.for_request(requests[0], bw=50.0, sigma=40.0)
        assert alloc.tau == pytest.approx(50.0)

    def test_duration(self):
        alloc = Allocation(0, 0, 1, bw=10.0, sigma=5.0, tau=15.0)
        assert alloc.duration == pytest.approx(10.0)

    def test_roundtrip(self):
        alloc = Allocation(3, 1, 0, bw=7.0, sigma=1.0, tau=9.0)
        assert Allocation.from_dict(alloc.to_dict()) == alloc


class TestScheduleResult:
    def test_accept_reject_counts(self, requests):
        result = ScheduleResult()
        result.accept(Allocation.for_request(requests[0], 10.0))
        result.reject(1)
        assert result.num_accepted == 1
        assert result.num_rejected == 1
        assert result.accept_rate == pytest.approx(0.5)

    def test_double_decision_rejected(self, requests):
        result = ScheduleResult()
        result.accept(Allocation.for_request(requests[0], 10.0))
        with pytest.raises(ScheduleViolation):
            result.accept(Allocation.for_request(requests[0], 10.0))
        with pytest.raises(ScheduleViolation):
            result.reject(0)

    def test_revoke(self, requests):
        result = ScheduleResult()
        result.accept(Allocation.for_request(requests[0], 10.0))
        result.revoke(0)
        assert result.num_accepted == 0
        assert 0 in result.rejected

    def test_empty_accept_rate(self):
        assert ScheduleResult().accept_rate == 0.0

    def test_allocations_sorted_by_sigma(self, requests):
        result = ScheduleResult()
        result.accept(Allocation.for_request(requests[1], 10.0))
        result.accept(Allocation.for_request(requests[0], 10.0))
        sigmas = [a.sigma for a in result.allocations()]
        assert sigmas == sorted(sigmas)

    def test_roundtrip(self, requests):
        result = ScheduleResult(scheduler="x", meta={"k": 1})
        result.accept(Allocation.for_request(requests[0], 10.0))
        result.reject(1)
        clone = ScheduleResult.from_dict(result.to_dict())
        assert clone.scheduler == "x"
        assert clone.accepted.keys() == result.accepted.keys()
        assert clone.rejected == result.rejected


class TestVerifySchedule:
    def _ok_result(self, requests):
        result = ScheduleResult()
        result.accept(Allocation.for_request(requests[0], 10.0))
        result.accept(Allocation.for_request(requests[1], 10.0))
        return result

    def test_valid_passes(self, platform, requests):
        verify_schedule(platform, requests, self._ok_result(requests))

    def test_undecided_request_caught(self, platform, requests):
        result = ScheduleResult()
        result.accept(Allocation.for_request(requests[0], 10.0))
        with pytest.raises(ScheduleViolation, match="undecided"):
            verify_schedule(platform, requests, result)
        verify_schedule(platform, requests, result, require_all_decided=False)

    def test_unknown_rid_caught(self, platform, requests):
        result = self._ok_result(requests)
        result.reject(99)
        with pytest.raises(ScheduleViolation, match="unknown"):
            verify_schedule(platform, requests, result)

    def test_wrong_endpoints_caught(self, platform, requests):
        result = ScheduleResult()
        result.accept(Allocation(0, 1, 1, bw=10.0, sigma=0.0, tau=50.0))
        result.reject(1)
        with pytest.raises(ScheduleViolation, match="endpoints"):
            verify_schedule(platform, requests, result)

    def test_volume_mismatch_caught(self, platform, requests):
        result = ScheduleResult()
        result.accept(Allocation(0, 0, 1, bw=10.0, sigma=0.0, tau=10.0))  # only 100 MB
        result.reject(1)
        with pytest.raises(ScheduleViolation, match="carries"):
            verify_schedule(platform, requests, result)

    def test_rate_above_max_caught(self, platform, requests):
        result = ScheduleResult()
        result.accept(Allocation(0, 0, 1, bw=100.0, sigma=0.0, tau=5.0))  # max_rate 50
        result.reject(1)
        with pytest.raises(ScheduleViolation, match="MaxRate"):
            verify_schedule(platform, requests, result)

    def test_deadline_violation_caught(self, platform, requests):
        result = ScheduleResult()
        result.accept(Allocation(0, 0, 1, bw=10.0, sigma=20.0, tau=70.0))  # deadline 50
        result.reject(1)
        with pytest.raises(ScheduleViolation, match="deadline"):
            verify_schedule(platform, requests, result)
        # relaxed mode allows it
        verify_schedule(platform, requests, result, enforce_window=False)

    def test_early_start_caught(self, platform, requests):
        result = ScheduleResult()
        result.accept(Allocation(1, 1, 0, bw=20.0, sigma=0.0, tau=10.0))  # t_start 10
        result.reject(0)
        with pytest.raises(ScheduleViolation, match="before window"):
            verify_schedule(platform, requests, result)

    def test_capacity_violation_caught(self, platform):
        requests = RequestSet(
            [
                Request(i, 0, 1, volume=600.0, t_start=0.0, t_end=10.0, max_rate=60.0)
                for i in range(3)
            ]
        )
        result = ScheduleResult()
        for r in requests:
            result.accept(Allocation.for_request(r, 60.0))  # 180 > 100 capacity
        with pytest.raises(ScheduleViolation, match="capacity"):
            verify_schedule(platform, requests, result)
