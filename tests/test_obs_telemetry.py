"""Tests for the telemetry handle, isolation, and the run artifact."""

import json

import pytest

from repro.core import ConfigurationError
from repro.obs import (
    NullTelemetry,
    RunTelemetry,
    SchemaError,
    Telemetry,
    get_telemetry,
    set_telemetry,
    use_telemetry,
    validate_artifact,
)


class TestHandle:
    def test_default_handle_is_null(self):
        assert isinstance(get_telemetry(), NullTelemetry)
        assert not get_telemetry().enabled

    def test_null_discards_everything(self):
        null = NullTelemetry()
        null.emit("x", 0.0, a=1)
        assert null.events == []
        assert null.is_empty()

    def test_use_telemetry_restores_previous(self):
        before = get_telemetry()
        tel = Telemetry()
        with use_telemetry(tel):
            assert get_telemetry() is tel
        assert get_telemetry() is before

    def test_use_telemetry_restores_on_exception(self):
        before = get_telemetry()
        with pytest.raises(RuntimeError):
            with use_telemetry(Telemetry()):
                raise RuntimeError("boom")
        assert get_telemetry() is before

    def test_set_telemetry_returns_previous(self):
        before = get_telemetry()
        tel = Telemetry()
        try:
            assert set_telemetry(tel) is before
            assert get_telemetry() is tel
        finally:
            set_telemetry(before)

    def test_nested_handles_shadow(self):
        outer, inner = Telemetry(), Telemetry()
        with use_telemetry(outer):
            get_telemetry().emit("outer", 0.0)
            with use_telemetry(inner):
                get_telemetry().emit("inner", 1.0)
        assert [e.name for e in outer.events] == ["outer"]
        assert [e.name for e in inner.events] == ["inner"]


class TestEvents:
    def test_emit_records_fields(self):
        tel = Telemetry()
        tel.emit("service.submit", 5.0, rid=3, outcome="accepted")
        event = tel.events[0]
        assert (event.time, event.name) == (5.0, "service.submit")
        assert event.fields == {"rid": 3, "outcome": "accepted"}

    def test_event_cap_drops_fifo(self):
        tel = Telemetry(max_events=3)
        for k in range(7):
            tel.emit(f"e{k}", float(k))
        assert [e.name for e in tel.events] == ["e4", "e5", "e6"]
        assert tel.events_dropped == 4

    def test_cap_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            Telemetry(max_events=0)

    def test_snapshot_reports_drops(self):
        tel = Telemetry(max_events=1, max_spans=1)
        tel.emit("a", 0.0)
        tel.emit("b", 1.0)
        tel.tracer.instant("x", 0.0)
        tel.tracer.instant("y", 1.0)
        snap = tel.snapshot()
        assert snap["dropped"] == {"events": 1, "spans": 1}


class TestRunTelemetry:
    def _artifact(self):
        tel = Telemetry()
        tel.metrics.counter("service_submits_total").inc(outcome="accepted")
        tel.tracer.complete("reservation", 0.0, 10.0, cat="service")
        tel.emit("service.submit", 0.0, rid=0, outcome="accepted")
        artifact = RunTelemetry("unit", meta={"seed": 1})
        artifact.capture("run", tel, results={"accept_rate": 1.0})
        return artifact

    def test_roundtrip_through_disk(self, tmp_path):
        artifact = self._artifact()
        path = tmp_path / "run.json"
        artifact.save(path)
        loaded = RunTelemetry.load(path)
        assert loaded.to_json() == artifact.to_json()
        assert loaded.labels() == ["run"]

    def test_json_is_byte_stable(self):
        assert self._artifact().to_json() == self._artifact().to_json()

    def test_validates_against_schema(self):
        validate_artifact(json.loads(self._artifact().to_json()))

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(SchemaError):
            RunTelemetry.from_dict({"format": "not-telemetry"})

    def test_registry_rebuild(self):
        artifact = self._artifact()
        registry = artifact.registry("run")
        assert registry.counter("service_submits_total").value(outcome="accepted") == 1.0

    def test_chrome_trace_merges_captures(self):
        tel_a, tel_b = Telemetry(), Telemetry()
        tel_a.tracer.complete("a", 0.0, 1.0)
        tel_b.tracer.complete("b", 1.0, 2.0)
        artifact = RunTelemetry("multi")
        artifact.capture("first", tel_a)
        artifact.capture("second", tel_b)
        doc = artifact.chrome_trace()
        pids = {e["name"]: e["pid"] for e in doc["traceEvents"]}
        assert pids == {"a": 0, "b": 1}
