"""Tests for the metrics registry (repro.obs.metrics)."""

import json

import pytest

from repro.core import ConfigurationError
from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_inc_and_value(self):
        c = Counter("requests_total")
        c.inc()
        c.inc(2.0)
        assert c.value() == pytest.approx(3.0)

    def test_labels_address_distinct_samples(self):
        c = Counter("requests_total")
        c.inc(outcome="accepted")
        c.inc(outcome="accepted")
        c.inc(outcome="rejected")
        assert c.value(outcome="accepted") == pytest.approx(2.0)
        assert c.value(outcome="rejected") == pytest.approx(1.0)
        assert c.total() == pytest.approx(3.0)

    def test_label_order_is_irrelevant(self):
        c = Counter("x")
        c.inc(port=3, side="ingress")
        c.inc(side="ingress", port=3)
        assert c.value(port=3, side="ingress") == pytest.approx(2.0)

    def test_counters_cannot_decrease(self):
        c = Counter("x")
        with pytest.raises(ConfigurationError):
            c.inc(-1.0)

    def test_unknown_label_set_reads_zero(self):
        c = Counter("x")
        assert c.value(port=99) == 0.0


class TestGauge:
    def test_set_and_negative_inc(self):
        g = Gauge("depth")
        g.set(5.0)
        g.inc(-2.0)
        assert g.value() == pytest.approx(3.0)

    def test_set_max_tracks_peaks(self):
        g = Gauge("peak")
        g.set_max(0.4, port=0)
        g.set_max(0.9, port=0)
        g.set_max(0.5, port=0)
        assert g.value(port=0) == pytest.approx(0.9)


class TestHistogram:
    def test_observe_count_sum(self):
        h = Histogram("latency", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(55.5)

    def test_bucket_assignment(self):
        h = Histogram("latency", buckets=(1.0, 10.0))
        h.observe(1.0)  # on the bound: goes to the first bucket (le semantics)
        h.observe(2.0)
        h.observe(100.0)  # +inf bucket
        data = h.to_dict()["samples"][0]
        assert data["counts"] == [1, 1, 1]

    def test_exposition_is_cumulative(self):
        h = Histogram("latency", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        text = "\n".join(h.expose())
        assert 'latency_bucket{le="1"} 1' in text
        assert 'latency_bucket{le="10"} 2' in text
        assert 'latency_bucket{le="+Inf"} 3' in text
        assert "latency_count 3" in text

    def test_rejects_bad_buckets(self):
        with pytest.raises(ConfigurationError):
            Histogram("x", buckets=(2.0, 1.0))
        with pytest.raises(ConfigurationError):
            Histogram("x", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_mismatch_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(ConfigurationError):
            reg.gauge("a")

    def test_prometheus_text_sorted_and_labeled(self):
        reg = MetricsRegistry()
        reg.counter("zeta", "last").inc()
        reg.gauge("alpha", "first").set(2.5, side="ingress", port=1)
        text = reg.to_prometheus_text()
        assert text.index("alpha") < text.index("zeta")
        assert 'alpha{port="1",side="ingress"} 2.5' in text
        assert "# HELP alpha first" in text
        assert "# TYPE zeta counter" in text

    def test_json_roundtrip(self):
        reg = MetricsRegistry()
        reg.counter("c", "help c").inc(3.0, outcome="accepted")
        reg.gauge("g").set(1.5, port=2)
        h = reg.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5, kind="x")
        h.observe(5.0, kind="x")
        rebuilt = MetricsRegistry.from_dict(json.loads(reg.to_json()))
        assert rebuilt.to_json() == reg.to_json()
        assert rebuilt.counter("c").value(outcome="accepted") == pytest.approx(3.0)
        assert rebuilt.histogram("h", buckets=(1.0, 2.0)).count(kind="x") == 2

    def test_export_is_deterministic(self):
        def build():
            reg = MetricsRegistry()
            # Insertion order intentionally scrambled vs name/label order.
            reg.counter("b").inc(port=2)
            reg.counter("a").inc(side="egress")
            reg.counter("b").inc(port=1)
            return reg

        assert build().to_json() == build().to_json()
        assert build().to_prometheus_text() == build().to_prometheus_text()
