"""Drain → restart: the service survives SIGTERM without losing a decision.

The property, over several seeds: run a seeded workload through a
journalled service, drain it with submissions still parked on the
frontier, rebuild a successor from the journal, and the successor is
snapshot-equal to the drained instance — and both match an uninterrupted
in-process gateway fed the identical waves.  A subprocess test covers
the real signal path (``grid-serve`` + SIGTERM over a socket).
"""

import asyncio
import json
import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.platform import Platform
from repro.gateway import Gateway
from repro.gateway.invariants import check_gateway
from repro.loadgen import ServiceClient, SubmissionPlan
from repro.serve import ServeApp, ServeConfig
from repro.serve.clock import LogicalClock

REPO = Path(__file__).parent.parent

PLATFORM = Platform.uniform(4, 4, 100.0)


def make_config(journal_path, **overrides):
    settings = dict(
        platform=PLATFORM,
        num_shards=2,
        batch_size=4,
        slo_rules=(),
        journal_path=journal_path,
        max_wave=1024,
        max_delay_s=60.0,  # nothing flushes on a timer; drain decides
    )
    settings.update(overrides)
    return ServeConfig(**settings)


def wave_fields(plan: SubmissionPlan, start: int, count: int):
    """``count`` consecutive plan bodies as (gateway fields, at) pairs."""
    out = []
    for k in range(start, start + count):
        entry = plan.body(k)
        at = entry.pop("at")
        entry["client"] = "anonymous"
        out.append((entry, at))
    return out


async def drained_run(seed: int, journal_path):
    """Serve a seeded workload, drain mid-flight, return the app + decisions."""
    plan = SubmissionPlan(PLATFORM, 64, seed=seed, mean_interarrival=0.5)
    app = ServeApp(make_config(journal_path), clock=LogicalClock())
    host, port = await app.start()
    client = ServiceClient(host, port)
    await client.connect()
    decisions = []

    # Phase 1: two deterministic waves over HTTP (batch endpoint keeps
    # submission order fixed regardless of socket scheduling).
    for start in (0, 16):
        bodies = [plan.body(k) for k in range(start, start + 16)]
        resp = await client.request(
            "POST", "/v1/reservations/batch", payload={"submissions": bodies}
        )
        assert resp.status == 200
        decisions.extend(resp.json()["decisions"])
    await client.close()

    # Phase 2: park submissions on the frontier and drain *before* any
    # flush — the in-flight wave must be decided by the drain itself.
    parked = [
        asyncio.ensure_future(app.frontier.submit(fields, at=at))
        for fields, at in wave_fields(plan, 32, 8)
    ]
    for _ in range(3):
        await asyncio.sleep(0)  # let every submit park
    assert len(app.frontier) == 8
    await app.drain()
    tickets = await asyncio.gather(*parked)
    assert all(t.decided for t in tickets)
    decisions.extend(
        {"rid": t.rid, "outcome": "accepted" if t.reservation.confirmed else "rejected"}
        for t in tickets
    )
    return app, decisions


def uninterrupted_reference(seed: int) -> Gateway:
    """The same waves through a bare in-process gateway, no service, no drain
    mid-flight — the decision-equivalence baseline."""
    plan = SubmissionPlan(PLATFORM, 64, seed=seed, mean_interarrival=0.5)
    gateway = Gateway(PLATFORM, num_shards=2, batch_size=4)
    for start, count in ((0, 16), (16, 16), (32, 8)):
        pairs = wave_fields(plan, start, count)
        now = max(at for _, at in pairs)
        gateway.submit_many([fields for fields, _ in pairs], now=now)
    gateway.drain(max(at for _, at in wave_fields(plan, 32, 8)))
    return gateway


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_drain_restart_is_snapshot_equal_and_decision_equivalent(seed, tmp_path):
    journal_path = tmp_path / f"serve-{seed}.journal.jsonl"
    app, decisions = asyncio.run(drained_run(seed, journal_path))
    assert len(decisions) == 40
    drained_snapshot = app.gateway.snapshot()

    # The uninterrupted gateway decides every submission identically.
    reference = uninterrupted_reference(seed)
    for decision in decisions:
        ticket = reference.get(decision["rid"])
        expected = "accepted" if ticket.reservation.confirmed else "rejected"
        assert decision["outcome"] in (expected, "accepted", "rejected")
        assert decision["outcome"] == expected, (
            f"seed {seed} rid {decision['rid']}: served {decision['outcome']},"
            f" in-process {expected}"
        )

    # A successor built over the same journal replays to the same state.
    successor = ServeApp(make_config(journal_path), clock=LogicalClock())
    assert successor.snapshot() == drained_snapshot
    report = check_gateway(
        successor.gateway, journal=successor.journal, expect_quiesced=True
    )
    assert report.ok, report.violations

    # And it keeps serving: fresh rids continue past the replayed range.
    next_ticket = successor.gateway.submit(
        ingress=0,
        egress=1,
        volume=1.0,
        deadline=successor.gateway.now + 500.0,
        now=successor.gateway.now,
    )
    assert next_ticket.rid == drained_snapshot["next_rid"]


def test_restarted_app_resumes_clock_past_replayed_time(tmp_path):
    journal_path = tmp_path / "resume.journal.jsonl"
    app, _ = asyncio.run(drained_run(3, journal_path))
    successor = ServeApp(make_config(journal_path))  # default wall clock
    assert successor.clock.now() >= app.gateway.now
    assert successor.gateway.now == app.gateway.now


def test_grid_serve_sigterm_drains_and_journal_replays(tmp_path):
    """The real signal path: a grid-serve process, SIGTERM, then replay."""
    journal_path = tmp_path / "proc.journal.jsonl"
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.serve.cli",
            "--port",
            "0",
            "--ports",
            "4",
            "--shards",
            "2",
            "--journal",
            str(journal_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"http://([\d.]+):(\d+)", line)
        assert match, f"no listening line: {line!r}"
        host, port = match.group(1), int(match.group(2))

        async def drive():
            client = ServiceClient(host, port)
            await client.connect()
            accepted = []
            for i in range(6):
                resp = await client.request(
                    "POST",
                    "/v1/reservations",
                    payload={
                        "ingress": i % 4,
                        "egress": (i + 1) % 4,
                        "volume": 5.0,
                        "deadline": 100_000.0,
                    },
                )
                assert resp.status in (200, 201)
                accepted.append(resp.json()["rid"])
            await client.close()
            return accepted

        rids = asyncio.run(drive())
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=20) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    # The journal the process left behind replays into a quiesced gateway
    # holding every decision it served.
    from repro.control.journal import Journal

    gateway = Gateway.replay(Journal.load(journal_path))
    for rid in rids:
        assert gateway.get(rid).decided
    report = check_gateway(gateway, expect_quiesced=True)
    assert report.ok, report.violations


def test_journal_file_is_json_lines(tmp_path):
    journal_path = tmp_path / "fmt.journal.jsonl"
    asyncio.run(drained_run(1, journal_path))
    lines = journal_path.read_text().strip().splitlines()
    assert len(lines) > 1
    ops = [json.loads(line) for line in lines]
    assert any(op.get("op") == "gw_drain" for op in ops if isinstance(op, dict))
