"""Tests for the optimisation objectives (§2.2–2.3)."""

import pytest

from repro.core import (
    Allocation,
    Platform,
    Request,
    RequestSet,
    ScheduleResult,
    accept_rate,
    guaranteed_count,
    guaranteed_rate,
    resource_utilization,
    resource_utilization_time_averaged,
    time_averaged_utilization,
)


@pytest.fixture
def platform():
    return Platform.uniform(2, 2, 100.0)


def _requests():
    return RequestSet(
        [
            Request(0, 0, 0, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=40.0),
            Request(1, 0, 1, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=40.0),
            Request(2, 1, 0, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=40.0),
        ]
    )


def _result(requests, bws):
    result = ScheduleResult()
    for r, bw in zip(requests, bws):
        if bw is None:
            result.reject(r.rid)
        else:
            result.accept(Allocation.for_request(r, bw))
    return result


class TestAcceptRate:
    def test_basic(self):
        requests = _requests()
        result = _result(requests, [10.0, 10.0, None])
        assert accept_rate(result) == pytest.approx(2 / 3)


class TestResourceUtil:
    def test_scaled_denominator_excludes_idle_ports(self, platform):
        requests = _requests()
        # demand: ingress0 = 20 (r0 + r1), ingress1 = 10; egress0 = 20, egress1 = 10
        # all below capacity -> denominator = 0.5 * (30 + 30) = 30
        result = _result(requests, [10.0, 10.0, 10.0])
        assert resource_utilization(platform, requests, result) == pytest.approx(1.0)

    def test_caps_at_capacity(self):
        small = Platform.uniform(2, 2, 15.0)
        requests = _requests()
        # ingress0 demand 20 scaled to 15; rest 10
        # denom = 0.5 * ((15 + 10) + (15 + 10)) = 25
        result = _result(requests, [10.0, None, None])
        assert resource_utilization(small, requests, result) == pytest.approx(10.0 / 25.0)

    def test_zero_when_nothing_accepted(self, platform):
        requests = _requests()
        result = _result(requests, [None, None, None])
        assert resource_utilization(platform, requests, result) == 0.0

    def test_empty_requests(self, platform):
        assert resource_utilization(platform, RequestSet(), ScheduleResult()) == 0.0


class TestTimeAveragedVariants:
    def test_resource_utilization_time_averaged_bounds(self, platform):
        requests = _requests()
        result = _result(requests, [10.0, 10.0, 10.0])
        value = resource_utilization_time_averaged(platform, requests, result)
        # everything accepted at MinRate over full horizon -> utilisation 1
        assert value == pytest.approx(1.0)

    def test_partial_acceptance_scales(self, platform):
        requests = _requests()
        full = resource_utilization_time_averaged(platform, requests, _result(requests, [10.0, 10.0, 10.0]))
        partial = resource_utilization_time_averaged(platform, requests, _result(requests, [10.0, None, None]))
        assert partial == pytest.approx(full / 3)

    def test_time_averaged_utilization(self, platform):
        requests = _requests()
        result = _result(requests, [10.0, 10.0, 10.0])
        # carried = 3000 MB over horizon 100 s, half capacity 200 MB/s
        assert time_averaged_utilization(platform, result) == pytest.approx(3000.0 / (200.0 * 100.0))

    def test_time_averaged_empty(self, platform):
        assert time_averaged_utilization(platform, ScheduleResult()) == 0.0


class TestGuaranteed:
    def test_counts_threshold(self):
        requests = _requests()  # MinRate 10, MaxRate 40
        result = _result(requests, [40.0, 20.0, 10.0])
        # f = 0.5 -> threshold max(20, 10) = 20
        assert guaranteed_count(requests, result, f=0.5) == 2
        # f = 1.0 -> threshold 40
        assert guaranteed_count(requests, result, f=1.0) == 1
        # f -> 0: threshold MinRate = 10, all three qualify
        assert guaranteed_count(requests, result, f=1e-12) == 3

    def test_rate_normalised_by_total(self):
        requests = _requests()
        result = _result(requests, [40.0, None, None])
        assert guaranteed_rate(requests, result, f=1.0) == pytest.approx(1 / 3)

    def test_empty(self):
        assert guaranteed_rate(RequestSet(), ScheduleResult(), 0.5) == 0.0
