"""Tests for the experiment statistics helpers."""

import numpy as np
import pytest

from repro.experiments.stats import (
    bootstrap_confidence_interval,
    compare_schedulers,
    t_confidence_interval,
)
from repro.schedulers import FractionOfMaxPolicy, GreedyFlexible, WindowFlexible
from repro.workload import paper_flexible_workload


class TestTCI:
    def test_contains_mean(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        lo, hi = t_confidence_interval(samples)
        assert lo < 3.0 < hi

    def test_narrower_with_more_samples(self):
        rng = np.random.default_rng(0)
        small = t_confidence_interval(rng.normal(0, 1, 5))
        large = t_confidence_interval(rng.normal(0, 1, 500))
        assert (large[1] - large[0]) < (small[1] - small[0])

    def test_single_sample_degenerate(self):
        assert t_confidence_interval([7.0]) == (7.0, 7.0)

    def test_constant_samples(self):
        assert t_confidence_interval([2.0, 2.0, 2.0]) == (2.0, 2.0)

    def test_coverage(self):
        """~95% of intervals cover the true mean."""
        rng = np.random.default_rng(1)
        covered = 0
        trials = 400
        for _ in range(trials):
            lo, hi = t_confidence_interval(rng.normal(10.0, 2.0, 10))
            covered += lo <= 10.0 <= hi
        assert covered / trials == pytest.approx(0.95, abs=0.04)

    def test_validation(self):
        with pytest.raises(ValueError):
            t_confidence_interval([])
        with pytest.raises(ValueError):
            t_confidence_interval([1.0, 2.0], confidence=1.5)


class TestBootstrap:
    def test_contains_mean(self):
        rng = np.random.default_rng(2)
        samples = rng.exponential(5.0, 100)
        lo, hi = bootstrap_confidence_interval(samples, rng=np.random.default_rng(3))
        assert lo < samples.mean() < hi

    def test_custom_statistic(self):
        samples = np.arange(1.0, 101.0)
        lo, hi = bootstrap_confidence_interval(
            samples, statistic=np.median, rng=np.random.default_rng(4)
        )
        assert lo < 50.5 < hi

    def test_empty(self):
        with pytest.raises(ValueError):
            bootstrap_confidence_interval([])


class TestCompareSchedulers:
    def _make_problem(self, seed):
        return paper_flexible_workload(0.3, 250, seed=seed)

    def test_detects_real_difference(self):
        """WINDOW vs GREEDY under heavy load is a significant difference."""
        comparison = compare_schedulers(
            self._make_problem,
            WindowFlexible(t_step=400.0, policy=FractionOfMaxPolicy(1.0)),
            GreedyFlexible(policy=FractionOfMaxPolicy(1.0)),
            seeds=range(6),
        )
        assert comparison.mean_diff > 0
        assert comparison.significant
        assert comparison.winner == comparison.name_a
        assert comparison.diff_ci[0] > 0

    def test_identical_schedulers_not_significant(self):
        comparison = compare_schedulers(
            self._make_problem,
            GreedyFlexible(),
            GreedyFlexible(),
            seeds=range(4),
        )
        assert comparison.mean_diff == 0.0
        assert not comparison.significant
        assert comparison.winner is None

    def test_custom_metric(self):
        comparison = compare_schedulers(
            self._make_problem,
            GreedyFlexible(),
            GreedyFlexible(policy=FractionOfMaxPolicy(1.0)),
            seeds=range(3),
            metric=lambda problem, result: float(result.num_accepted),
        )
        assert comparison.n == 3

    def test_needs_two_seeds(self):
        with pytest.raises(ValueError):
            compare_schedulers(
                self._make_problem, GreedyFlexible(), GreedyFlexible(), seeds=[0]
            )
