"""Tests for the Platform model."""

import numpy as np
import pytest

from repro.core import ConfigurationError, Platform


class TestConstruction:
    def test_basic(self):
        p = Platform([100.0, 200.0], [50.0, 50.0, 50.0])
        assert p.num_ingress == 2
        assert p.num_egress == 3

    def test_uniform(self):
        p = Platform.uniform(4, 6, 125.0)
        assert p.num_ingress == 4
        assert p.num_egress == 6
        assert np.all(p.ingress_capacity == 125.0)

    def test_paper_platform(self):
        p = Platform.paper_platform()
        assert p.num_ingress == p.num_egress == 10
        assert p.bin(0) == 1000.0
        assert p.half_capacity == 10_000.0

    def test_grid5000(self):
        p = Platform.grid5000()
        assert p.num_ingress == 8
        assert p.total_capacity > 0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            Platform([], [100.0])

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            Platform([100.0, 0.0], [100.0])
        with pytest.raises(ConfigurationError):
            Platform([100.0], [-5.0])

    def test_capacities_immutable(self):
        p = Platform.uniform(2, 2, 10.0)
        with pytest.raises(ValueError):
            p.ingress_capacity[0] = 99.0


class TestAccessors:
    def test_bin_bout(self):
        p = Platform([10.0, 20.0], [30.0, 40.0])
        assert p.bin(1) == 20.0
        assert p.bout(0) == 30.0

    def test_bottleneck(self):
        p = Platform([10.0, 20.0], [30.0, 5.0])
        assert p.bottleneck(1, 0) == 20.0
        assert p.bottleneck(1, 1) == 5.0

    def test_totals(self):
        p = Platform([10.0, 20.0], [30.0, 40.0])
        assert p.total_capacity == 100.0
        assert p.half_capacity == 50.0


class TestEqualitySerialisation:
    def test_roundtrip(self):
        p = Platform([10.0, 20.0], [30.0])
        assert Platform.from_dict(p.to_dict()) == p

    def test_equality(self):
        assert Platform.uniform(2, 2, 5.0) == Platform.uniform(2, 2, 5.0)
        assert Platform.uniform(2, 2, 5.0) != Platform.uniform(2, 2, 6.0)
        assert Platform.uniform(2, 2, 5.0) != "not a platform"

    def test_hash_consistent(self):
        a = Platform.uniform(3, 3, 7.0)
        b = Platform.uniform(3, 3, 7.0)
        assert hash(a) == hash(b)
