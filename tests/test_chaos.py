"""Chaos-plane tests: lossy channels, idempotent delivery, degraded-mode
admission, crash-mid-2PC, the invariant checker and the chaos matrix.

The through-line: with chaos off the channel layer is invisible
(byte-identical decisions); with chaos on, every run — however hostile —
must end invariant-clean and replay-convergent.
"""

import math
import random

import pytest

from repro.control import (
    CHAOS_SCENARIOS,
    chaos_scenario,
    run_chaos_matrix,
    run_gateway_fault_drill,
)
from repro.control.journal import Journal
from repro.core.booking import RejectReason
from repro.core.errors import ConfigurationError, InternalInvariantError
from repro.core.platform import Platform
from repro.core.request import Request
from repro.gateway import (
    Channel,
    ChannelTimeout,
    ChaosPolicy,
    EdgeChaos,
    Gateway,
    Partition,
    ShardBroker,
    ShardMap,
    check_gateway,
    hold_expired,
)
from repro.obs import Telemetry
from repro.schedulers.retry import BackoffSchedule


def platform(n=4, cap=1000.0):
    return Platform.uniform(n, n, cap)


def make_broker(shards=2, shard=0, n=4):
    return ShardBroker(shard, ShardMap(platform(n), shards))


def chaotic_workload(seed, n=30, ports=8, horizon=400.0):
    """A seeded mixed local/cross-shard workload for drills."""
    rng = random.Random(seed)
    requests = []
    for rid in range(n):
        t0 = rng.uniform(0.0, horizon)
        duration = rng.uniform(60.0, 200.0)
        rate = rng.uniform(10.0, 40.0)
        volume = rng.uniform(0.2, 0.8) * rate * duration
        requests.append(
            Request(
                rid=rid,
                ingress=rng.randrange(ports),
                egress=rng.randrange(ports),
                volume=volume,
                t_start=t0,
                t_end=t0 + duration,
                max_rate=rate,
            )
        )
    return requests


class TestChaosPolicy:
    def test_probability_and_cost_validation(self):
        with pytest.raises(ConfigurationError):
            EdgeChaos(drop=1.5)
        with pytest.raises(ConfigurationError):
            EdgeChaos(duplicate=-0.1)
        with pytest.raises(ConfigurationError):
            EdgeChaos(latency=-1.0)
        with pytest.raises(ConfigurationError):
            Partition(shard=0, start=10.0, end=10.0)
        with pytest.raises(ConfigurationError):
            ChaosPolicy(timeout_cost=-1.0)

    def test_edge_override_and_partition_lookup(self):
        special = EdgeChaos(drop=0.5)
        policy = ChaosPolicy(
            default=EdgeChaos(drop=0.1),
            edges=((2, special),),
            partitions=(Partition(shard=1, start=10.0, end=20.0),),
        )
        assert policy.edge_for(2) is special
        assert policy.edge_for(0).drop == pytest.approx(0.1)
        assert policy.is_partitioned(1, 10.0)
        assert not policy.is_partitioned(1, 20.0)  # [start, end)
        assert not policy.is_partitioned(0, 15.0)

    def test_unhealed_partition_covers_forever(self):
        p = Partition(shard=0, start=5.0)
        assert p.covers(1e12)
        assert p.to_dict()["end"] is None
        assert Partition.from_dict(p.to_dict()).end == math.inf

    def test_dict_roundtrip(self):
        policy = ChaosPolicy(
            seed=7,
            default=EdgeChaos(drop=0.2, delay=0.1, delay_cost=3.0),
            edges=((1, EdgeChaos(duplicate=0.4)),),
            partitions=(Partition(shard=0, start=1.0, end=9.0),),
            timeout_cost=12.0,
        )
        assert ChaosPolicy.from_dict(policy.to_dict()) == policy

    def test_canned_scenarios(self):
        assert ChaosPolicy.lossy().default.drop > 0.0
        assert ChaosPolicy.duplicate_storm().default.duplicate > 0.0
        assert ChaosPolicy.slow().default.latency > 0.0
        assert ChaosPolicy.with_partition(1, 10.0, 20.0).partitions
        crashy = ChaosPolicy.crash_mid_2pc()
        assert crashy.default.crash_after_prepare > 0.0

    def test_scenario_registry(self):
        for name in CHAOS_SCENARIOS:
            chaos, crashes, sweep = chaos_scenario(name, seed=1, num_shards=4, horizon=600.0)
            if name == "clean":
                assert chaos is None and crashes == () and sweep is None
            else:
                assert chaos is not None
        with pytest.raises(ConfigurationError):
            chaos_scenario("nonsense")


class TestChannel:
    def hold_args(self):
        return dict(rid=1, expires=100.0, now=0.0)

    def test_chaos_off_is_pure_passthrough(self):
        broker = make_broker()
        channel = Channel(broker)
        hold = channel.prepare("ingress", 0, 0.0, 10.0, 100.0, **self.hold_args())
        assert hold is not None
        channel.commit(hold.hold_id, now=0.0)
        assert channel.stats.calls == 0  # nothing even counted
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(100.0)

    def test_deterministic_across_rebuilds(self):
        def run():
            broker = make_broker()
            channel = Channel(broker, policy=ChaosPolicy.lossy(seed=5, drop=0.4))
            outcomes = []
            for rid in range(30):
                try:
                    hold = channel.prepare(
                        "ingress", 0, float(rid), float(rid) + 1.0, 1.0,
                        rid=rid, expires=1e9, now=float(rid),
                    )
                    outcomes.append(hold.hold_id if hold else None)
                except ChannelTimeout:
                    outcomes.append("lost")
            return outcomes, vars(channel.stats)

        assert run() == run()

    def test_drop_can_execute_then_lose_reply(self):
        broker = make_broker()
        channel = Channel(broker, policy=ChaosPolicy(seed=3, default=EdgeChaos(drop=1.0)))
        lost = 0
        for rid in range(20):
            with pytest.raises(ChannelTimeout):
                channel.prepare(
                    "ingress", 0, float(rid), float(rid) + 1.0, 1.0,
                    rid=rid, expires=1e9, now=0.0,
                )
            lost += 1
        assert lost == channel.stats.drops == 20
        # Roughly half the drops executed before losing the reply: the
        # broker holds capacity the caller never heard about.
        executed = len(broker.holds())
        assert 0 < executed < 20

    def test_duplicate_delivery_invokes_twice_but_books_once(self):
        broker = make_broker()
        channel = Channel(
            broker, policy=ChaosPolicy(seed=0, default=EdgeChaos(duplicate=1.0))
        )
        hold = channel.prepare("ingress", 0, 0.0, 10.0, 50.0, **self.hold_args())
        assert hold is not None
        assert channel.stats.duplicates == 1
        assert len(broker.holds()) == 1  # the replay was absorbed
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(50.0)

    def test_partition_times_out_then_heals(self):
        broker = make_broker()
        channel = Channel(broker, policy=ChaosPolicy.with_partition(0, 10.0, 20.0))
        assert channel.serviceable(5.0)
        assert not channel.serviceable(10.0)
        with pytest.raises(ChannelTimeout) as err:
            channel.prepare("ingress", 0, 0.0, 1.0, 1.0, rid=1, expires=99.0, now=15.0)
        assert err.value.cost == pytest.approx(30.0)
        assert channel.stats.partitioned == 1
        assert channel.prepare(
            "ingress", 0, 0.0, 1.0, 1.0, rid=1, expires=99.0, now=20.0
        ) is not None

    def test_release_is_reliable_through_partition_and_drop(self):
        broker = make_broker()
        broker.book_pair(0, 0, 0.0, 10.0, 100.0, key=1)
        channel = Channel(
            broker,
            policy=ChaosPolicy(
                seed=0,
                default=EdgeChaos(drop=1.0),
                partitions=(Partition(shard=0, start=0.0),),
            ),
        )
        channel.release("ingress", 0, 0.0, 10.0, 100.0, now=5.0)
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(0.0)

    def test_crash_after_prepare_wipes_the_broker(self):
        broker = make_broker()
        channel = Channel(
            broker,
            policy=ChaosPolicy(seed=0, default=EdgeChaos(crash_after_prepare=1.0)),
        )
        hold = channel.prepare("ingress", 0, 0.0, 10.0, 50.0, **self.hold_args())
        assert hold is not None and broker.crashed
        assert broker.holds() == []  # wiped with the process
        assert channel.stats.crashes == 1

    def test_termination_probes_read_the_durable_log(self):
        broker = make_broker()
        channel = Channel(broker)
        hold = channel.prepare("ingress", 0, 0.0, 10.0, 50.0, **self.hold_args())
        assert not channel.resolved_committed(hold.hold_id)
        channel.commit(hold.hold_id, now=0.0)
        assert channel.resolved_committed(hold.hold_id)
        assert not channel.booking_landed(9)
        channel.book_pair(0, 0, 20.0, 30.0, 10.0, rid=9, now=0.0)
        assert channel.booking_landed(9)


class TestBrokerIdempotency:
    def test_duplicate_prepare_returns_same_hold(self):
        broker = make_broker()
        first = broker.prepare("ingress", 0, 0.0, 10.0, 100.0, rid=1, expires=99.0, key=(1, "ingress"))
        replay = broker.prepare("ingress", 0, 0.0, 10.0, 100.0, rid=1, expires=99.0, key=(1, "ingress"))
        assert replay is first
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(100.0)

    def test_refusal_is_replayed_too(self):
        broker = make_broker()
        key = (2, "ingress")
        assert broker.prepare("ingress", 0, 0.0, 1.0, 5000.0, rid=2, expires=99.0, key=key) is None
        # Even though capacity is free now, the recorded refusal answers.
        assert broker.prepare("ingress", 0, 0.0, 1.0, 1.0, rid=2, expires=99.0, key=key) is None

    def test_replayed_prepare_after_abort_answers_none(self):
        broker = make_broker()
        key = (3, "ingress")
        hold = broker.prepare("ingress", 0, 0.0, 10.0, 10.0, rid=3, expires=99.0, key=key)
        broker.abort_hold(hold.hold_id)
        assert broker.prepare("ingress", 0, 0.0, 10.0, 10.0, rid=3, expires=99.0, key=key) is None
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(0.0)

    def test_duplicate_commit_and_abort_are_noops(self):
        broker = make_broker()
        hold = broker.prepare("ingress", 0, 0.0, 10.0, 10.0, rid=4, expires=99.0, key=(4, "i"))
        broker.commit(hold.hold_id)
        broker.commit(hold.hold_id)  # replayed: no error, no double booking
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(10.0)
        other = broker.prepare("ingress", 0, 0.0, 10.0, 5.0, rid=5, expires=99.0, key=(5, "i"))
        assert broker.abort_hold(other.hold_id) is True
        assert broker.abort_hold(other.hold_id) is False  # replay: harmless
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(10.0)

    def test_commit_of_unknown_hold_still_raises(self):
        broker = make_broker()
        with pytest.raises(ConfigurationError):
            broker.commit(12345)

    def test_duplicate_book_pair_books_once(self):
        broker = make_broker()
        broker.book_pair(0, 0, 0.0, 10.0, 40.0, key=7)
        broker.book_pair(0, 0, 0.0, 10.0, 40.0, key=7)
        assert broker.usage_at("ingress", 0, 5.0) == pytest.approx(40.0)
        assert broker.was_booked(7) and not broker.was_booked(8)

    def test_booked_and_resolution_records_survive_crash(self):
        broker = make_broker()
        broker.book_pair(0, 0, 0.0, 10.0, 40.0, key=7)
        hold = broker.prepare("ingress", 0, 20.0, 30.0, 10.0, rid=9, expires=99.0, key=(9, "i"))
        broker.commit(hold.hold_id)
        broker.crash()
        assert broker.was_booked(7)
        assert broker.resolution_of(hold.hold_id) == "committed"


class TestDuplicateDeliveryProperty:
    """At-least-once delivery property: any schedule of duplicated /
    retried protocol messages lands on the exactly-once ledger state."""

    def script(self):
        """One protocol history: (op, args) tuples an adversary may replay."""
        return [
            ("prepare", ("ingress", 0, 0.0, 10.0, 100.0, 1)),
            ("prepare", ("egress", 0, 0.0, 10.0, 100.0, 1)),
            ("commit", (1, "ingress")),
            ("commit", (1, "egress")),
            ("prepare", ("ingress", 2, 5.0, 15.0, 50.0, 2)),
            ("abort", (2, "ingress")),
            ("book", (2, 2, 0.0, 8.0, 30.0, 3)),
            ("prepare", ("ingress", 0, 0.0, 10.0, 950.0, 4)),  # refused: full
        ]

    def apply(self, broker, op, args, holds):
        if op == "prepare":
            side, port, t0, t1, bw, rid = args
            hold = broker.prepare(side, port, t0, t1, bw, rid=rid, expires=1e9, key=(rid, side))
            if hold is not None:
                holds[(rid, side)] = hold.hold_id
        elif op == "commit":
            rid, side = args
            broker.commit(holds[(rid, side)])
        elif op == "abort":
            rid, side = args
            broker.abort_hold(holds[(rid, side)])
        elif op == "book":
            ingress, egress, t0, t1, bw, rid = args
            broker.book_pair(ingress, egress, t0, t1, bw, key=rid)

    @pytest.mark.parametrize("seed", range(8))
    def test_chaotic_schedules_converge(self, seed):
        exact = ShardBroker(0, ShardMap(platform(4), 1))
        holds = {}
        for op, args in self.script():
            self.apply(exact, op, args, holds)

        chaotic = ShardBroker(0, ShardMap(platform(4), 1))
        rng = random.Random(seed)
        holds2 = {}
        for op, args in self.script():
            # Deliver 1-3 times; later duplicates model stale retries.
            for _ in range(rng.randint(1, 3)):
                self.apply(chaotic, op, args, holds2)
        snap_exact = exact.snapshot()
        snap_chaotic = chaotic.snapshot()
        # Idempotency keys absorb the replays: identical slices, holds,
        # bookings and resolutions (work counters legitimately differ).
        for key in ("slices", "holds", "resolved", "booked"):
            assert snap_chaotic[key] == snap_exact[key]


class TestHoldTtlBoundary:
    def test_hold_expired_is_tolerance_aware(self):
        assert hold_expired(50.0, 50.0)          # deadline == now expires
        assert hold_expired(50.0, 50.0 + 1e-12)
        assert hold_expired(50.0 + 1e-12, 50.0)  # within float noise: gone
        assert not hold_expired(50.0 + 1.0, 50.0)

    def test_broker_sweep_expires_exact_deadline(self):
        broker = make_broker()
        broker.prepare("ingress", 0, 0.0, 10.0, 10.0, rid=1, expires=50.0, key=(1, "i"))
        assert broker.expire_holds(49.9) == []
        expired = broker.expire_holds(50.0)
        assert len(expired) == 1
        assert broker.holds() == [] and broker.usage_at("ingress", 0, 5.0) == pytest.approx(0.0)

    def test_gateway_sweep_matches_broker_boundary(self):
        # A stranded hold whose TTL lands exactly on the next clock tick
        # must be reclaimed by that tick's sweep, not one tick later.
        gw = Gateway(platform(), num_shards=2, hold_ttl=50.0)
        broker = gw.brokers[0]
        broker.prepare("ingress", 0, 0.0, 10.0, 10.0, rid=900, expires=50.0, key=(900, "i"))
        gw.drain(50.0)
        assert broker.holds() == []
        assert gw.stats.holds_expired == 1


class TestDegradedModeAdmission:
    def cross_shard_submit(self, gw, rid_hint=0, now=0.0, deadline=300.0):
        return gw.submit(ingress=0, egress=1, volume=100.0, deadline=deadline, now=now)

    def test_partition_rejects_shard_unreachable(self):
        gw = Gateway(platform(), num_shards=2, chaos=ChaosPolicy.with_partition(1, 0.0, 100.0))
        ticket = self.cross_shard_submit(gw)
        assert not ticket.reservation.confirmed
        assert ticket.reservation.reject_reason == RejectReason.SHARD_UNREACHABLE
        assert gw.stats.shard_unreachable == 1
        assert gw.stats.backlogged == 0  # no backlog configured

    def test_backlog_readmits_after_heal(self):
        gw = Gateway(
            platform(),
            num_shards=2,
            chaos=ChaosPolicy.with_partition(1, 0.0, 100.0),
            backlog_limit=4,
        )
        ticket = self.cross_shard_submit(gw, deadline=500.0)
        assert ticket.reservation.reject_reason == RejectReason.SHARD_UNREACHABLE
        assert gw.stats.backlogged == 1
        gw.drain(50.0)  # still partitioned: parked, not retried into a wall
        assert gw.stats.readmitted == 0
        gw.drain(120.0)  # healed: the parked request re-admits
        assert gw.stats.readmitted == 1
        readmitted = [r for r in gw.reservations() if r.origin == ticket.rid]
        assert len(readmitted) == 1 and readmitted[0].confirmed
        report = check_gateway(gw, now=gw.now)
        assert report.ok, report.violations

    def test_backlog_capped_and_deadline_pruned(self):
        gw = Gateway(
            platform(),
            num_shards=2,
            chaos=ChaosPolicy.with_partition(1, 0.0, 1e9),  # never heals
            backlog_limit=2,
        )
        for k in range(4):
            gw.submit(ingress=0, egress=1, volume=50.0, deadline=40.0, now=0.0)
        assert gw.stats.backlogged == 2  # cap respected
        assert len(gw.snapshot()["backlog"]) == 2
        gw.drain(200.0)  # deadlines long gone: pruned, nothing readmitted
        assert gw.snapshot()["backlog"] == []
        assert gw.stats.readmitted == 0

    def test_broker_restart_triggers_readmission(self):
        gw = Gateway(platform(), num_shards=2, backlog_limit=4)
        gw.crash_broker(1, now=0.0)
        ticket = self.cross_shard_submit(gw, deadline=500.0)
        assert ticket.reservation.reject_reason == RejectReason.BROKER_UNAVAILABLE
        assert gw.stats.backlogged == 1
        gw.restart_broker(1, now=10.0)
        assert gw.stats.readmitted == 1
        report = check_gateway(gw, now=gw.now)
        assert report.ok, report.violations

    def test_lossy_mesh_still_admits_with_retries(self):
        gw = Gateway(
            platform(),
            num_shards=2,
            chaos=ChaosPolicy.lossy(seed=9, drop=0.3),
            backoff=BackoffSchedule(base=1.0, multiplier=1.5, max_attempts=6),
            rpc_deadline=200.0,
            backlog_limit=8,
        )
        accepted = 0
        for k in range(20):
            t = gw.submit(
                ingress=k % 4, egress=(k + 1) % 4, volume=50.0,
                deadline=float(500 + k), now=float(k),
            )
            accepted += bool(t.reservation.confirmed)
        gw.drain(600.0)
        assert accepted >= 15  # the retry budget absorbs most of the loss
        assert gw.stats.chaos_wait_total > 0.0
        report = check_gateway(gw, now=gw.now)
        assert report.ok, report.violations


class TestCrashMidTwoPhase:
    """Satellite: a broker crash at *every* point between prepare and
    commit leaves the ledgers invariant-clean and the journal replayable."""

    CRASH_POINTS = [
        ("after-ingress-prepare", ((0, EdgeChaos(crash_after_prepare=1.0)),)),
        ("after-egress-prepare", ((1, EdgeChaos(crash_after_prepare=1.0)),)),
        ("after-ingress-commit", ((0, EdgeChaos(crash_after_commit=1.0)),)),
        ("after-egress-commit", ((1, EdgeChaos(crash_after_commit=1.0)),)),
    ]

    @pytest.mark.parametrize("label,edges", CRASH_POINTS, ids=[c[0] for c in CRASH_POINTS])
    def test_every_crash_point_is_safe(self, label, edges):
        journal = Journal()
        gw = Gateway(
            platform(),
            num_shards=2,
            chaos=ChaosPolicy(seed=0, edges=edges),
            hold_ttl=60.0,
            journal=journal,
        )
        ticket = gw.submit(ingress=0, egress=1, volume=100.0, deadline=300.0, now=0.0)
        crashed = [b.shard_id for b in gw.brokers if b.crashed]
        assert crashed, "the scripted crash must have fired"
        if "commit" in label:
            # Crash *after* commit: the booking is durable, admission won.
            assert ticket.reservation.confirmed
        else:
            # Crash after prepare: the transaction must have aborted.
            assert not ticket.reservation.confirmed
        for shard in crashed:
            gw.restart_broker(shard, now=1.0)
        gw.drain(100.0)  # one full TTL: any stranded hold expires
        report = check_gateway(gw, journal=journal, now=gw.now, expect_quiesced=True)
        assert report.ok, report.violations

    def test_compensation_undoes_partial_commit(self):
        # The egress broker dies right after acknowledging its prepare;
        # the ingress commit then lands before the egress commit finds
        # the dead broker — that committed half must be released by a
        # compensation record, not stranded.
        gw = Gateway(
            platform(),
            num_shards=2,
            chaos=ChaosPolicy(seed=0, edges=((1, EdgeChaos(crash_after_prepare=1.0)),)),
        )
        ticket = gw.submit(ingress=0, egress=1, volume=100.0, deadline=300.0, now=0.0)
        assert not ticket.reservation.confirmed
        assert gw.stats.compensations == 1
        ins, outs = gw.port_usage(50.0)
        assert ins[0] == pytest.approx(0.0) and outs[1] == pytest.approx(0.0)

    def test_ambiguous_commit_resolves_via_termination_probe(self):
        # A lossy edge drops enough acknowledgements that some operation
        # exhausts its retries in the executed-but-reply-lost state.  The
        # coordinator's durable-log probe must discover the op landed and
        # keep the admission instead of leaking the booking.  Seed pinned
        # to a run where the ambiguous case actually occurs.
        gw = Gateway(
            platform(),
            num_shards=2,
            chaos=ChaosPolicy(seed=5, edges=((1, EdgeChaos(drop=0.6)),)),
            backoff=BackoffSchedule(base=1.0, max_attempts=5),
            rpc_deadline=500.0,
        )
        confirmed = 0
        for k in range(12):
            t = gw.submit(ingress=0, egress=1, volume=20.0, deadline=1000.0, now=float(k))
            confirmed += bool(t.reservation.confirmed)
        gw.drain(1200.0)
        assert gw.stats.recovered_deliveries > 0  # probe fired, admission stood
        assert confirmed > 0
        # Every booking that landed is explained by a confirmed reservation.
        report = check_gateway(gw, now=gw.now, expect_quiesced=True)
        assert report.ok, report.violations


class TestInvariantChecker:
    def test_clean_gateway_passes(self):
        journal = Journal()
        gw = Gateway(platform(), num_shards=2, journal=journal)
        gw.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        report = check_gateway(gw, journal=journal, now=0.0)
        assert report.ok and report.checks["reservations"] == 1
        report.raise_if_failed()  # no-op when clean
        assert report.to_dict()["ok"] is True

    def test_detects_unexplained_booking(self):
        gw = Gateway(platform(), num_shards=2)
        gw.brokers[0].book_pair(0, 0, 0.0, 10.0, 50.0)  # behind the gateway's back
        report = check_gateway(gw, now=0.0)
        assert not report.ok
        assert any("ledger carries" in v for v in report.violations)
        with pytest.raises(InternalInvariantError):
            report.raise_if_failed()

    def test_detects_zombie_hold(self):
        gw = Gateway(platform(), num_shards=2, hold_ttl=50.0)
        gw.brokers[0].prepare("ingress", 0, 0.0, 10.0, 5.0, rid=99, expires=10.0, key=(99, "i"))
        report = check_gateway(gw, now=60.0)
        assert any("zombie hold" in v for v in report.violations)

    def test_quiesced_gateway_must_hold_nothing(self):
        gw = Gateway(platform(), num_shards=2)
        gw.brokers[0].prepare("ingress", 0, 0.0, 10.0, 5.0, rid=99, expires=1e9, key=(99, "i"))
        assert check_gateway(gw, now=0.0).ok  # within TTL: fine mid-flight
        report = check_gateway(gw, now=0.0, expect_quiesced=True)
        assert any("quiesced" in v for v in report.violations)

    def test_detects_replay_divergence(self):
        journal = Journal()
        gw = Gateway(platform(), num_shards=2, journal=journal)
        gw.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        gw.brokers[0].release("ingress", 0, 0.0, 10.0, 1.0)  # un-journaled mutation
        report = check_gateway(gw, journal=journal, now=0.0)
        assert any("replay diverges" in v for v in report.violations)


class TestChaosOffEquivalence:
    """The tentpole acceptance gate: chaos disabled == layer absent."""

    def drive(self, gw):
        workload = sorted(chaotic_workload(17, n=25, ports=4), key=lambda r: r.t_start)
        for request in workload:
            gw.submit(
                ingress=request.ingress,
                egress=request.egress,
                volume=request.volume,
                deadline=request.t_end,
                now=request.t_start,
                max_rate=request.max_rate,
            )
        gw.drain(500.0)

    def decisions(self, gw):
        return [
            (r.rid, r.confirmed, r.reject_reason,
             None if r.allocation is None else (r.allocation.sigma, r.allocation.tau, r.allocation.bw))
            for r in gw.reservations()
        ]

    @pytest.mark.parametrize("shards,batch", [(1, 1), (2, 2), (4, 3)])
    def test_none_and_zero_policy_are_identical(self, shards, batch):
        gw_none = Gateway(platform(), num_shards=shards, batch_size=batch)
        gw_zero = Gateway(
            platform(), num_shards=shards, batch_size=batch, chaos=ChaosPolicy(seed=123)
        )
        self.drive(gw_none)
        self.drive(gw_zero)
        assert self.decisions(gw_none) == self.decisions(gw_zero)
        assert gw_none.snapshot() == gw_zero.snapshot()
        assert vars(gw_none.stats) == vars(gw_zero.stats)

    def test_chaos_off_leaves_edge_channel_counters_untouched(self):
        telemetry = Telemetry()
        gw = Gateway(platform(), num_shards=2, batch_size=2, telemetry=telemetry)
        self.drive(gw)
        channel_metrics = [
            n for n in telemetry.metrics.names() if n.startswith("gateway_channel_")
        ]
        assert channel_metrics == []

    def test_zero_policy_publishes_only_genuine_deliveries(self):
        telemetry = Telemetry()
        gw = Gateway(
            platform(),
            num_shards=2,
            batch_size=2,
            chaos=ChaosPolicy(seed=0),
            telemetry=telemetry,
        )
        self.drive(gw)
        deliveries = telemetry.metrics.get("gateway_channel_deliveries_total")
        assert deliveries is not None and deliveries.total() > 0
        # Every sample is labeled with its coordinator→broker edge.
        assert all("shard" in labels for labels, _ in deliveries.samples())
        # No fault-class counter ever registers under a zero policy: the
        # publication is delta-based, so the metrics simply never appear.
        fault_metrics = [
            n
            for n in telemetry.metrics.names()
            if n.startswith("gateway_channel_")
            and n != "gateway_channel_deliveries_total"
        ]
        assert fault_metrics == []

    def test_lossy_chaos_surfaces_labeled_edge_counters(self):
        telemetry = Telemetry()
        gw = Gateway(
            platform(),
            num_shards=2,
            batch_size=2,
            chaos=ChaosPolicy.lossy(seed=4),
            backoff=BackoffSchedule(base=1.0, max_attempts=4),
            rpc_deadline=120.0,
            backlog_limit=4,
            telemetry=telemetry,
        )
        self.drive(gw)
        assert gw.stats.chaos_drops > 0
        dropped = telemetry.metrics.get("gateway_channel_dropped_total")
        assert dropped is not None and dropped.total() > 0
        shards = {labels["shard"] for labels, _ in dropped.samples()}
        assert shards <= {"0", "1"} and shards

    def test_chaotic_journal_replay_converges(self):
        journal = Journal()
        gw = Gateway(
            platform(),
            num_shards=2,
            batch_size=2,
            chaos=ChaosPolicy.lossy(seed=4),
            backoff=BackoffSchedule(base=1.0, max_attempts=4),
            rpc_deadline=120.0,
            backlog_limit=4,
            journal=journal,
        )
        self.drive(gw)
        rebuilt = Gateway.replay(journal)
        assert rebuilt.snapshot() == gw.snapshot()
        assert journal.header["chaos"] == ChaosPolicy.lossy(seed=4).to_dict()


class TestChaosMatrix:
    def test_matrix_is_invariant_clean(self):
        report = run_chaos_matrix(
            platform(8),
            lambda seed: chaotic_workload(seed, n=24),
            seeds=[101, 202, 303, 404],
            scenarios=CHAOS_SCENARIOS,
            horizon=600.0,
        )
        assert len(report.cells) == 4 * len(CHAOS_SCENARIOS)
        assert report.ok, report.violations[:5]
        by_scenario = {}
        for cell in report.cells:
            by_scenario.setdefault(cell["scenario"], []).append(cell)
        # The scenarios genuinely bite: chaos counters move where they must.
        assert all(c["chaos_drops"] == 0 for c in by_scenario["clean"])
        assert any(c["chaos_drops"] > 0 for c in by_scenario["lossy"])
        assert any(c["chaos_partitioned"] > 0 for c in by_scenario["partition"])
        assert any(c["chaos_duplicates"] > 0 for c in by_scenario["duplicate-storm"])
        assert any(c["chaos_crashes"] > 0 for c in by_scenario["crash-mid-2pc"])
        assert any(c["readmitted"] > 0 for c in report.cells)
        doc = report.to_dict()
        assert doc["ok"] is True and len(doc["cells"]) == len(report.cells)

    def test_matrix_cells_carry_slo_verdicts(self, tmp_path):
        report = run_chaos_matrix(
            platform(8),
            lambda seed: chaotic_workload(seed, n=16),
            seeds=[0],
            scenarios=["clean", "lossy"],
            horizon=600.0,
            tracing=True,
            flight_dir=tmp_path,
        )
        assert report.ok
        for cell in report.cells:
            verdict = cell["slo"]
            assert set(verdict) >= {"ok", "breaches", "rules"}
            assert verdict["rules"], "every cell evaluates a non-empty rule set"
        assert report.slo_ok == all(c["slo"]["ok"] for c in report.cells)
        doc = report.to_dict()
        assert doc["slo_ok"] == report.slo_ok
        # Tracing captured one telemetry handle per cell under a stable label.
        assert report.telemetry is not None
        labels = {c["label"] for c in report.telemetry.captures()}
        assert labels == {"seed=0/clean", "seed=0/lossy"}
        # Invariant-clean cells leave no post-mortems behind.
        assert report.flight_paths == []
        assert list(tmp_path.iterdir()) == []

    def test_drill_accepts_chaos_parameters(self):
        report = run_gateway_fault_drill(
            platform(8),
            chaotic_workload(7, n=16),
            num_shards=4,
            batch_size=2,
            chaos=ChaosPolicy.lossy(seed=7),
            backoff=BackoffSchedule(base=1.0, max_attempts=4),
            rpc_deadline=90.0,
            backlog_limit=4,
            restart_sweep=100.0,
            seed=7,
        )
        gw = report.gateway
        assert gw.stats.submits >= 16  # arrivals (+ any readmissions)
        assert check_gateway(gw, now=gw.now).ok

    def test_restart_sweep_validation(self):
        with pytest.raises(ConfigurationError):
            run_gateway_fault_drill(
                platform(), chaotic_workload(1, n=2), restart_sweep=0.0
            )
