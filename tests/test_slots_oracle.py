"""SlotsScheduler vs an independently-written Algorithm 1 oracle.

The production scheduler uses a moving cursor and incremental active-set
maintenance; this oracle re-implements Algorithm 1 in the most naive way
possible (full scans everywhere).  Agreement on random workloads guards
the optimised implementation against bookkeeping regressions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProblemInstance
from repro.schedulers import SlotsScheduler
from repro.schedulers.costs import CumulatedCost, MinBwCost, MinVolCost
from repro.workload import paper_rigid_workload


def oracle_slots(problem: ProblemInstance, cost) -> set[int]:
    """Naive Algorithm 1: returns the accepted rid set."""
    platform = problem.platform
    requests = list(problem.requests)
    times = sorted({t for r in requests for t in (r.t_start, r.t_end)})
    rejected: set[int] = set()
    for t1, t2 in zip(times[:-1], times[1:]):
        active = [
            r
            for r in requests
            if r.rid not in rejected and r.t_start <= t1 and r.t_end >= t2
        ]
        active.sort(key=lambda r: (cost.cost(r, t1, t2, platform), r.min_rate, r.rid))
        ali = [0.0] * platform.num_ingress
        ale = [0.0] * platform.num_egress
        for r in active:
            bw = r.min_rate
            if (
                ali[r.ingress] + bw <= platform.bin(r.ingress) * (1 + 1e-9)
                and ale[r.egress] + bw <= platform.bout(r.egress) * (1 + 1e-9)
            ):
                ali[r.ingress] += bw
                ale[r.egress] += bw
            else:
                rejected.add(r.rid)
    return {r.rid for r in requests if r.rid not in rejected}


COSTS = [CumulatedCost(), MinBwCost(), MinVolCost()]


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 100_000),
    load=st.floats(1.0, 16.0, allow_nan=False),
    cost_idx=st.integers(0, len(COSTS) - 1),
)
def test_scheduler_matches_oracle(seed, load, cost_idx):
    problem = paper_rigid_workload(load, 60, seed=seed)
    cost = COSTS[cost_idx]
    result = SlotsScheduler(cost).schedule(problem)
    assert set(result.accepted) == oracle_slots(problem, cost)


def test_oracle_on_known_case():
    problem = paper_rigid_workload(8.0, 100, seed=7)
    for cost in COSTS:
        assert set(SlotsScheduler(cost).schedule(problem).accepted) == oracle_slots(problem, cost)
