"""Metamorphic properties of the schedulers and the verifier.

These tests don't check absolute outputs but *relations* between runs:

- **scale invariance** — multiplying every capacity, volume and host rate
  by c leaves all accept/reject decisions unchanged and scales granted
  rates by c (time is untouched);
- **time-shift invariance** — shifting every window by Δ shifts every
  allocation by Δ and changes nothing else;
- **verifier sensitivity** — any single perturbation of a valid schedule
  (rate, window, endpoint, duplication) must be caught by
  ``verify_schedule``.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Allocation,
    Platform,
    ProblemInstance,
    Request,
    RequestSet,
    ScheduleResult,
    ScheduleViolation,
    verify_schedule,
)
from repro.schedulers import (
    EarliestStartFlexible,
    FractionOfMaxPolicy,
    GreedyFlexible,
    WindowFlexible,
)
from repro.workload import paper_flexible_workload

SCHEDULERS = [
    lambda: GreedyFlexible(policy=FractionOfMaxPolicy(0.7)),
    lambda: WindowFlexible(t_step=300.0, policy=FractionOfMaxPolicy(0.7)),
    lambda: EarliestStartFlexible(policy=FractionOfMaxPolicy(0.7)),
]


def _scaled_problem(problem: ProblemInstance, c: float) -> ProblemInstance:
    platform = Platform(problem.platform.ingress_capacity * c, problem.platform.egress_capacity * c)
    requests = RequestSet(
        Request(
            rid=r.rid,
            ingress=r.ingress,
            egress=r.egress,
            volume=r.volume * c,
            t_start=r.t_start,
            t_end=r.t_end,
            max_rate=r.max_rate * c,
        )
        for r in problem.requests
    )
    return ProblemInstance(platform, requests)


def _shifted_problem(problem: ProblemInstance, delta: float) -> ProblemInstance:
    requests = RequestSet(
        Request(
            rid=r.rid,
            ingress=r.ingress,
            egress=r.egress,
            volume=r.volume,
            t_start=r.t_start + delta,
            t_end=r.t_end + delta,
            max_rate=r.max_rate,
        )
        for r in problem.requests
    )
    return ProblemInstance(problem.platform, requests)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    c=st.floats(0.1, 8.0, allow_nan=False),
    scheduler_idx=st.integers(0, len(SCHEDULERS) - 1),
)
def test_scale_invariance(seed, c, scheduler_idx):
    problem = paper_flexible_workload(1.0, 60, seed=seed)
    scheduler = SCHEDULERS[scheduler_idx]()
    base = scheduler.schedule(problem)
    scaled = scheduler.schedule(_scaled_problem(problem, c))
    assert set(base.accepted) == set(scaled.accepted)
    for rid, alloc in base.accepted.items():
        other = scaled.accepted[rid]
        assert other.bw == pytest.approx(alloc.bw * c, rel=1e-9)
        assert other.sigma == pytest.approx(alloc.sigma, rel=1e-9, abs=1e-9)
        assert other.tau == pytest.approx(alloc.tau, rel=1e-9)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    delta=st.floats(0.0, 10_000.0, allow_nan=False),
    scheduler_idx=st.integers(0, len(SCHEDULERS) - 1),
)
def test_time_shift_invariance(seed, delta, scheduler_idx):
    problem = paper_flexible_workload(1.0, 60, seed=seed)
    scheduler = SCHEDULERS[scheduler_idx]()
    base = scheduler.schedule(problem)
    shifted = scheduler.schedule(_shifted_problem(problem, delta))
    assert set(base.accepted) == set(shifted.accepted)
    for rid, alloc in base.accepted.items():
        other = shifted.accepted[rid]
        assert other.sigma == pytest.approx(alloc.sigma + delta, rel=1e-9)
        assert other.tau == pytest.approx(alloc.tau + delta, rel=1e-9)
        assert other.bw == pytest.approx(alloc.bw, rel=1e-9)


class TestVerifierSensitivity:
    """Every corruption of a valid schedule must raise ScheduleViolation."""

    def _valid(self):
        problem = paper_flexible_workload(2.0, 60, seed=3)
        result = GreedyFlexible().schedule(problem)
        verify_schedule(problem.platform, problem.requests, result)
        rid = next(iter(result.accepted))
        return problem, result, rid

    def _mutate(self, result, rid, **changes):
        alloc = result.accepted[rid]
        fields = {
            "rid": alloc.rid,
            "ingress": alloc.ingress,
            "egress": alloc.egress,
            "bw": alloc.bw,
            "sigma": alloc.sigma,
            "tau": alloc.tau,
        }
        fields.update(changes)
        mutated = ScheduleResult(scheduler=result.scheduler)
        for other_rid, other in result.accepted.items():
            mutated.accepted[other_rid] = Allocation(**fields) if other_rid == rid else other
        mutated.rejected = set(result.rejected)
        return mutated

    def test_inflated_rate(self):
        problem, result, rid = self._valid()
        alloc = result.accepted[rid]
        bad = self._mutate(result, rid, bw=alloc.bw * 10)
        with pytest.raises(ScheduleViolation):
            verify_schedule(problem.platform, problem.requests, bad)

    def test_shrunk_window(self):
        problem, result, rid = self._valid()
        alloc = result.accepted[rid]
        bad = self._mutate(result, rid, tau=alloc.tau * 0.5)
        with pytest.raises(ScheduleViolation):
            verify_schedule(problem.platform, problem.requests, bad)

    def test_wrong_port(self):
        problem, result, rid = self._valid()
        alloc = result.accepted[rid]
        bad = self._mutate(result, rid, ingress=(alloc.ingress + 1) % 10)
        with pytest.raises(ScheduleViolation):
            verify_schedule(problem.platform, problem.requests, bad)

    def test_early_start(self):
        problem, result, rid = self._valid()
        alloc = result.accepted[rid]
        bad = self._mutate(result, rid, sigma=alloc.sigma - 100.0, tau=alloc.tau - 100.0)
        with pytest.raises(ScheduleViolation):
            verify_schedule(problem.platform, problem.requests, bad)

    def test_phantom_acceptance(self):
        problem = paper_flexible_workload(0.2, 120, seed=4)  # heavy: rejects exist
        result = GreedyFlexible(policy=FractionOfMaxPolicy(1.0)).schedule(problem)
        assert result.rejected
        phantom_rid = next(iter(result.rejected))
        request = problem.requests.by_rid(phantom_rid)
        bad = ScheduleResult(scheduler=result.scheduler)
        bad.accepted = dict(result.accepted)
        bad.rejected = set(result.rejected)
        bad.rejected.discard(phantom_rid)
        bad.accepted[phantom_rid] = Allocation.for_request(request, request.max_rate * 100)
        with pytest.raises(ScheduleViolation):
            verify_schedule(problem.platform, problem.requests, bad)
