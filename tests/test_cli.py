"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_experiment_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-figure"])

    def test_schedule_defaults(self):
        args = build_parser().parse_args(["schedule"])
        assert args.scheduler == "window"
        assert args.t_step == 400.0


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "cumulated-slots" in out

    def test_run_small_figure(self, capsys):
        code = main(["run", "fig5", "--requests", "100", "--seeds", "0", "--no-chart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_run_with_csv(self, capsys, tmp_path):
        csv_path = tmp_path / "out.csv"
        code = main(
            ["run", "fig4", "--requests", "100", "--seeds", "0", "--csv", str(csv_path), "--no-chart"]
        )
        assert code == 0
        assert csv_path.exists()
        assert "load" in csv_path.read_text().splitlines()[0]

    def test_run_chart_printed(self, capsys):
        main(["run", "fig5", "--requests", "100", "--seeds", "0"])
        out = capsys.readouterr().out
        assert "|" in out  # chart grid

    def test_claims_exit_code(self, capsys):
        code = main(["claims", "--requests", "400", "--seeds", "0"])
        out = capsys.readouterr().out
        assert "claim" in out
        assert code in (0, 1)

    def test_schedule_flexible(self, capsys):
        code = main(["schedule", "--scheduler", "window", "--requests", "100", "--gap", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "accept rate" in out
        assert "verified" in out

    def test_schedule_rigid(self, capsys):
        code = main(["schedule", "--scheduler", "cumulated-slots", "--requests", "100", "--load", "4"])
        assert code == 0
        assert "accept rate" in capsys.readouterr().out

    def test_schedule_policy_value(self, capsys):
        code = main(["schedule", "--scheduler", "greedy", "--policy", "0.8", "--requests", "80"])
        assert code == 0

    def test_gantt(self, capsys):
        code = main(["gantt", "--requests", "8", "--rows", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "gantt" in out and "legend" in out

    def test_gantt_with_occupancy(self, capsys):
        code = main(["gantt", "--requests", "8", "--occupancy"])
        assert code == 0
        assert "occupancy" in capsys.readouterr().out

    def test_compare(self, capsys):
        code = main(["compare", "window", "greedy", "--requests", "120", "--seeds", "0", "1", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paired difference" in out
        assert "p-value" in out

    def test_plan(self, capsys):
        code = main(["plan", "--target", "0.5", "--requests", "100", "--seeds", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "capacity scale" in out

    def test_plan_unreachable(self, capsys):
        code = main(["plan", "--target", "1.0", "--gap", "0.01", "--requests", "200", "--seeds", "0"])
        out = capsys.readouterr().out
        assert code == 1 or "capacity scale" in out
