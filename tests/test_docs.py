"""Executable documentation: the README quickstart and docs/API.md snippets.

Documentation that silently rots is worse than none; these tests extract
the fenced ``python`` blocks from the README quickstart and docs/API.md
and execute them in one shared namespace (the API tour is written to be
runnable top to bottom).
"""

import re
from pathlib import Path

import numpy as np
import pytest

ROOT = Path(__file__).parent.parent


def _python_blocks(path: Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_quickstart_block_runs(self, capsys):
        blocks = _python_blocks(ROOT / "README.md")
        assert blocks, "README has no python block"
        namespace: dict = {}
        exec(compile(blocks[0], "README.md", "exec"), namespace)
        out = capsys.readouterr().out
        assert "accept rate:" in out


class TestApiTour:
    def test_all_blocks_run_in_sequence(self):
        blocks = _python_blocks(ROOT / "docs" / "API.md")
        assert len(blocks) >= 8
        namespace: dict = {"np": np}
        for k, block in enumerate(blocks):
            try:
                exec(compile(block, f"docs/API.md[{k}]", "exec"), namespace)
            except Exception as exc:  # pragma: no cover - the assertion is the test
                pytest.fail(f"docs/API.md block {k} failed: {exc}\n---\n{block}")
