"""Tests for PortLedger capacity bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CapacityError, ConfigurationError, Degradation, Platform, PortLedger


@pytest.fixture
def ledger():
    return PortLedger(Platform([100.0, 50.0], [100.0, 80.0]))


class TestFitsAllocate:
    def test_fits_empty(self, ledger):
        assert ledger.fits(0, 0, 0.0, 10.0, 100.0)
        assert not ledger.fits(0, 0, 0.0, 10.0, 101.0)

    def test_egress_constrains(self, ledger):
        assert ledger.fits(0, 1, 0.0, 10.0, 80.0)
        assert not ledger.fits(0, 1, 0.0, 10.0, 81.0)

    def test_allocate_reduces_headroom(self, ledger):
        ledger.allocate(0, 0, 0.0, 10.0, 60.0)
        assert not ledger.fits(0, 0, 5.0, 15.0, 50.0)
        assert ledger.fits(0, 0, 5.0, 15.0, 40.0)
        # disjoint in time: full capacity again
        assert ledger.fits(0, 0, 10.0, 20.0, 100.0)

    def test_allocate_overflow_raises(self, ledger):
        with pytest.raises(CapacityError):
            ledger.allocate(0, 0, 0.0, 10.0, 150.0)
        # failed allocate leaves ledger untouched
        assert ledger.is_empty()

    def test_unchecked_allocate(self, ledger):
        ledger.allocate(0, 0, 0.0, 10.0, 150.0, check=False)
        assert ledger.max_overcommit() == pytest.approx(50.0)

    def test_negative_amounts_rejected(self, ledger):
        with pytest.raises(CapacityError):
            ledger.allocate(0, 0, 0.0, 1.0, -1.0)
        with pytest.raises(CapacityError):
            ledger.release(0, 0, 0.0, 1.0, -1.0)

    def test_release(self, ledger):
        ledger.allocate(0, 0, 0.0, 10.0, 60.0)
        ledger.release(0, 0, 0.0, 10.0, 60.0)
        assert ledger.is_empty()

    def test_exact_fit_allowed(self, ledger):
        ledger.allocate(1, 1, 0.0, 5.0, 50.0)
        assert ledger.ingress_usage_at(1, 2.0) == pytest.approx(50.0)

    def test_sum_of_exact_parts(self, ledger):
        # many small allocations summing to exactly capacity must fit
        for _ in range(10):
            ledger.allocate(0, 0, 0.0, 1.0, 10.0)
        assert ledger.ingress_usage_at(0, 0.5) == pytest.approx(100.0)
        assert not ledger.fits(0, 0, 0.0, 1.0, 1.0)


class TestQueries:
    def test_headroom(self, ledger):
        ledger.allocate(0, 1, 0.0, 10.0, 30.0)
        assert ledger.headroom(0, 1, 0.0, 10.0) == pytest.approx(50.0)  # egress 80-30
        assert ledger.headroom(0, 1, 10.0, 20.0) == pytest.approx(80.0)

    def test_carried_volume(self, ledger):
        ledger.allocate(0, 0, 0.0, 10.0, 40.0)
        # both ports carry 400 MB; factor half -> 400
        assert ledger.carried_volume(0.0, 10.0) == pytest.approx(400.0)

    def test_copy_independent(self, ledger):
        ledger.allocate(0, 0, 0.0, 10.0, 10.0)
        clone = ledger.copy()
        clone.allocate(0, 0, 0.0, 10.0, 10.0)
        assert ledger.ingress_usage_at(0, 5.0) == pytest.approx(10.0)
        assert clone.ingress_usage_at(0, 5.0) == pytest.approx(20.0)

    def test_timelines_exposed(self, ledger):
        ledger.allocate(1, 0, 2.0, 4.0, 5.0)
        assert ledger.ingress_timeline(1).usage_at(3.0) == pytest.approx(5.0)
        assert ledger.egress_timeline(0).usage_at(3.0) == pytest.approx(5.0)


class TestDegradation:
    """Time-varying capacity: outages and partial failures."""

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Degradation("sideways", 0, 0.0, 1.0, 10.0)
        with pytest.raises(ConfigurationError):
            Degradation("ingress", 0, 5.0, 5.0, 10.0)
        with pytest.raises(ConfigurationError):
            Degradation("ingress", 0, 0.0, 1.0, -10.0)

    def test_capacity_at(self, ledger):
        ledger.degrade(Degradation("ingress", 0, 10.0, 20.0, 30.0))
        assert ledger.capacity_at("ingress", 0, 5.0) == pytest.approx(100.0)
        assert ledger.capacity_at("ingress", 0, 15.0) == pytest.approx(70.0)
        assert ledger.capacity_at("ingress", 0, 20.0) == pytest.approx(100.0)

    def test_outage_floors_at_zero(self, ledger):
        ledger.degrade(Degradation("egress", 1, 0.0, 10.0, 500.0))
        assert ledger.capacity_at("egress", 1, 5.0) == 0.0
        assert not ledger.fits(0, 1, 0.0, 10.0, 1.0)
        assert ledger.fits(0, 1, 10.0, 20.0, 80.0)

    def test_fits_respects_degraded_window(self, ledger):
        ledger.degrade(Degradation("ingress", 0, 10.0, 20.0, 60.0))
        assert ledger.fits(0, 0, 0.0, 10.0, 100.0)   # before the fault
        assert not ledger.fits(0, 0, 5.0, 15.0, 50.0)  # overlaps it
        assert ledger.fits(0, 0, 5.0, 15.0, 40.0)

    def test_headroom_under_degradation(self, ledger):
        ledger.degrade(Degradation("egress", 0, 0.0, 10.0, 40.0))
        ledger.allocate(0, 0, 0.0, 10.0, 30.0)
        assert ledger.headroom(0, 0, 0.0, 10.0) == pytest.approx(30.0)  # 100-40-30
        assert ledger.headroom(0, 0, 10.0, 20.0) == pytest.approx(100.0)

    def test_degradations_stack(self, ledger):
        ledger.degrade(Degradation("ingress", 0, 0.0, 10.0, 30.0))
        ledger.degrade(Degradation("ingress", 0, 5.0, 15.0, 30.0))
        assert ledger.capacity_at("ingress", 0, 7.0) == pytest.approx(40.0)
        assert ledger.free_capacity("ingress", 0, 0.0, 15.0) == pytest.approx(40.0)

    def test_overcommit_accounts_for_degradation(self, ledger):
        ledger.allocate(0, 0, 0.0, 10.0, 80.0)
        assert ledger.max_overcommit() <= 0.0
        ledger.degrade(Degradation("ingress", 0, 5.0, 8.0, 50.0))
        assert ledger.max_overcommit() == pytest.approx(30.0)  # 80 - (100-50)
        assert ledger.overcommit_on("ingress", 0, 5.0, 8.0) == pytest.approx(30.0)
        assert ledger.overcommit_on("ingress", 0, 0.0, 5.0) == pytest.approx(-20.0)

    def test_degradation_edges_and_copy(self, ledger):
        ledger.degrade(Degradation("egress", 0, 3.0, 7.0, 10.0))
        assert sorted(ledger.degradation_edges("egress", 0)) == [3.0, 7.0]
        clone = ledger.copy()
        clone.degrade(Degradation("egress", 0, 20.0, 30.0, 10.0))
        assert list(ledger.degradation_edges("egress", 0)) != list(
            clone.degradation_edges("egress", 0)
        )
        assert ledger.capacity_at("egress", 0, 25.0) == pytest.approx(100.0)

    def test_unknown_port_rejected(self, ledger):
        with pytest.raises(ConfigurationError):
            ledger.degrade(Degradation("ingress", 9, 0.0, 1.0, 10.0))

    def test_checked_allocation_respects_degraded_capacity(self, ledger):
        ledger.degrade(Degradation("ingress", 0, 0.0, 10.0, 70.0))
        with pytest.raises(CapacityError):
            ledger.allocate(0, 0, 0.0, 10.0, 40.0)
        ledger.allocate(0, 0, 0.0, 10.0, 30.0)
        assert ledger.max_overcommit() <= 1e-9

    def test_round_trip_dict(self):
        d = Degradation("egress", 2, 1.0, 4.0, 12.5)
        assert Degradation.from_dict(d.to_dict()) == d


@settings(max_examples=100, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 1),
            st.integers(0, 1),
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(0.1, 50.0, allow_nan=False),
            st.floats(0.1, 40.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_checked_allocations_never_overcommit(ops):
    """Whatever sequence of fits-guarded allocations runs, Eq. 1 holds."""
    ledger = PortLedger(Platform([100.0, 60.0], [90.0, 70.0]))
    for ingress, egress, start, length, bw in ops:
        if ledger.fits(ingress, egress, start, start + length, bw):
            ledger.allocate(ingress, egress, start, start + length, bw)
    assert ledger.max_overcommit() <= 1e-6
