"""The service plane: wire format, routing, edges, and live endpoints.

Everything here runs on the deterministic :class:`LogicalClock` — the
wall clock never enters a test — and the end-to-end cases go through a
real listening socket via the loadgen HTTP client, so the bytes on the
wire are the bytes a real deployment sees.
"""

import asyncio
import json

import pytest

from repro.core.errors import ConfigurationError
from repro.core.platform import Platform
from repro.gateway import EdgeLimit, Gateway
from repro.gateway.edge import EdgeLimiter
from repro.loadgen import ServiceClient
from repro.serve import ServeApp, ServeConfig
from repro.serve.clock import LogicalClock, WallServiceClock
from repro.serve.http import HttpError, HttpRequest, HttpResponse, read_request, render_response
from repro.serve.routes import ROUTE_TABLE, Route, Router
from repro.serve.security import ApiKeyring, ClientQuota, QuotaLimiter


def run(coro):
    return asyncio.run(coro)


def make_app(**overrides) -> ServeApp:
    settings = dict(
        platform=Platform.uniform(4, 4, 100.0),
        num_shards=2,
        batch_size=4,
        slo_rules=(),
    )
    settings.update(overrides)
    return ServeApp(ServeConfig(**settings), clock=LogicalClock())


async def serving(app: ServeApp, *, api_key: str | None = None):
    host, port = await app.start()
    client = ServiceClient(host, port, api_key=api_key)
    await client.connect()
    return client


def body(ingress=0, egress=1, volume=10.0, deadline=200.0, at=0.0, **extra):
    fields = {
        "ingress": ingress,
        "egress": egress,
        "volume": volume,
        "deadline": deadline,
        "at": at,
    }
    fields.update(extra)
    return fields


# ----------------------------------------------------------------------
# Wire format
# ----------------------------------------------------------------------
class TestHttpWireFormat:
    def _parse(self, raw: bytes):
        async def inner():
            reader = asyncio.StreamReader()
            reader.feed_data(raw)
            reader.feed_eof()
            return await read_request(reader)

        return run(inner())

    def test_parses_request_line_query_headers_body(self):
        raw = (
            b"POST /v1/reservations?explain=1&x=a%20b HTTP/1.1\r\n"
            b"Host: h\r\nContent-Length: 2\r\nX-API-Key: k1\r\n\r\n{}"
        )
        request = self._parse(raw)
        assert request.method == "POST"
        assert request.path == "/v1/reservations"
        assert request.query == {"explain": "1", "x": "a b"}
        assert request.header("X-Api-Key") == "k1"
        assert request.json() == {}
        assert request.keep_alive

    def test_clean_eof_returns_none(self):
        assert self._parse(b"") is None

    def test_truncated_head_is_400(self):
        with pytest.raises(HttpError) as err:
            self._parse(b"GET /x HTTP/1.1\r\n")
        assert err.value.status == 400

    def test_oversized_body_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"
        with pytest.raises(HttpError) as err:
            self._parse(raw)
        assert err.value.status == 413

    def test_chunked_refused(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        with pytest.raises(HttpError) as err:
            self._parse(raw)
        assert err.value.status == 400

    def test_render_is_deterministic_and_framed(self):
        raw = render_response(
            HttpResponse(status=201, payload={"b": 1, "a": 2}), keep_alive=True
        )
        head, _, rendered = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 201 Created")
        assert rendered == b'{"a":2,"b":1}'
        assert f"Content-Length: {len(rendered)}".encode() in head

    def test_connection_close_honoured(self):
        raw = render_response(HttpResponse(payload={}), keep_alive=False)
        assert b"Connection: close" in raw


# ----------------------------------------------------------------------
# Routing
# ----------------------------------------------------------------------
class TestRouter:
    def test_binds_path_params(self):
        res = Router().resolve("GET", "/v1/reservations/42")
        assert res.handler is not None
        assert res.params == {"rid": "42"}
        assert res.pattern == "/v1/reservations/{rid}"

    def test_unknown_path_is_404_shape(self):
        res = Router().resolve("GET", "/nope")
        assert res.handler is None and not res.path_known

    def test_known_path_wrong_method_is_405_shape(self):
        res = Router().resolve("DELETE", "/healthz")
        assert res.handler is None and res.path_known

    def test_duplicate_routes_refused(self):
        with pytest.raises(ConfigurationError):
            Router(ROUTE_TABLE + (Route("GET", "/healthz", ROUTE_TABLE[0].handler),))

    def test_every_route_pattern_is_versioned_or_wellknown(self):
        for route in ROUTE_TABLE:
            assert route.pattern.startswith("/v1/") or route.pattern in (
                "/healthz",
                "/metrics",
            )


# ----------------------------------------------------------------------
# Security edges
# ----------------------------------------------------------------------
class TestSecurity:
    def test_open_access_maps_to_anonymous(self):
        ring = ApiKeyring()
        assert ring.open_access
        assert ring.client_for(None) == "anonymous"

    def test_closed_ring_requires_known_key(self):
        ring = ApiKeyring({"k1": "alice"})
        assert ring.client_for("k1") == "alice"
        assert ring.client_for("nope") is None
        assert ring.client_for(None) is None

    def test_generated_ring_is_deterministic(self):
        a, b = ApiKeyring.generate(3), ApiKeyring.generate(3)
        assert a.keys() == b.keys() and len(a) == 3

    def test_quota_refusal_carries_exact_refill_hint(self):
        limiter = QuotaLimiter(ClientQuota(rate=1.0, burst=2.0))
        assert limiter.check("c", 0.0).admitted
        assert limiter.check("c", 0.0).admitted
        refusal = limiter.check("c", 0.0)
        assert not refusal.admitted and refusal.retry_after > 0
        # Boundary convention (mirrors hold_expired): at exactly
        # now + retry_after the same cost conforms.
        assert limiter.check("c", refusal.retry_after).admitted


class TestEdgeRetryAfter:
    def test_refusal_hint_is_exact_refill_boundary(self):
        limiter = EdgeLimiter(EdgeLimit(rate=10.0, burst=50.0))
        assert limiter.admit("c", 50.0, 0.0)  # drain the burst
        assert not limiter.admit("c", 30.0, 0.0)
        hint = limiter.retry_after("c", 30.0, 0.0)
        assert hint == pytest.approx(3.0, abs=1e-6)
        # At exactly now + hint the refused volume conforms...
        assert limiter.admit("c", 30.0, hint)
        # ...and epsilon earlier it would not have (fresh limiter).
        fresh = EdgeLimiter(EdgeLimit(rate=10.0, burst=50.0))
        fresh.admit("d", 50.0, 0.0)
        assert not fresh.admit("d", 30.0, hint - 1e-3)

    def test_unknown_client_conforms_immediately(self):
        limiter = EdgeLimiter(EdgeLimit(rate=10.0, burst=50.0))
        assert limiter.retry_after("never-seen", 10.0, 5.0) == 0.0

    def test_oversized_volume_never_conforms(self):
        limiter = EdgeLimiter(EdgeLimit(rate=10.0, burst=50.0))
        limiter.admit("c", 1.0, 0.0)
        assert limiter.retry_after("c", 51.0, 0.0) == float("inf")

    def test_gateway_ticket_carries_hint(self):
        gateway = Gateway(
            Platform.uniform(2, 2, 100.0),
            batch_size=1,
            edge=EdgeLimit(rate=10.0, burst=20.0),
        )
        gateway.submit(ingress=0, egress=1, volume=20.0, deadline=100.0, now=0.0, client="c")
        ticket = gateway.submit(
            ingress=0, egress=1, volume=5.0, deadline=100.0, now=0.0, client="c"
        )
        assert ticket.edge_refused
        assert ticket.retry_after == pytest.approx(0.5, abs=1e-6)


# ----------------------------------------------------------------------
# Clocks
# ----------------------------------------------------------------------
class TestClocks:
    def test_logical_clock_is_running_max(self):
        clock = LogicalClock()
        assert clock.observe(5.0) == 5.0
        assert clock.observe(3.0) == 5.0  # the past never rewinds it
        assert clock.now() == 5.0

    def test_logical_perf_is_deterministic(self):
        clock = LogicalClock(step=0.5)
        assert clock.perf() == 0.5 and clock.perf() == 1.0

    def test_wall_clock_rejects_bad_timescale(self):
        with pytest.raises(ConfigurationError):
            WallServiceClock(timescale=0.0)

    def test_wall_clock_resumes_from_origin(self):
        clock = WallServiceClock(origin=120.0)
        assert clock.now() >= 120.0


# ----------------------------------------------------------------------
# Live endpoints (real socket, logical time)
# ----------------------------------------------------------------------
class TestEndpoints:
    def test_submit_status_cancel_lifecycle(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                resp = await client.request(
                    "POST", "/v1/reservations", payload=body(volume=50.0, deadline=100.0)
                )
                assert resp.status == 201
                decision = resp.json()
                assert decision["outcome"] == "accepted"
                assert decision["allocation"]["bw"] > 0
                rid = decision["rid"]

                status = await client.request("GET", f"/v1/reservations/{rid}")
                assert status.status == 200
                assert status.json()["client"] == "anonymous"
                assert status.json()["request"]["volume"] == 50.0

                cancel = await client.request("DELETE", f"/v1/reservations/{rid}")
                assert cancel.status == 200 and cancel.json()["released"]

                missing = await client.request("GET", "/v1/reservations/9999")
                assert missing.status == 404
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_batch_submit_decides_every_entry_in_order(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                submissions = [body(ingress=i % 4, egress=(i + 1) % 4) for i in range(10)]
                resp = await client.request(
                    "POST", "/v1/reservations/batch", payload={"submissions": submissions}
                )
                assert resp.status == 200
                decisions = resp.json()["decisions"]
                assert len(decisions) == 10
                assert [d["rid"] for d in decisions] == sorted(d["rid"] for d in decisions)
                assert all(d["outcome"] in ("accepted", "rejected") for d in decisions)
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_malformed_submission_is_400_not_wave_poison(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                bad = await client.request(
                    "POST", "/v1/reservations", payload=body(deadline=-5.0, at=0.0)
                )
                assert bad.status == 400
                missing = await client.request("POST", "/v1/reservations", payload={"ingress": 0})
                assert missing.status == 400
                # The gateway never saw either: a good submission still flows.
                good = await client.request("POST", "/v1/reservations", payload=body())
                assert good.status in (200, 201)
                assert app.gateway.stats.submits == 1
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_batch_entry_fails_alone_as_invalid_slot(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                submissions = [
                    body(at=1.0),
                    body(deadline=-5.0, at=1.0),  # structurally impossible
                    body(egress=2, at=1.0),
                ]
                resp = await client.request(
                    "POST", "/v1/reservations/batch", payload={"submissions": submissions}
                )
                assert resp.status == 200
                decisions = resp.json()["decisions"]
                assert len(decisions) == 3
                assert decisions[0]["outcome"] in ("accepted", "rejected")
                assert decisions[1]["outcome"] == "invalid"
                assert "error" in decisions[1]
                assert decisions[2]["outcome"] in ("accepted", "rejected")
                # The bad entry never reached the gateway.
                assert app.gateway.stats.submits == 2
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_unknown_route_404_wrong_method_405(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                assert (await client.request("GET", "/nope")).status == 404
                assert (await client.request("DELETE", "/healthz")).status == 405
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_auth_rejects_unknown_key_and_accepts_known(self):
        async def main():
            app = make_app(keys={"key-a": "alice"})
            host, port = await app.start()
            anon = ServiceClient(host, port)
            alice = ServiceClient(host, port, api_key="key-a")
            intruder = ServiceClient(host, port, api_key="wrong")
            try:
                assert (await anon.request("POST", "/v1/reservations", payload=body())).status == 401
                assert (
                    await intruder.request("POST", "/v1/reservations", payload=body())
                ).status == 401
                resp = await alice.request("POST", "/v1/reservations", payload=body())
                assert resp.status == 201
                rid = resp.json()["rid"]
                status = await alice.request("GET", f"/v1/reservations/{rid}")
                assert status.json()["client"] == "alice"
            finally:
                for c in (anon, alice, intruder):
                    await c.close()
                await app.drain()

        run(main())

    def test_quota_429_carries_retry_after_header(self):
        async def main():
            app = make_app(quota=ClientQuota(rate=1.0, burst=2.0))
            client = await serving(app)
            try:
                assert (await client.request("GET", "/healthz")).status == 200
                assert (await client.request("GET", "/healthz")).status == 200
                refused = await client.request("GET", "/healthz")
                assert refused.status == 429
                assert refused.retry_after is not None and refused.retry_after > 0
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_edge_refusal_is_429_with_retry_after(self):
        async def main():
            app = make_app(edge=EdgeLimit(rate=10.0, burst=20.0))
            client = await serving(app)
            try:
                first = await client.request(
                    "POST", "/v1/reservations", payload=body(volume=20.0)
                )
                assert first.status == 201
                refused = await client.request(
                    "POST", "/v1/reservations", payload=body(volume=5.0)
                )
                assert refused.status == 429
                assert refused.json()["outcome"] == "edge-refused"
                assert refused.retry_after == pytest.approx(0.5, abs=1e-3)
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_healthz_reports_slo_and_draining(self):
        async def main():
            app = make_app(slo_rules=None)  # scaled defaults: watchdog on
            client = await serving(app)
            try:
                healthy = await client.request("GET", "/healthz")
                assert healthy.status == 200
                doc = healthy.json()
                assert doc["status"] == "serving" and doc["slo"]["ok"]
                app.draining = True
                draining = await client.request("GET", "/healthz")
                assert draining.status == 503
                assert draining.json()["status"] == "draining"
                # Mutations are refused while draining; reads still serve.
                refused = await client.request("POST", "/v1/reservations", payload=body())
                assert refused.status == 503
            finally:
                await client.close()
                app.draining = False
                await app.drain()

        run(main())

    def test_headroom_tracks_committed_peaks(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                before = (await client.request("GET", "/v1/headroom")).json()
                assert all(
                    row["headroom"] == row["capacity"] for row in before["ports"]["ingress"]
                )
                resp = await client.request(
                    "POST", "/v1/reservations", payload=body(ingress=2, volume=100.0)
                )
                assert resp.status == 201
                after = (await client.request("GET", "/v1/headroom")).json()
                row = after["ports"]["ingress"][2]
                assert row["peak"] > 0 and row["headroom"] < row["capacity"]
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_metrics_exposes_serve_families(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                await client.request("POST", "/v1/reservations", payload=body())
                text = (await client.request("GET", "/metrics")).body.decode()
                assert "serve_requests_total" in text
                assert "serve_request_seconds" in text
                assert "serve_decisions_total" in text
                assert "gateway_submits_total" in text
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_explain_rides_on_status(self):
        async def main():
            app = make_app()
            client = await serving(app)
            try:
                resp = await client.request("POST", "/v1/reservations", payload=body())
                rid = resp.json()["rid"]
                explained = await client.request(
                    "GET", f"/v1/reservations/{rid}?explain=1"
                )
                assert explained.status == 200
                story = explained.json()["explain"]
                assert story is not None and f"req-{rid}" in story
            finally:
                await client.close()
                await app.drain()

        run(main())

    def test_frontier_coalesces_concurrent_submits(self):
        async def main():
            app = make_app(max_wave=8, max_delay_s=0.01)
            client_count = 8
            host, port = await app.start()
            clients = [ServiceClient(host, port) for _ in range(client_count)]
            for c in clients:
                await c.connect()
            try:
                responses = await asyncio.gather(
                    *(
                        c.request(
                            "POST",
                            "/v1/reservations",
                            payload=body(ingress=i % 4, egress=(i + 1) % 4),
                        )
                        for i, c in enumerate(clients)
                    )
                )
                assert all(r.status in (200, 201) for r in responses)
                # 8 concurrent submits over an 8-wide frontier: strictly
                # fewer waves than submissions proves coalescing happened.
                assert app.frontier.waves < client_count
                assert app.frontier.coalesced == client_count
            finally:
                for c in clients:
                    await c.close()
                await app.drain()

        run(main())

    def test_keep_alive_and_bad_request_close(self):
        async def main():
            app = make_app()
            host, port = await app.start()
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b"BOGUS\r\n\r\n")
                await writer.drain()
                raw = await reader.read(4096)
                assert b"400" in raw.split(b"\r\n", 1)[0]
                assert b"Connection: close" in raw
                writer.close()
            finally:
                await app.drain()

        run(main())


class TestServeConfigValidation:
    def test_cli_build_app_roundtrip(self):
        from repro.serve.cli import _parser, build_app

        args = _parser().parse_args(
            ["--ports", "4", "--shards", "2", "--gen-keys", "3", "--quota-rate", "5"]
        )
        app = build_app(args)
        assert len(app.keyring) == 3
        assert app.quota is not None and app.quota.quota.rate == 5.0
        assert app.gateway.platform.num_ingress == 4

    def test_journal_json_roundtrip(self, tmp_path):
        keys = tmp_path / "keys.json"
        keys.write_text(json.dumps({"k1": "alice"}))
        from repro.serve.cli import _parser, build_app

        app = build_app(_parser().parse_args(["--keys", str(keys)]))
        assert app.keyring.client_for("k1") == "alice"
