"""Tests for the sim-clock span tracer (repro.obs.tracer)."""

import pytest

from repro.core import ConfigurationError
from repro.obs import Span, SpanTracer, validate_chrome_trace
from repro.obs.tracer import SECONDS_TO_TRACE_US


class TestSpans:
    def test_begin_finish(self):
        tracer = SpanTracer()
        span = tracer.begin("transfer", 10.0, cat="service", tid=3, rid=7)
        assert span.end is None and span.duration == 0.0
        tracer.finish(span, 25.0)
        assert span.duration == pytest.approx(15.0)
        assert span.args == {"rid": 7}

    def test_finish_twice_is_an_error(self):
        tracer = SpanTracer()
        span = tracer.complete("x", 0.0, 1.0)
        with pytest.raises(ConfigurationError):
            tracer.finish(span, 2.0)

    def test_finish_before_start_is_an_error(self):
        tracer = SpanTracer()
        span = tracer.begin("x", 5.0)
        with pytest.raises(ConfigurationError):
            tracer.finish(span, 4.0)

    def test_complete_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            SpanTracer().complete("x", 2.0, 1.0)

    def test_instant_is_zero_length(self):
        span = SpanTracer().instant("arrival", 3.0)
        assert span.kind == "instant"
        assert span.duration == 0.0

    def test_filtering(self):
        tracer = SpanTracer()
        tracer.complete("a", 0.0, 1.0, cat="x")
        tracer.complete("a", 1.0, 2.0, cat="y")
        tracer.complete("b", 0.0, 1.0, cat="x")
        assert len(tracer.spans(name="a")) == 2
        assert len(tracer.spans(cat="x")) == 2
        assert len(tracer.spans(name="a", cat="x")) == 1


class TestCapacity:
    def test_fifo_eviction_counts_dropped(self):
        tracer = SpanTracer(capacity=3)
        for k in range(8):
            tracer.complete(f"s{k}", float(k), float(k) + 1.0)
        assert len(tracer) == 3
        assert tracer.dropped == 5
        assert [s.name for s in tracer] == ["s5", "s6", "s7"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            SpanTracer(capacity=0)


class TestTracedRunDeterminism:
    """Satellite contract: capped tracing drops exactly, exports bytes."""

    def _traced_run(self, max_spans=None):
        import random

        from repro.core.platform import Platform
        from repro.gateway import ChaosPolicy, Gateway
        from repro.obs import RunTelemetry, Telemetry

        telemetry = Telemetry(max_spans=max_spans)
        gw = Gateway(
            Platform.uniform(4, 4, 1000.0),
            num_shards=2,
            batch_size=2,
            chaos=ChaosPolicy.lossy(seed=3),
            rpc_deadline=60.0,
            backlog_limit=4,
            telemetry=telemetry,
        )
        rng = random.Random(42)
        arrivals = sorted(
            (
                rng.uniform(0.0, 200.0),
                rng.randrange(4),
                rng.randrange(4),
                rng.uniform(100.0, 900.0),
                rng.uniform(60.0, 180.0),
            )
            for _ in range(15)
        )
        for t0, ingress, egress, volume, window in arrivals:
            gw.submit(
                ingress=ingress,
                egress=egress,
                volume=volume,
                deadline=t0 + window,
                now=t0,
            )
        gw.drain(400.0)
        artifact = RunTelemetry("tracer-determinism")
        artifact.capture("run", telemetry)
        return telemetry, artifact

    def test_capped_tracer_accounts_every_drop(self):
        unbounded, _ = self._traced_run()
        total = len(unbounded.tracer)
        assert total > 5
        capped, _ = self._traced_run(max_spans=5)
        assert len(capped.tracer) == 5
        assert capped.tracer.dropped == total - 5
        # The retained tail is exactly the last five spans of the full run.
        tail = [s.to_dict() for s in list(iter(unbounded.tracer))[-5:]]
        assert [s.to_dict() for s in capped.tracer] == tail

    def test_traced_export_is_byte_identical_across_runs(self):
        _, first = self._traced_run()
        _, second = self._traced_run()
        assert first.to_json() == second.to_json()

    def test_capped_export_is_byte_identical_too(self):
        _, first = self._traced_run(max_spans=7)
        _, second = self._traced_run(max_spans=7)
        assert first.to_json() == second.to_json()


class TestChromeTrace:
    def _tracer(self):
        tracer = SpanTracer()
        tracer.complete("transfer", 100.0, 250.0, cat="service", tid=2, rid=1, bw=33.0)
        tracer.instant("arrival", 100.0, cat="sim")
        tracer.begin("open", 300.0)
        return tracer

    def test_export_shapes(self):
        doc = self._tracer().to_chrome_trace(pid=5)
        events = {e["ph"]: e for e in doc["traceEvents"]}
        assert events["X"]["ts"] == pytest.approx(100.0 * SECONDS_TO_TRACE_US)
        assert events["X"]["dur"] == pytest.approx(150.0 * SECONDS_TO_TRACE_US)
        assert events["X"]["args"] == {"rid": 1, "bw": 33.0}
        assert events["i"]["s"] == "t"
        assert "dur" not in events["B"]
        assert all(e["pid"] == 5 for e in doc["traceEvents"])

    def test_export_validates_against_schema(self):
        validate_chrome_trace(self._tracer().to_chrome_trace())

    def test_chrome_roundtrip(self):
        original = self._tracer()
        rebuilt = SpanTracer.from_chrome_trace(original.to_chrome_trace())
        assert rebuilt.to_dicts() == original.to_dicts()

    def test_jsonl_roundtrip(self):
        original = self._tracer()
        rebuilt = SpanTracer.from_jsonl(original.to_jsonl())
        assert rebuilt.to_dicts() == original.to_dicts()

    def test_span_dict_roundtrip(self):
        span = Span(name="x", start=1.0, end=2.0, cat="c", tid=4, args={"k": 1}, kind="span")
        assert Span.from_dict(span.to_dict()) == span
