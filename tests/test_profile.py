"""RateProfile: canonical hygiene, surgery, and the 1-segment identity.

Three of the malleable-transfer satellites live here:

- segment hygiene has exactly one home (:meth:`RateProfile.normalize`),
  with the ``t0 == t1`` and touching-segment regressions run against
  **both** capacity backends;
- seeded property tests pin the 1-segment profile to the constant-rate
  path: same placements, same reject blame, over multiple seeds and both
  backends (the refactor's "constant path is the 1-segment special
  case" claim, checked at the booking layer);
- reserve→release of any fuzzed profile restores the ledger exactly.

Fuzzed times/rates are multiples of 1/4 so every intermediate float is a
binary fraction: additions are exact and "exactly restored" means ``==``.
"""

import random

import pytest

from repro.core.booking import (
    FitProbe,
    RejectReason,
    earliest_fit,
    earliest_fit_profile,
    shape_profile,
)
from repro.core.capacity import use_backend
from repro.core.ledger import PortLedger
from repro.core.platform import Platform
from repro.core.profile import RateProfile
from repro.core.request import Request

BACKENDS = ("breakpoint", "vector")


# ----------------------------------------------------------------------
# Canonical hygiene (RateProfile.normalize)
# ----------------------------------------------------------------------
class TestNormalize:
    def test_drops_zero_length_and_zero_rate(self):
        p = RateProfile([(0.0, 0.0, 10.0), (0.0, 5.0, 10.0), (5.0, 9.0, 0.0)])
        assert p.segments == ((0.0, 5.0, 10.0),)

    def test_coalesces_touching_equal_rates(self):
        p = RateProfile([(0.0, 5.0, 10.0), (5.0, 9.0, 10.0)])
        assert p.segments == ((0.0, 9.0, 10.0),)
        assert p.is_constant

    def test_touching_different_rates_stay_separate(self):
        p = RateProfile([(0.0, 5.0, 10.0), (5.0, 9.0, 20.0)])
        assert len(p) == 2

    def test_sorts_out_of_order_input(self):
        p = RateProfile([(5.0, 9.0, 20.0), (0.0, 5.0, 10.0)])
        assert p.segments == ((0.0, 5.0, 10.0), (5.0, 9.0, 20.0))

    def test_gaps_are_allowed(self):
        p = RateProfile([(0.0, 2.0, 10.0), (4.0, 6.0, 10.0)])
        assert len(p) == 2
        assert p.rate_at(3.0) == 0.0
        assert p.duration == 6.0

    def test_rejects_real_overlap(self):
        with pytest.raises(ValueError, match="overlap"):
            RateProfile([(0.0, 5.0, 10.0), (4.0, 9.0, 10.0)])

    def test_clamps_sub_tolerance_overlap(self):
        p = RateProfile([(0.0, 5.0, 10.0), (5.0 - 1e-12, 9.0, 20.0)])
        assert p.segments[1][0] == 5.0

    def test_rejects_negative_rate_inverted_window_nonfinite(self):
        with pytest.raises(ValueError, match="negative rate"):
            RateProfile([(0.0, 5.0, -1.0)])
        with pytest.raises(ValueError, match="ends before"):
            RateProfile([(5.0, 0.0, 10.0)])
        with pytest.raises(ValueError, match="finite"):
            RateProfile([(0.0, float("inf"), 10.0)])
        with pytest.raises(ValueError, match="malformed"):
            RateProfile([(0.0, 5.0)])

    def test_empty_profile_is_valid_and_falsy(self):
        p = RateProfile(())
        assert not p
        assert len(p) == 0
        assert p.volume == 0.0
        assert p.peak_rate == 0.0


class TestShapeAndSurgery:
    def test_scalar_summary(self):
        p = RateProfile([(10.0, 20.0, 4.0), (30.0, 40.0, 8.0)])
        assert p.sigma == 10.0 and p.tau == 40.0
        assert p.volume == 120.0
        assert p.peak_rate == 8.0
        assert not p.is_constant
        assert p.conserves(120.0) and not p.conserves(121.0)

    def test_rate_at_and_volume_before(self):
        p = RateProfile([(10.0, 20.0, 4.0), (30.0, 40.0, 8.0)])
        assert p.rate_at(10.0) == 4.0
        assert p.rate_at(20.0) == 0.0  # half-open segments
        assert p.rate_at(35.0) == 8.0
        assert p.volume_before(10.0) == 0.0
        assert p.volume_before(15.0) == 20.0
        assert p.volume_before(35.0) == 80.0
        assert p.volume_before(100.0) == p.volume

    def test_head_tail_partition_conserves_volume(self):
        p = RateProfile([(10.0, 20.0, 4.0), (30.0, 40.0, 8.0)])
        for cut in (5.0, 10.0, 15.0, 25.0, 35.0, 40.0, 50.0):
            head, tail = p.head_until(cut), p.tail_from(cut)
            assert head.volume + tail.volume == p.volume
            assert head.concat(tail).approx_eq(p)

    def test_shift_preserves_shape(self):
        p = RateProfile([(10.0, 20.0, 4.0), (30.0, 40.0, 8.0)])
        q = p.shift(5.0)
        assert q.sigma == 15.0 and q.tau == 45.0 and q.volume == p.volume

    def test_wire_roundtrip_and_maybe_from(self):
        p = RateProfile([(0.0, 5.0, 10.0), (6.0, 8.0, 2.0)])
        assert RateProfile.from_list(p.to_list()).segments == p.segments
        assert RateProfile.maybe_from(None) is None
        assert RateProfile.maybe_from(p) is p
        assert RateProfile.maybe_from(p.to_list()).segments == p.segments


# ----------------------------------------------------------------------
# Segment hygiene against both capacity backends (satellite regression)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestSegmentsOnBackends:
    def test_zero_length_segments_never_reach_the_backend(self, backend):
        # A raw list with t0 == t1 slivers must book exactly like the
        # cleaned shape: normalize() drops the slivers before the backend
        # (whose contract is strict t1 > t0) ever sees them.
        with use_backend(backend):
            ledger = PortLedger(Platform.uniform(2, 2, 100.0))
            profile = RateProfile([(0.0, 0.0, 50.0), (0.0, 10.0, 30.0), (10.0, 10.0, 5.0)])
            ledger.allocate_segments(0, 0, profile.segments)
            assert ledger.ingress_usage_at(0, 5.0) == 30.0
            assert ledger.ingress_usage_at(0, 10.0) == 0.0

    def test_touching_segments_coalesce_before_booking(self, backend):
        with use_backend(backend):
            ledger = PortLedger(Platform.uniform(2, 2, 100.0))
            profile = RateProfile([(0.0, 5.0, 30.0), (5.0, 10.0, 30.0)])
            assert profile.is_constant
            ledger.allocate_segments(0, 0, profile.segments)
            for t in (0.0, 2.5, 5.0, 7.5):
                assert ledger.ingress_usage_at(0, t) == 30.0
                assert ledger.egress_usage_at(0, t) == 30.0

    def test_one_segment_fits_equals_constant_fits(self, backend):
        with use_backend(backend):
            ledger = PortLedger(Platform.uniform(2, 2, 100.0))
            ledger.allocate(0, 0, 0.0, 50.0, 80.0)
            for bw in (10.0, 20.0, 25.0, 60.0):
                single = RateProfile.constant(10.0, 40.0, bw)
                assert ledger.fits_segments(0, 0, single.segments) == ledger.fits(
                    0, 0, 10.0, 40.0, bw
                )


# ----------------------------------------------------------------------
# Seeded property: the 1-segment profile IS the constant path
# ----------------------------------------------------------------------
def _quarter(rng, lo, hi):
    """A uniform draw snapped to a binary fraction (multiple of 1/4)."""
    return round(rng.uniform(lo, hi) * 4.0) / 4.0


def _fuzzed_ledger(rng, platform):
    ledger = PortLedger(platform)
    for _ in range(rng.randrange(3, 12)):
        i = rng.randrange(platform.num_ingress)
        e = rng.randrange(platform.num_egress)
        t0 = _quarter(rng, 0.0, 300.0)
        t1 = t0 + _quarter(rng, 1.0, 120.0)
        bw = _quarter(rng, 5.0, 70.0)
        ledger.allocate(i, e, t0, t1, bw, check=False)
    return ledger


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
class TestOneSegmentDecisionIdentity:
    def test_matches_constant_earliest_fit(self, backend, seed):
        """Placing a fixed-rate block as a 1-segment profile decides
        identically to the constant-rate earliest-fit search: same
        accept/reject, same placement, same capacity blame.  The only
        sanctioned divergence is the window verdict's name
        (``window-infeasible`` vs ``profile-infeasible``)."""
        rng = random.Random(seed)
        platform = Platform.uniform(3, 3, 100.0)
        with use_backend(backend):
            for _ in range(40):
                ledger = _fuzzed_ledger(rng, platform)
                t_start = _quarter(rng, 0.0, 200.0)
                duration = _quarter(rng, 2.0, 80.0)
                bw = _quarter(rng, 5.0, 90.0)
                slack = _quarter(rng, 0.0, 100.0)
                request = Request(
                    rid=0,
                    ingress=rng.randrange(3),
                    egress=rng.randrange(3),
                    volume=bw * duration,
                    t_start=t_start,
                    t_end=t_start + duration + slack,
                    max_rate=bw,
                )
                const_probe, prof_probe = FitProbe(), FitProbe()
                const = earliest_fit(
                    ledger, request, lambda sigma: bw, probe=const_probe
                )
                profile = RateProfile.constant(t_start, t_start + duration, bw)
                shaped = earliest_fit_profile(
                    ledger, request, profile, probe=prof_probe
                )
                assert (const is None) == (shaped is None)
                if const is not None:
                    assert shaped.profile is not None and shaped.profile.is_constant
                    assert shaped.profile.segments == ((const.sigma, const.tau, const.bw),)
                    assert (shaped.sigma, shaped.tau, shaped.bw) == (
                        const.sigma,
                        const.tau,
                        const.bw,
                    )
                elif const_probe.reason in (
                    RejectReason.INGRESS_FULL,
                    RejectReason.EGRESS_FULL,
                ):
                    assert prof_probe.reason == const_probe.reason
                else:
                    assert const_probe.reason == RejectReason.WINDOW_INFEASIBLE
                    assert prof_probe.reason == RejectReason.PROFILE_INFEASIBLE


# ----------------------------------------------------------------------
# Seeded property: reserve -> release restores the ledger exactly
# ----------------------------------------------------------------------
def _fuzzed_profile(rng):
    segments = []
    t = _quarter(rng, 0.0, 100.0)
    for _ in range(rng.randrange(1, 6)):
        t0 = t + _quarter(rng, 0.0, 20.0)
        t1 = t0 + _quarter(rng, 0.25, 40.0)
        segments.append((t0, t1, _quarter(rng, 0.25, 60.0)))
        t = t1
    return RateProfile(segments)


def _usage_samples(ledger, platform, instants):
    return [
        (ledger.ingress_usage_at(i, t), ledger.egress_usage_at(e, t))
        for i in range(platform.num_ingress)
        for e in range(platform.num_egress)
        for t in instants
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", [10, 11, 12, 13])
class TestReserveReleaseRestores:
    def test_roundtrip_is_exact(self, backend, seed):
        rng = random.Random(seed)
        platform = Platform.uniform(3, 3, 100.0)
        instants = [k * 0.25 for k in range(0, 1600, 7)]
        with use_backend(backend):
            for _ in range(25):
                ledger = _fuzzed_ledger(rng, platform)
                before = _usage_samples(ledger, platform, instants)
                profile = _fuzzed_profile(rng)
                i, e = rng.randrange(3), rng.randrange(3)
                ledger.allocate_segments(i, e, profile.segments, check=False)
                # the reservation is visible while held...
                mid = profile.segments[0]
                assert ledger.ingress_usage_at(i, mid[0]) >= mid[2]
                ledger.release_segments(i, e, profile.segments)
                # ...and release restores every port exactly.
                assert _usage_samples(ledger, platform, instants) == before


# ----------------------------------------------------------------------
# Shaping sanity (the fallback half of malleable admission)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestShapeProfile:
    def test_shapes_into_a_valley(self, backend):
        with use_backend(backend):
            ledger = PortLedger(Platform.uniform(2, 2, 100.0))
            # Hotspot: the pair is nearly full over [20, 60).
            ledger.allocate(0, 0, 20.0, 60.0, 90.0)
            request = Request(
                rid=1, ingress=0, egress=0, volume=1200.0,
                t_start=0.0, t_end=80.0, max_rate=40.0,
            )
            assert earliest_fit(ledger, request) is None
            shaped = shape_profile(ledger, request)
            assert shaped is not None and shaped.conserves(request.volume)
            assert len(shaped) >= 2  # stepwise, not constant
            assert ledger.fits_segments(0, 0, shaped.segments)

    def test_infeasible_window_is_profile_infeasible(self, backend):
        with use_backend(backend):
            ledger = PortLedger(Platform.uniform(2, 2, 100.0))
            ledger.allocate(0, 0, 0.0, 100.0, 95.0)
            request = Request(
                rid=1, ingress=0, egress=0, volume=5000.0,
                t_start=0.0, t_end=100.0, max_rate=80.0,
            )
            probe = FitProbe()
            assert shape_profile(ledger, request, probe=probe) is None
            assert probe.reason == RejectReason.PROFILE_INFEASIBLE
