"""Tests for online fault injection and the recovery control plane."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import (
    FaultInjector,
    Journal,
    PortFault,
    ReservationService,
    ReservationState,
    run_fault_drill,
)
from repro.core import ConfigurationError, Platform, Request, verify_schedule
from repro.schedulers import BackoffSchedule, FractionOfMaxPolicy
from repro.sim import Simulator


@pytest.fixture
def platform():
    return Platform.uniform(2, 2, 100.0)


class TestFaultValidation:
    def test_port_fault_rejects_bad_side(self):
        with pytest.raises(ConfigurationError):
            PortFault(side="middle", port=0, amount=10.0, start=0.0, end=1.0)

    def test_port_fault_rejects_empty_window(self):
        with pytest.raises(ConfigurationError):
            PortFault(side="ingress", port=0, amount=10.0, start=5.0, end=5.0)

    def test_port_fault_rejects_nonpositive_amount(self):
        with pytest.raises(ConfigurationError):
            PortFault(side="ingress", port=0, amount=0.0, start=0.0, end=1.0)

    def test_outage_takes_whole_capacity(self):
        fault = PortFault.outage("egress", 1, 80.0, 10.0, 20.0)
        assert fault.amount == 80.0

    def test_drill_rejects_bad_abort_rate(self, platform):
        with pytest.raises(ConfigurationError):
            run_fault_drill(platform, [], abort_rate=1.5)


class TestBackoffSchedule:
    def test_exponential_growth(self):
        sched = BackoffSchedule(base=10.0, multiplier=2.0, max_attempts=4)
        assert sched.delay(1) == pytest.approx(10.0)
        assert sched.delay(2) == pytest.approx(20.0)
        assert sched.delay(3) == pytest.approx(40.0)

    def test_jitter_stretches_delay(self):
        sched = BackoffSchedule(base=10.0, multiplier=1.0, jitter=0.5)
        rng = random.Random(7)
        delays = {sched.delay(1, rng) for _ in range(20)}
        assert len(delays) > 1
        assert all(10.0 <= d <= 15.0 for d in delays)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffSchedule(base=-1.0)
        with pytest.raises(ConfigurationError):
            BackoffSchedule(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            BackoffSchedule(jitter=-0.1)


class TestAbort:
    def test_abort_frees_tail_and_accounts_waste(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        r = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=200.0, now=0.0)
        assert service.abort(r.rid, now=40.0)
        assert r.state(50.0) == ReservationState.ABORTED
        assert r.carried == pytest.approx(4000.0)
        assert r.residual == pytest.approx(6000.0)
        assert service.stats.aborted == 1
        assert service.stats.wasted_volume == pytest.approx(4000.0)
        assert service.stats.freed_volume == pytest.approx(6000.0)
        # the tail [40, 100) is bookable again
        ins, _ = service.port_usage(70.0)
        assert ins[0] == pytest.approx(0.0)

    def test_abort_terminated_is_noop(self, platform):
        service = ReservationService(platform)
        r = service.submit(ingress=0, egress=1, volume=100.0, deadline=50.0, now=0.0)
        assert service.cancel(r.rid, now=1.0)
        assert not service.abort(r.rid, now=2.0)
        assert service.stats.aborted == 0

    def test_abort_unknown_raises(self, platform):
        with pytest.raises(KeyError):
            ReservationService(platform).abort(99, now=0.0)

    def test_abort_triggers_readmission(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0),
            policy=FractionOfMaxPolicy(1.0),
            backlog_limit=4,
        )
        first = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=200.0, now=0.0)
        blocked = service.submit(ingress=0, egress=0, volume=5_000.0, deadline=90.0, now=1.0)
        assert not blocked.confirmed
        assert service.stats.backlogged == 1
        service.abort(first.rid, now=10.0)
        assert service.stats.readmitted == 1
        readmit = service.reservations()[-1]
        assert readmit.origin == blocked.rid
        assert readmit.confirmed
        assert service.accept_rate() == 1.0  # both client submissions served

    def test_backlog_prunes_expired_deadlines(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0),
            policy=FractionOfMaxPolicy(1.0),
            backlog_limit=4,
        )
        first = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=200.0, now=0.0)
        blocked = service.submit(ingress=0, egress=0, volume=5_000.0, deadline=90.0, now=1.0)
        assert not blocked.confirmed
        # by t=60 the leftover window [60, 90) can't carry 5000 MB at cap 100
        service.abort(first.rid, now=60.0)
        assert service.stats.readmitted == 0
        assert service._backlog == []

    def test_backlog_fifo_eviction(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0),
            policy=FractionOfMaxPolicy(1.0),
            backlog_limit=1,
        )
        service.submit(ingress=0, egress=0, volume=10_000.0, deadline=200.0, now=0.0)
        a = service.submit(ingress=0, egress=0, volume=5_000.0, deadline=90.0, now=1.0)
        b = service.submit(ingress=0, egress=0, volume=5_000.0, deadline=95.0, now=2.0)
        assert not a.confirmed and not b.confirmed
        assert service._backlog == [b.rid]  # oldest evicted at the limit


class TestDegrade:
    def test_degrade_without_conflict_displaces_nothing(self, platform):
        service = ReservationService(platform)
        service.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        displaced = service.degrade(
            side="ingress", port=1, amount=100.0, start=0.0, end=50.0, now=0.0
        )
        assert displaced == []
        assert service.stats.degradations == 1
        assert service.max_overcommit() <= 1e-9

    def test_outage_displaces_latest_start_first(self):
        service = ReservationService(
            Platform.uniform(1, 2, 100.0), policy=FractionOfMaxPolicy(0.5)
        )
        early = service.submit(ingress=0, egress=0, volume=5_000.0, deadline=400.0, now=0.0)
        late = service.submit(ingress=0, egress=0, volume=5_000.0, deadline=400.0, now=1.0)
        assert early.allocation.sigma < late.allocation.sigma or (
            early.allocation.sigma == late.allocation.sigma and early.rid < late.rid
        )
        # halve the ingress: only one 50 MB/s stream still fits
        displaced = service.degrade(
            side="ingress", port=0, amount=50.0, start=2.0, end=200.0, now=2.0
        )
        assert [r.rid for r in displaced] == [late.rid]
        assert late.state(3.0) == ReservationState.DISPLACED
        assert late.displaced_at == 2.0
        assert early.state(3.0) == ReservationState.ACTIVE
        assert service.max_overcommit() <= 1e-9
        assert service.stats.displaced == 1

    def test_displaced_checkpoints_carried_volume(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        r = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=200.0, now=0.0)
        service.degrade(side="egress", port=0, amount=100.0, start=30.0, end=60.0, now=30.0)
        assert r.state(31.0) == ReservationState.DISPLACED
        assert r.carried == pytest.approx(3000.0)
        assert r.residual == pytest.approx(7000.0)

    def test_degraded_window_rejects_new_load(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        service.degrade(side="ingress", port=0, amount=100.0, start=0.0, end=50.0, now=0.0)
        r = service.submit(ingress=0, egress=0, volume=1000.0, deadline=100.0, now=0.0)
        assert r.confirmed
        assert r.allocation.sigma >= 50.0 - 1e-9  # booked after the outage


class TestRebooking:
    def test_injector_rebooks_displaced_residual(self):
        sim = Simulator()
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        injector = FaultInjector(
            sim, service, rebook=BackoffSchedule(base=5.0, multiplier=2.0)
        )
        r = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=400.0, now=0.0)
        injector.schedule_fault(
            PortFault.outage("egress", 0, 100.0, start=20.0, end=50.0)
        )
        sim.run()
        assert r.state(sim.now) == ReservationState.DISPLACED
        rebooks = [x for x in service.reservations() if x.origin == r.rid]
        assert len(rebooks) == 1
        assert rebooks[0].confirmed
        assert rebooks[0].request.volume == pytest.approx(8000.0)  # residual
        assert rebooks[0].allocation.sigma >= 25.0 - 1e-9  # first retry at 20+5
        assert service.stats.rebook_attempts == 1
        assert service.stats.rebooked == 1
        assert service.stats.rebook_rate == 1.0
        assert service.accept_rate() == 1.0  # the rebooking serves the original

    def test_rebooking_backs_off_until_capacity_frees(self):
        sim = Simulator()
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        injector = FaultInjector(
            sim, service, rebook=BackoffSchedule(base=5.0, multiplier=2.0)
        )
        r = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=170.0, now=0.0)
        rival = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=300.0, now=1.0)
        assert rival.allocation.sigma == pytest.approx(100.0)
        injector.schedule_fault(
            PortFault.outage("ingress", 0, 100.0, start=20.0, end=40.0)
        )
        # attempt 1 (t=25) finds no 80 s slot before the deadline; the rival's
        # cancellation at t=30 frees one for attempt 2 (t=35)
        sim.at(30.0, lambda event: service.cancel(rival.rid, now=sim.now))
        sim.run()
        rebooks = [x for x in service.reservations() if x.origin == r.rid]
        assert rebooks and rebooks[-1].confirmed
        assert rebooks[-1].allocation.sigma >= 40.0 - 1e-9  # after the outage
        assert service.stats.rebook_attempts == 2  # one failed try, then success
        assert service.stats.rebooked == 1

    def test_rebooking_gives_up_on_dead_deadline(self):
        sim = Simulator()
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        injector = FaultInjector(
            sim, service, rebook=BackoffSchedule(base=5.0, multiplier=2.0)
        )
        # outage covers the rest of the window: the residual can never fit
        r = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=100.0, now=0.0)
        injector.schedule_fault(PortFault.outage("egress", 0, 100.0, start=50.0, end=100.0))
        sim.run()
        assert r.state(sim.now) == ReservationState.DISPLACED
        assert all(x.origin != r.rid for x in service.reservations())

    def test_maybe_abort_only_hits_live_window(self):
        sim = Simulator()
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        injector = FaultInjector(sim, service, seed=3)
        r = service.submit(ingress=0, egress=0, volume=1000.0, deadline=100.0, now=0.0)
        fault = injector.maybe_abort(r, abort_rate=1.0)
        assert fault is not None
        assert r.allocation.sigma <= fault.at < r.allocation.tau
        # rejected reservations can't abort
        bad = service.submit(ingress=0, egress=0, volume=9000.0, deadline=95.0, now=1.0)
        assert not bad.confirmed
        assert injector.maybe_abort(bad, abort_rate=1.0) is None


def _workload(rng, platform, n):
    requests = []
    for rid in range(n):
        t0 = rng.uniform(0.0, 300.0)
        requests.append(
            Request(
                rid=rid,
                ingress=rng.randrange(platform.num_ingress),
                egress=rng.randrange(platform.num_egress),
                volume=rng.uniform(500.0, 8000.0),
                t_start=t0,
                t_end=t0 + rng.uniform(120.0, 400.0),
                max_rate=100.0,
            )
        )
    return requests


class TestFaultDrill:
    """End-to-end acceptance drill: outage + mid-flight aborts + recovery."""

    def test_drill_recovers_and_replays(self):
        platform = Platform.uniform(3, 3, 100.0)
        requests = _workload(random.Random(11), platform, 60)
        journal = Journal()
        report = run_fault_drill(
            platform,
            requests,
            abort_rate=0.3,
            faults=[PortFault.outage("egress", 0, 100.0, start=150.0, end=260.0)],
            rebook=BackoffSchedule(base=10.0, multiplier=2.0, jitter=0.25),
            backlog_limit=8,
            journal=journal,
            seed=5,
        )
        service = report.service
        stats = service.stats

        # the drill actually exercised the machinery (an abort scheduled on
        # an already-displaced reservation is a no-op, hence <=)
        assert stats.aborted >= 5
        assert stats.aborted <= len(report.aborts)
        assert stats.degradations == 1
        assert stats.displaced >= 1
        assert stats.wasted_volume > 0.0
        assert stats.freed_volume > 0.0

        # displaced residuals were rebooked with backoff
        assert stats.rebook_attempts >= 1
        for r in service.reservations():
            if r.origin is None or not r.confirmed:
                continue
            parent = service.get(r.origin)
            if parent.terminated_at is None:
                continue  # backlog re-admission of a rejected request
            assert r.request.volume == pytest.approx(parent.residual)
            assert r.allocation.sigma >= parent.terminated_at

        # Eq. 1 holds under the degraded capacities, and the surviving
        # schedule passes the ground-truth checker
        assert service.max_overcommit() <= 1e-6
        surviving, result = service.surviving_schedule()
        verify_schedule(
            platform,
            surviving,
            result,
            enforce_window=False,  # rebooked windows open at the rebook time
            degradations=service.degradations(),
        )

        # crash recovery: replaying the journal rebuilds identical state
        rebuilt = ReservationService.replay(journal)
        assert rebuilt.snapshot() == service.snapshot()

    def test_drill_without_faults_matches_plain_service(self):
        platform = Platform.uniform(2, 2, 100.0)
        requests = _workload(random.Random(3), platform, 20)
        report = run_fault_drill(platform, requests)
        assert report.aborts == []
        assert report.service.stats.aborted == 0
        assert report.service.max_overcommit() <= 1e-6


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["submit", "cancel", "abort", "degrade"]),
            st.floats(1.0, 40.0, allow_nan=False),        # dt
            st.floats(100.0, 30_000.0, allow_nan=False),  # volume / 100*amount
            st.integers(0, 1),
            st.integers(0, 1),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_faulty_interleavings_never_overcommit(ops):
    """Property: submit/cancel/abort/degrade keeps Eq. 1 under time-varying
    capacity, and the surviving schedule always verifies."""
    platform = Platform.uniform(2, 2, 100.0)
    service = ReservationService(platform, backlog_limit=4)
    now = 0.0
    live: list[int] = []
    for op, dt, volume, a, b in ops:
        now += dt
        if op == "submit" or (op in ("cancel", "abort") and not live):
            r = service.submit(
                ingress=a, egress=b, volume=volume, deadline=now + 600.0, now=now
            )
            if r.confirmed:
                live.append(r.rid)
        elif op == "cancel":
            service.cancel(live.pop(0), now=now)
        elif op == "abort":
            service.abort(live.pop(), now=now)
        else:  # degrade; windows always open at the current clock
            side = "ingress" if a == 0 else "egress"
            service.degrade(
                side=side,
                port=b,
                amount=min(volume / 100.0, 100.0),
                start=now,
                end=now + dt + 10.0,
                now=now,
            )
            live = [
                rid
                for rid in live
                if service.get(rid).state(now)
                in (ReservationState.CONFIRMED, ReservationState.ACTIVE)
            ]
    assert service.max_overcommit() <= 1e-6
    surviving, result = service.surviving_schedule()
    verify_schedule(
        platform,
        surviving,
        result,
        enforce_window=False,
        degradations=service.degradations(),
    )
