"""Tests for the operation journal and crash-recovery replay."""

import json

import pytest

from repro.control import Journal, JournalEntry, ReservationService
from repro.control.journal import JOURNAL_FORMAT
from repro.core import ConfigurationError, Platform
from repro.schedulers import FractionOfMaxPolicy


@pytest.fixture
def platform():
    return Platform.uniform(2, 2, 100.0)


class TestJournalEntry:
    def test_unknown_op_rejected(self):
        with pytest.raises(ConfigurationError):
            JournalEntry(op="frobnicate", now=0.0, args={})

    def test_round_trip_dict(self):
        entry = JournalEntry(op="cancel", now=3.5, args={"rid": 7})
        again = JournalEntry.from_dict(entry.to_dict())
        assert again.op == "cancel"
        assert again.now == 3.5
        assert dict(again.args) == {"rid": 7}


class TestSerialisation:
    def test_jsonl_round_trip(self, platform):
        journal = Journal()
        ReservationService(platform, journal=journal).submit(
            ingress=0, egress=1, volume=100.0, deadline=50.0, now=0.0
        )
        text = journal.to_jsonl()
        again = Journal.from_jsonl(text)
        assert again.header == journal.header
        assert len(again) == 1
        assert again.entries[0].op == "submit"

    def test_header_first_line_has_format_tag(self, platform):
        journal = Journal()
        ReservationService(platform, journal=journal)
        first = json.loads(journal.to_jsonl().splitlines()[0])
        assert first["format"] == JOURNAL_FORMAT
        assert first["platform"] == platform.to_dict()

    def test_rejects_foreign_format(self):
        with pytest.raises(ConfigurationError):
            Journal.from_jsonl('{"format": "something-else/9"}\n')

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            Journal.from_jsonl("")

    def test_file_backed_appends(self, platform, tmp_path):
        path = tmp_path / "ops.jsonl"
        journal = Journal(path=path)
        service = ReservationService(platform, journal=journal)
        service.submit(ingress=0, egress=1, volume=100.0, deadline=50.0, now=0.0)
        service.cancel(0, now=1.0)
        # every append hit the disk immediately: load without a save() call
        loaded = Journal.load(path)
        assert [e.op for e in loaded] == ["submit", "cancel"]
        assert loaded.header == journal.header

    def test_save_load_round_trip(self, platform, tmp_path):
        journal = Journal()
        service = ReservationService(platform, journal=journal)
        service.submit(ingress=0, egress=1, volume=100.0, deadline=50.0, now=0.0)
        path = tmp_path / "saved.jsonl"
        journal.save(path)
        assert Journal.load(path).to_jsonl() == journal.to_jsonl()


class TestReplay:
    def test_replay_requires_header(self):
        with pytest.raises(ConfigurationError):
            ReservationService.replay(Journal())

    def test_replay_rebuilds_identical_state(self, platform):
        journal = Journal()
        service = ReservationService(
            platform,
            policy=FractionOfMaxPolicy(0.5),
            backlog_limit=4,
            journal=journal,
        )
        service.submit(ingress=0, egress=0, volume=20_000.0, deadline=500.0, now=0.0)
        service.submit(ingress=0, egress=0, volume=10_000.0, deadline=120.0, now=1.0)
        service.submit_striped(sources=[0, 1], egress=1, volume=500.0, deadline=100.0, now=2.0)
        service.abort(0, now=10.0)
        service.degrade(side="egress", port=0, amount=100.0, start=20.0, end=40.0, now=20.0)
        service.cancel(1, now=25.0) if service.get(1).confirmed else None

        rebuilt = ReservationService.replay(journal)
        assert rebuilt.snapshot() == service.snapshot()
        assert rebuilt.policy.name == service.policy.name
        assert rebuilt.backlog_limit == 4

    def test_replay_from_disk_after_crash(self, platform, tmp_path):
        path = tmp_path / "wal.jsonl"
        service = ReservationService(platform, backlog_limit=2, journal=Journal(path=path))
        service.submit(ingress=0, egress=1, volume=5000.0, deadline=100.0, now=0.0)
        service.submit(ingress=1, egress=0, volume=3000.0, deadline=80.0, now=5.0)
        service.abort(0, now=10.0)
        before = service.snapshot()
        del service  # "crash"
        rebuilt = ReservationService.replay(Journal.load(path))
        assert rebuilt.snapshot() == before
