"""Tests for the extended studies and the capacity planner."""

import numpy as np
import pytest

from repro.core import Platform
from repro.experiments import (
    capacity_for_accept_rate,
    diurnal_load,
    localsearch_study,
    optimality_gap_flexible,
    rtt_unfairness_study,
)
from repro.schedulers import GreedyFlexible, MinRatePolicy
from repro.workload import FlexibleWorkload, PoissonArrivals


class TestOptimalityGap:
    def test_fractions_bounded(self):
        table, chart = optimality_gap_flexible(gaps=(2.0,), n_requests=30, seeds=(0,))
        row = dict(zip(table.headers, table.rows[0]))
        for col in ("greedy", "window", "bookahead"):
            assert 0.0 <= row[col] <= 1.0 + 1e-9
        assert row["bookahead"] >= row["greedy"] - 1e-9
        assert chart


class TestRttUnfairness:
    def test_monotone_decreasing_shares(self):
        table, _ = rtt_unfairness_study(rtts=(0.01, 0.05, 0.2))
        reno = table.column("reno_share")
        assert reno[0] == pytest.approx(1.0)
        assert all(a > b for a, b in zip(reno, reno[1:]))

    def test_bic_fairer_than_reno(self):
        table, _ = rtt_unfairness_study(rtts=(0.01, 0.3))
        assert table.rows[1][2] > table.rows[1][1]  # bic share > reno share

    def test_reservation_constant(self):
        table, _ = rtt_unfairness_study()
        assert all(v == 1.0 for v in table.column("reservation_share"))


class TestDiurnal:
    def test_runs_and_shapes(self):
        table, _ = diurnal_load(amplitudes=(0.0, 0.9), n_requests=200, seeds=(0,))
        assert len(table.rows) == 2
        # burstier arrivals should not help acceptance
        assert table.rows[1][1] <= table.rows[0][1] + 0.05


class TestLocalSearchStudy:
    def test_search_tops_fcfs(self):
        table, _ = localsearch_study(loads=(8.0,), n_requests=60, iterations=60, seeds=(0,))
        row = dict(zip(table.headers, table.rows[0]))
        assert row["localsearch"] >= row["fcfs"] - 1e-9


class TestCapacityPlanning:
    def _make_problem(self, platform, seed):
        workload = FlexibleWorkload(platform, PoissonArrivals(2.0))
        return workload.generate(120, np.random.default_rng(seed))

    def test_finds_scale(self):
        base = Platform.paper_platform()
        result = capacity_for_accept_rate(
            base,
            self._make_problem,
            GreedyFlexible(policy=MinRatePolicy()),
            target=0.8,
            seeds=(0,),
            max_iters=8,
        )
        assert result.accept_rate >= 0.8
        assert result.scale <= 16.0
        # verification: the returned platform indeed achieves the target
        check = GreedyFlexible(policy=MinRatePolicy()).schedule(
            self._make_problem(result.platform, 0)
        )
        assert check.accept_rate >= 0.8 - 1e-9

    def test_already_sufficient(self):
        base = Platform.paper_platform()
        result = capacity_for_accept_rate(
            base,
            self._make_problem,
            GreedyFlexible(policy=MinRatePolicy()),
            target=0.01,
            seeds=(0,),
            lo=1.0,
        )
        assert result.scale == pytest.approx(1.0)

    def test_unreachable_target(self):
        base = Platform.uniform(2, 2, 0.001)
        # even scaled x16 the platform is far too small for these volumes
        with pytest.raises(ValueError, match="reaches only"):
            capacity_for_accept_rate(
                base,
                self._make_problem,
                GreedyFlexible(),
                target=0.99,
                seeds=(0,),
                hi=2.0,
            )

    def test_bad_target(self):
        with pytest.raises(ValueError):
            capacity_for_accept_rate(
                Platform.paper_platform(), self._make_problem, GreedyFlexible(), target=0.0
            )
