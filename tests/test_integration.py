"""Cross-module integration tests.

These exercise whole pipelines: every registered experiment runs end to
end at a tiny size; every registered scheduler produces a verifiable
schedule on its kind of workload; results survive serialisation; rejection
diagnostics are consistent.
"""

import pytest

from repro.core import ScheduleResult, verify_schedule
from repro.experiments import FIGURES
from repro.metrics import Table, evaluate
from repro.schedulers import available_schedulers, make_scheduler
from repro.workload import paper_flexible_workload, paper_rigid_workload

RIGID_SCHEDULERS = {"fcfs-rigid", "fifo-slots", "cumulated-slots", "minbw-slots", "minvol-slots", "localsearch"}

# experiments that take no workload-size parameters
_NO_SIZE = {"rtt-unfairness"}
# custom tiny parameterisations where the generic one doesn't fit
_CUSTOM = {
    "localsearch": dict(loads=(8.0,), n_requests=40, iterations=20, seeds=(0,)),
    "coallocation": dict(fs=("min-bw", 1.0), n_jobs=60, seeds=(0,)),
    "optgap": dict(gaps=(2.0,), n_requests=25, seeds=(0,)),
}


class TestEveryExperimentRuns:
    @pytest.mark.parametrize("name", sorted(FIGURES))
    def test_experiment(self, name):
        fn = FIGURES[name]
        if name in _NO_SIZE:
            table, chart = fn()
        elif name in _CUSTOM:
            table, chart = fn(**_CUSTOM[name])
        else:
            table, chart = fn(n_requests=80, seeds=(0,))
        assert isinstance(table, Table)
        assert table.rows
        # every table renders in all three formats
        assert table.to_text()
        assert table.to_markdown()
        assert table.to_csv()


class TestEverySchedulerVerifies:
    @pytest.mark.parametrize("name", sorted(available_schedulers()))
    def test_scheduler(self, name):
        if name in RIGID_SCHEDULERS:
            problem = paper_rigid_workload(6.0, 60, seed=5)
        else:
            problem = paper_flexible_workload(1.0, 60, seed=5)
        options = {"iterations": 20, "restarts": 1} if name == "localsearch" else {}
        scheduler = make_scheduler(name, **options)
        result = scheduler.schedule(problem)
        verify_schedule(problem.platform, problem.requests, result)
        assert result.num_decided == problem.num_requests
        # metrics pipeline consumes any scheduler's result
        report = evaluate(problem, result)
        assert 0.0 <= report.accept_rate <= 1.0

    @pytest.mark.parametrize("name", sorted(available_schedulers()))
    def test_result_roundtrip(self, name):
        if name in RIGID_SCHEDULERS:
            problem = paper_rigid_workload(6.0, 30, seed=6)
        else:
            problem = paper_flexible_workload(2.0, 30, seed=6)
        options = {"iterations": 10, "restarts": 1} if name == "localsearch" else {}
        result = make_scheduler(name, **options).schedule(problem)
        clone = ScheduleResult.from_dict(result.to_dict())
        assert set(clone.accepted) == set(result.accepted)
        assert clone.rejected == result.rejected
        assert clone.rejection_reasons == result.rejection_reasons


class TestRejectionDiagnostics:
    def test_reasons_cover_all_rejections(self):
        problem = paper_flexible_workload(0.3, 300, seed=7)
        for name in ("greedy", "window", "bookahead", "retry-greedy"):
            result = make_scheduler(name).schedule(problem)
            assert set(result.rejection_reasons) == result.rejected

    def test_breakdown_sums(self):
        problem = paper_flexible_workload(0.3, 300, seed=8)
        result = make_scheduler("window").schedule(problem)
        breakdown = result.rejection_breakdown()
        assert sum(breakdown.values()) == result.num_rejected
        assert set(breakdown) <= {"capacity", "deadline"}

    def test_window_reports_deadline_kills(self):
        # long epochs: most rejections at heavy load come from the batching
        # delay blowing deadlines
        problem = paper_flexible_workload(0.3, 300, seed=9)
        result = make_scheduler("window", t_step=3200.0).schedule(problem)
        breakdown = result.rejection_breakdown()
        assert breakdown.get("deadline", 0) > 0
