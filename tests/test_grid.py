"""Tests for the grid job co-allocation layer."""

import numpy as np
import pytest

from repro.core import InvalidRequestError, Platform, Request, ConfigurationError
from repro.grid import GridJob, JobSimulator, random_jobs
from repro.schedulers import FractionOfMaxPolicy, GreedyFlexible, MinRatePolicy


@pytest.fixture
def platform():
    return Platform.uniform(2, 2, 100.0)


def job(rid, volume=1000.0, window=100.0, max_rate=50.0, cpus=4, cpu_time=200.0, t0=0.0):
    request = Request(rid, 0, 1, volume=volume, t_start=t0, t_end=t0 + window, max_rate=max_rate)
    return GridJob(request=request, cpus=cpus, cpu_time=cpu_time)


class TestGridJob:
    def test_properties(self):
        j = job(3)
        assert j.rid == 3
        assert j.site == 1

    def test_validation(self):
        with pytest.raises(InvalidRequestError):
            job(0, cpus=0)
        with pytest.raises(InvalidRequestError):
            job(0, cpu_time=0.0)


class TestJobSimulator:
    def test_accounting_single_job(self, platform):
        sim = JobSimulator(platform, [job(0, volume=1000.0, max_rate=50.0, cpus=4, cpu_time=200.0)])
        result = sim.run(GreedyFlexible(policy=FractionOfMaxPolicy(1.0)))
        outcome = result.outcomes[0]
        # transfer at 50 MB/s -> staged at 20; finish 220; held 4 * 220
        assert outcome.staged_at == pytest.approx(20.0)
        assert outcome.finished_at == pytest.approx(220.0)
        assert outcome.cpu_seconds_held == pytest.approx(4 * 220.0)
        assert result.completed_rate == 1.0
        assert result.mean_completion_time() == pytest.approx(220.0)

    def test_min_bw_holds_cpus_longer(self, platform):
        jobs = [job(0)]
        slow = JobSimulator(platform, jobs).run(GreedyFlexible(policy=MinRatePolicy()))
        fast = JobSimulator(platform, jobs).run(GreedyFlexible(policy=FractionOfMaxPolicy(1.0)))
        assert slow.outcomes[0].cpu_seconds_held > fast.outcomes[0].cpu_seconds_held

    def test_rejected_job_holds_nothing(self, platform):
        jobs = [
            job(0, max_rate=100.0),
            job(1, max_rate=100.0, t0=1.0, window=10.5),  # port busy, deadline tight
        ]
        result = JobSimulator(platform, jobs).run(GreedyFlexible(policy=FractionOfMaxPolicy(1.0)))
        assert not result.outcomes[1].admitted
        assert result.outcomes[1].cpu_seconds_held == 0.0
        assert result.completed_rate == pytest.approx(0.5)

    def test_duplicate_rids_rejected(self, platform):
        with pytest.raises(ConfigurationError):
            JobSimulator(platform, [job(0), job(0)])

    def test_tuning_tradeoff_shape(self):
        """§2.3: larger f lowers CPU·s per job but also the completed rate."""
        p = Platform.paper_platform()
        jobs = random_jobs(p, 250, np.random.default_rng(1), mean_interarrival=5.0)
        sim = JobSimulator(p, jobs)
        min_bw = sim.run(GreedyFlexible(policy=MinRatePolicy()))
        full = sim.run(GreedyFlexible(policy=FractionOfMaxPolicy(1.0)))
        assert full.cpu_seconds_per_job() < min_bw.cpu_seconds_per_job()
        assert full.completed_rate < min_bw.completed_rate
        assert full.mean_completion_time() < min_bw.mean_completion_time()


class TestRandomJobs:
    def test_shapes_and_bounds(self):
        p = Platform.paper_platform()
        jobs = random_jobs(
            p, 50, np.random.default_rng(2), cpu_time_range=(100.0, 1000.0), max_cpus=8
        )
        assert len(jobs) == 50
        for j in jobs:
            assert 1 <= j.cpus <= 8
            assert 100.0 <= j.cpu_time <= 1000.0

    def test_validation(self):
        p = Platform.paper_platform()
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            random_jobs(p, 5, rng, max_cpus=0)
        with pytest.raises(ConfigurationError):
            random_jobs(p, 5, rng, cpu_time_range=(10.0, 5.0))


class TestAbortInjection:
    def _scheduled(self):
        from repro.workload import paper_flexible_workload
        from repro.schedulers import GreedyFlexible

        prob = paper_flexible_workload(0.5, 300, seed=13)
        return prob, GreedyFlexible().schedule(prob)

    def test_no_aborts_at_zero_rate(self):
        from repro.grid import simulate_aborts

        prob, result = self._scheduled()
        report = simulate_aborts(prob, result, 0.0, np.random.default_rng(0))
        assert report.num_aborted == 0
        assert report.wasted_volume == 0.0
        # NOTE: salvageable may be positive even with no aborts — greedy
        # rejected some requests that an offline book-ahead pass can place.
        baseline = report.num_salvageable
        freed = simulate_aborts(prob, result, 0.6, np.random.default_rng(0))
        assert freed.num_salvageable >= baseline  # aborts only free capacity

    def test_all_abort_at_one(self):
        from repro.grid import simulate_aborts

        prob, result = self._scheduled()
        report = simulate_aborts(prob, result, 1.0, np.random.default_rng(1), salvage=False)
        assert report.num_aborted == result.num_accepted
        assert report.wasted_volume > 0
        assert report.freed_capacity_time > 0

    def test_accounting_conserves_volume(self):
        from repro.grid import simulate_aborts

        prob, result = self._scheduled()
        report = simulate_aborts(prob, result, 1.0, np.random.default_rng(2), salvage=False)
        total = sum(prob.requests.by_rid(rid).volume for rid in result.accepted)
        assert report.wasted_volume + report.freed_capacity_time == pytest.approx(total)

    def test_salvage_readmits_some(self):
        from repro.grid import simulate_aborts

        prob, result = self._scheduled()
        assert result.num_rejected > 0
        report = simulate_aborts(prob, result, 0.5, np.random.default_rng(3), salvage=True)
        assert report.num_salvageable > 0
        assert set(report.salvageable) <= result.rejected

    def test_validation(self):
        from repro.grid import simulate_aborts

        prob, result = self._scheduled()
        with pytest.raises(ConfigurationError):
            simulate_aborts(prob, result, 1.5, np.random.default_rng(0))
