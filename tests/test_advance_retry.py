"""Tests for the book-ahead and retry extensions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    Platform,
    ProblemInstance,
    Request,
    RequestSet,
    verify_schedule,
)
from repro.schedulers import (
    EarliestStartFlexible,
    FractionOfMaxPolicy,
    GreedyFlexible,
    MinRatePolicy,
    RetryGreedyFlexible,
)
from repro.workload import paper_flexible_workload


def flex(rid, i, e, volume, t0, window, max_rate):
    return Request(rid, i, e, volume=volume, t_start=t0, t_end=t0 + window, max_rate=max_rate)


def problem(requests, capacity=100.0):
    return ProblemInstance(Platform.uniform(2, 2, capacity), RequestSet(requests))


class TestEarliestStart:
    def test_defers_to_free_slot(self):
        # rid 0 saturates the port for [0, 10); rid 1 arrives at 1 with a
        # long window: GREEDY rejects it, book-ahead starts it at 10.
        reqs = [
            flex(0, 0, 1, 1000.0, 0.0, 100.0, 100.0),
            flex(1, 0, 1, 1000.0, 1.0, 100.0, 100.0),
        ]
        greedy = GreedyFlexible(policy=FractionOfMaxPolicy(1.0)).schedule(problem(reqs))
        assert 1 in greedy.rejected

        book = EarliestStartFlexible(policy=FractionOfMaxPolicy(1.0)).schedule(problem(reqs))
        assert book.num_accepted == 2
        assert book.accepted[1].sigma == pytest.approx(10.0)
        verify_schedule(problem(reqs).platform, RequestSet(reqs), book)

    def test_rejects_when_window_cannot_fit(self):
        reqs = [
            flex(0, 0, 1, 1000.0, 0.0, 100.0, 100.0),
            flex(1, 0, 1, 1000.0, 1.0, 12.0, 100.0),  # must finish by 13
        ]
        book = EarliestStartFlexible(policy=FractionOfMaxPolicy(1.0)).schedule(problem(reqs))
        assert 1 in book.rejected

    def test_prefers_earliest_start(self):
        reqs = [
            flex(0, 0, 1, 500.0, 0.0, 100.0, 100.0),  # occupies [0, 5) at 100
            flex(1, 0, 1, 100.0, 2.0, 200.0, 50.0),
        ]
        book = EarliestStartFlexible(policy=MinRatePolicy()).schedule(problem(reqs))
        # MinRate of rid 1 at its arrival is tiny (100/200); it fits alongside
        # immediately since 100 - 100 = 0 free though... port is full until 5
        alloc = book.accepted[1]
        assert alloc.sigma >= 2.0
        verify_schedule(problem(reqs).platform, RequestSet(reqs), book)

    def test_dominates_greedy_on_paper_workload(self):
        prob = paper_flexible_workload(1.0, 400, seed=3)
        for policy in (MinRatePolicy(), FractionOfMaxPolicy(1.0)):
            greedy = GreedyFlexible(policy=policy).schedule(prob)
            book = EarliestStartFlexible(policy=policy).schedule(prob)
            verify_schedule(prob.platform, prob.requests, book)
            assert book.num_accepted >= greedy.num_accepted

    def test_starts_within_window(self):
        prob = paper_flexible_workload(0.5, 300, seed=4)
        book = EarliestStartFlexible().schedule(prob)
        for rid, alloc in book.accepted.items():
            request = prob.requests.by_rid(rid)
            assert alloc.sigma >= request.t_start - 1e-9
            assert alloc.tau <= request.t_end * (1 + 1e-9)

    def test_empty(self):
        assert EarliestStartFlexible().schedule(problem([])).num_decided == 0


class TestRetryGreedy:
    def test_retry_succeeds_after_departure(self):
        # port busy [0, 10); rid 1 (arrives at 1, deadline far) retries at
        # 1 + 60 > 10 and gets in.
        reqs = [
            flex(0, 0, 1, 1000.0, 0.0, 1000.0, 100.0),
            flex(1, 0, 1, 1000.0, 1.0, 1000.0, 100.0),
        ]
        retry = RetryGreedyFlexible(policy=FractionOfMaxPolicy(1.0), backoff=60.0)
        result = retry.schedule(problem(reqs))
        assert result.num_accepted == 2
        assert result.accepted[1].sigma == pytest.approx(61.0)
        assert result.meta["retries"] == 1
        verify_schedule(problem(reqs).platform, RequestSet(reqs), result)

    def test_gives_up_when_deadline_unreachable(self):
        reqs = [
            flex(0, 0, 1, 1000.0, 0.0, 1000.0, 100.0),
            flex(1, 0, 1, 1000.0, 1.0, 15.0, 100.0),  # dead before first retry
        ]
        result = RetryGreedyFlexible(policy=FractionOfMaxPolicy(1.0), backoff=60.0).schedule(problem(reqs))
        assert 1 in result.rejected

    def test_max_attempts_one_is_plain_greedy(self):
        prob = paper_flexible_workload(1.0, 300, seed=5)
        plain = GreedyFlexible().schedule(prob)
        retry1 = RetryGreedyFlexible(max_attempts=1).schedule(prob)
        assert set(retry1.accepted) == set(plain.accepted)
        assert retry1.meta["retries"] == 0

    def test_more_attempts_more_accepts(self):
        prob = paper_flexible_workload(0.5, 400, seed=6)
        few = RetryGreedyFlexible(max_attempts=1).schedule(prob)
        many = RetryGreedyFlexible(max_attempts=8).schedule(prob)
        assert many.num_accepted >= few.num_accepted
        verify_schedule(prob.platform, prob.requests, many)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryGreedyFlexible(backoff=0.0)
        with pytest.raises(ConfigurationError):
            RetryGreedyFlexible(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            RetryGreedyFlexible(max_attempts=0)

    def test_all_decided(self):
        prob = paper_flexible_workload(1.0, 200, seed=7)
        result = RetryGreedyFlexible().schedule(prob)
        assert result.num_decided == prob.num_requests


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000), gap=st.floats(0.3, 5.0, allow_nan=False))
def test_extensions_always_verify(seed, gap):
    """Property: book-ahead and retry schedules satisfy Eq. 1 + windows."""
    prob = paper_flexible_workload(gap, 120, seed=seed)
    for scheduler in (
        EarliestStartFlexible(policy=FractionOfMaxPolicy(0.5)),
        RetryGreedyFlexible(policy=MinRatePolicy(), backoff=30.0, max_attempts=4),
    ):
        result = scheduler.schedule(prob)
        verify_schedule(prob.platform, prob.requests, result)
        assert result.num_decided == prob.num_requests
