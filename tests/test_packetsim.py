"""Tests for the bottleneck congestion model (packetsim)."""

import numpy as np
import pytest

from repro.core import ConfigurationError
from repro.packetsim import AimdFlow, BottleneckLink, LinkSimulation, PacedFlow


def make_link(capacity=125.0, buffer=12.5):
    return BottleneckLink(capacity=capacity, buffer=buffer)


class TestFlows:
    def test_aimd_rate(self):
        flow = AimdFlow(rtt=0.1, mss=1460.0, cwnd=100.0)
        assert flow.rate() == pytest.approx(100 * 1460 / 0.1 / 1e6)

    def test_aimd_additive_increase(self):
        flow = AimdFlow(rtt=0.1, cwnd=10.0)
        flow.step(0.1, lost=False)
        assert flow.cwnd == pytest.approx(11.0)

    def test_aimd_multiplicative_decrease(self):
        flow = AimdFlow(rtt=0.1, cwnd=64.0)
        flow.step(0.1, lost=True)
        assert flow.cwnd == pytest.approx(32.0)

    def test_aimd_floor_one_mss(self):
        flow = AimdFlow(rtt=0.1, cwnd=1.2)
        flow.step(0.1, lost=True)
        assert flow.cwnd == 1.0

    def test_paced_constant(self):
        flow = PacedFlow(reserved=55.0)
        flow.step(0.1, lost=True)
        assert flow.rate() == 55.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AimdFlow(rtt=0.0)
        with pytest.raises(ConfigurationError):
            PacedFlow(reserved=0.0)
        with pytest.raises(ConfigurationError):
            BottleneckLink(capacity=0.0, buffer=1.0)
        with pytest.raises(ConfigurationError):
            BottleneckLink(capacity=1.0, buffer=-1.0)


class TestLinkSimulation:
    def test_paced_only_exact_delivery(self):
        sim = LinkSimulation(make_link(), [PacedFlow(50.0), PacedFlow(60.0)])
        result = sim.run(10.0)
        np.testing.assert_allclose(result.mean_goodput(), [50.0, 60.0])
        np.testing.assert_allclose(result.goodput_std(), 0.0, atol=1e-12)

    def test_protection_requires_admission(self):
        with pytest.raises(ConfigurationError, match="admission"):
            LinkSimulation(make_link(capacity=100.0), [PacedFlow(60.0), PacedFlow(60.0)])

    def test_overbooked_allowed_when_unprotected(self):
        sim = LinkSimulation(
            make_link(capacity=100.0),
            [PacedFlow(80.0), PacedFlow(80.0)],
            protect_paced=False,
        )
        result = sim.run(20.0)
        # drop-tail sheds the 60 MB/s excess once the buffer fills
        assert result.mean_goodput().sum() < 160.0
        assert result.utilization(100.0) <= 1.2

    def test_aimd_sawtooth_under_congestion(self):
        flows = [AimdFlow(rtt=0.05, cwnd=3000.0), AimdFlow(rtt=0.05, cwnd=3000.0)]
        sim = LinkSimulation(make_link(), flows, protect_paced=False)
        result = sim.run(120.0, rng=np.random.default_rng(1))
        # congested AIMD flows oscillate: meaningful variance, capped mean
        assert np.all(result.goodput_std() > 1.0)
        assert result.mean_goodput().sum() <= 125.0 * 1.2

    def test_protected_reservation_is_exact_under_cross_traffic(self):
        """§5.4's claim: enforcement makes the granted rate exact."""
        flows = [PacedFlow(50.0), AimdFlow(rtt=0.02, cwnd=4000.0)]
        result = LinkSimulation(make_link(), flows, protect_paced=True).run(
            60.0, rng=np.random.default_rng(2)
        )
        paced_idx = result.labels.index("paced@50")
        assert result.goodput_std()[paced_idx] == pytest.approx(0.0, abs=1e-12)
        assert result.mean_goodput()[paced_idx] == pytest.approx(50.0)

    def test_unprotected_reservation_suffers(self):
        flows = [PacedFlow(50.0), AimdFlow(rtt=0.02, cwnd=8000.0)]
        result = LinkSimulation(make_link(), flows, protect_paced=False).run(
            60.0, rng=np.random.default_rng(3)
        )
        paced_idx = result.labels.index("paced@50")
        assert result.mean_goodput()[paced_idx] < 50.0
        assert result.goodput_std()[paced_idx] > 0.0

    def test_rtt_unfairness_emerges(self):
        """Short-RTT AIMD flows dominate long-RTT ones at the bottleneck."""
        flows = [AimdFlow(rtt=0.01, cwnd=1000.0), AimdFlow(rtt=0.2, cwnd=50.0)]
        result = LinkSimulation(make_link(), flows, protect_paced=False).run(
            180.0, rng=np.random.default_rng(4)
        )
        short, long_ = result.mean_goodput()
        assert short > 3 * long_

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LinkSimulation(make_link(), [])
        with pytest.raises(ConfigurationError):
            LinkSimulation(make_link(), [PacedFlow(1.0)], dt=0.0)
