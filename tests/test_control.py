"""Tests for the control plane: token bucket, port agents, distributed admission."""

import numpy as np
import pytest

from repro.control import ControlPlane, PortAgent, TokenBucket, enforce_series
from repro.core import CapacityError, ConfigurationError, verify_schedule
from repro.schedulers import FractionOfMaxPolicy, GreedyFlexible, MinRatePolicy
from repro.workload import paper_flexible_workload


class TestTokenBucket:
    def test_burst_allows_initial(self):
        tb = TokenBucket(rate=10.0, burst=100.0)
        assert tb.offer(0.0, 100.0)
        assert not tb.offer(0.0, 1.0)

    def test_refill(self):
        tb = TokenBucket(rate=10.0, burst=100.0)
        tb.offer(0.0, 100.0)
        assert not tb.offer(4.9, 50.0)
        assert tb.offer(5.0, 50.0)

    def test_never_exceeds_burst(self):
        tb = TokenBucket(rate=10.0, burst=50.0)
        tb.offer(0.0, 0.0)
        tb._advance(1000.0)
        assert tb.tokens == pytest.approx(50.0)

    def test_earliest_conforming(self):
        tb = TokenBucket(rate=10.0, burst=100.0)
        tb.offer(0.0, 100.0)
        assert tb.earliest_conforming(0.0, 50.0) == pytest.approx(5.0)
        assert tb.earliest_conforming(0.0, 200.0) == float("inf")

    def test_time_monotonicity_enforced(self):
        tb = TokenBucket(rate=1.0, burst=1.0)
        tb.offer(10.0, 0.5)
        with pytest.raises(ConfigurationError):
            tb.offer(5.0, 0.1)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=-1.0)
        tb = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            tb.offer(0.0, -1.0)

    def test_enforce_series_long_run_rate(self):
        # offered at 2x the bucket rate: about half the volume conforms
        tb = TokenBucket(rate=10.0, burst=10.0)
        times = np.arange(0.0, 1000.0, 0.5)
        sizes = np.full(times.shape, 10.0)  # 20 MB/s offered
        ok = enforce_series(tb, times, sizes)
        accepted_rate = sizes[ok].sum() / times[-1]
        assert accepted_rate == pytest.approx(10.0, rel=0.05)

    def test_enforce_series_validation(self):
        tb = TokenBucket(rate=1.0, burst=1.0)
        with pytest.raises(ConfigurationError):
            enforce_series(tb, np.array([0.0]), np.array([1.0, 2.0]))

    def test_reset(self):
        tb = TokenBucket(rate=1.0, burst=10.0)
        tb.offer(0.0, 10.0)
        tb.reset(100.0)
        assert tb.offer(100.0, 10.0)


class TestPortAgent:
    def test_hold_commit_release_cycle(self):
        agent = PortAgent(100.0)
        assert agent.hold(0.0, 60.0)
        assert agent.free(0.0) == pytest.approx(40.0)
        agent.commit(60.0, release_at=10.0)
        assert agent.committed == pytest.approx(60.0)
        assert agent.held == 0.0
        assert agent.free(10.0) == pytest.approx(100.0)

    def test_hold_rejected_when_full(self):
        agent = PortAgent(100.0)
        agent.hold(0.0, 80.0)
        assert not agent.hold(0.0, 30.0)
        assert agent.held == pytest.approx(80.0)

    def test_unhold(self):
        agent = PortAgent(100.0)
        agent.hold(0.0, 50.0)
        agent.unhold(50.0)
        assert agent.free(0.0) == pytest.approx(100.0)

    def test_over_unhold_raises(self):
        agent = PortAgent(100.0)
        agent.hold(0.0, 10.0)
        with pytest.raises(CapacityError):
            agent.unhold(50.0)

    def test_bad_capacity(self):
        with pytest.raises(CapacityError):
            PortAgent(0.0)


class TestControlPlane:
    def test_zero_latency_matches_greedy(self):
        """With instant signalling the plane IS Algorithm 2."""
        for policy in (MinRatePolicy(), FractionOfMaxPolicy(1.0), FractionOfMaxPolicy(0.5)):
            prob = paper_flexible_workload(1.0, 300, seed=17)
            plane = ControlPlane(policy=policy, latency=0.0)
            greedy = GreedyFlexible(policy=policy)
            plane_result = plane.schedule(prob)
            greedy_result = greedy.schedule(prob)
            assert set(plane_result.accepted) == set(greedy_result.accepted)
            verify_schedule(prob.platform, prob.requests, plane_result)

    def test_latency_delays_starts(self):
        prob = paper_flexible_workload(2.0, 200, seed=18)
        plane = ControlPlane(policy=FractionOfMaxPolicy(1.0), latency=5.0)
        result = plane.schedule(prob)
        verify_schedule(prob.platform, prob.requests, result)
        for rid, alloc in result.accepted.items():
            assert alloc.sigma == pytest.approx(prob.requests.by_rid(rid).t_start + 10.0)

    def test_latency_costs_acceptance(self):
        prob = paper_flexible_workload(0.5, 400, seed=19)
        fast = ControlPlane(policy=FractionOfMaxPolicy(1.0), latency=0.0).schedule(prob)
        slow = ControlPlane(policy=FractionOfMaxPolicy(1.0), latency=30.0).schedule(prob)
        assert slow.num_accepted <= fast.num_accepted

    def test_message_count(self):
        prob = paper_flexible_workload(5.0, 100, seed=20)
        result = ControlPlane(latency=1.0).schedule(prob)
        # every probed request costs 2 messages (probe + reply) at minimum,
        # plus a commit for accepted ones; local rejects cost none
        probed = result.meta["messages"]
        assert probed >= 2 * result.num_accepted + result.num_accepted
        assert result.meta["messages"] <= 3 * prob.num_requests

    def test_all_decided_and_valid(self):
        prob = paper_flexible_workload(1.0, 300, seed=21)
        result = ControlPlane(policy=MinRatePolicy(), latency=2.0).schedule(prob)
        assert result.num_decided == prob.num_requests
        verify_schedule(prob.platform, prob.requests, result)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            ControlPlane(latency=-1.0)


class TestControlPlaneEdgeCases:
    def test_transfer_shorter_than_latency(self):
        """A transfer finishing before the COMMIT reaches the egress must
        still release correctly (the max(tau, now) branch)."""
        from repro.core import Platform, ProblemInstance, Request, RequestSet

        platform = Platform.uniform(1, 1, 100.0)
        # 100 MB at up to 100 MB/s: 1 s transfer; latency 5 s one-way
        requests = RequestSet(
            [
                Request(0, 0, 0, volume=100.0, t_start=0.0, t_end=1000.0, max_rate=100.0),
                Request(1, 0, 0, volume=100.0, t_start=50.0, t_end=1000.0, max_rate=100.0),
            ]
        )
        problem = ProblemInstance(platform, requests)
        plane = ControlPlane(policy=FractionOfMaxPolicy(1.0), latency=5.0)
        result = plane.schedule(problem)
        verify_schedule(problem.platform, problem.requests, result)
        # both fit: the first's bandwidth is fully released well before 50 s
        assert result.num_accepted == 2

    def test_zero_latency_message_count(self):
        prob = paper_flexible_workload(5.0, 50, seed=30)
        result = ControlPlane(latency=0.0).schedule(prob)
        # probe + reply per probed request, + commit per accepted
        assert result.meta["messages"] >= 2 * result.num_accepted
