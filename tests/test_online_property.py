"""Online-ness properties of the flexible heuristics.

The paper stresses the heuristics need "no a priori knowledge of the whole
set of requests" (§5).  These tests make that a checkable property: the
decision for any request must be identical whether or not the *future*
requests exist — a true statement for GREEDY (decisions at arrival) and
for WINDOW at epoch granularity.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProblemInstance, RequestSet
from repro.schedulers import FractionOfMaxPolicy, GreedyFlexible, MinRatePolicy, WindowFlexible
from repro.workload import paper_flexible_workload


def _prefix_problem(problem: ProblemInstance, k: int) -> ProblemInstance:
    ordered = list(problem.requests.sorted_by_arrival())
    return ProblemInstance(problem.platform, RequestSet(ordered[:k]))


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    gap=st.floats(0.3, 5.0, allow_nan=False),
    k=st.integers(1, 80),
    f=st.sampled_from(["min-bw", 0.5, 1.0]),
)
def test_greedy_is_online(seed, gap, k, f):
    """GREEDY's decision on the first k arrivals ignores the future."""
    problem = paper_flexible_workload(gap, 80, seed=seed)
    k = min(k, problem.num_requests)
    policy = MinRatePolicy() if f == "min-bw" else FractionOfMaxPolicy(float(f))
    scheduler = GreedyFlexible(policy=policy)

    full = scheduler.schedule(problem)
    prefix = scheduler.schedule(_prefix_problem(problem, k))
    prefix_rids = {r.rid for r in _prefix_problem(problem, k).requests}
    assert {rid for rid in full.accepted if rid in prefix_rids} == set(prefix.accepted)
    for rid, alloc in prefix.accepted.items():
        assert full.accepted[rid] == alloc


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_window_is_online_at_epoch_granularity(seed):
    """WINDOW's decisions in fully-elapsed epochs ignore later arrivals.

    Truncating the workload at an epoch boundary must leave all earlier
    epochs' decisions unchanged (the epoch grid is anchored at the first
    arrival, which the truncation preserves).
    """
    problem = paper_flexible_workload(1.0, 80, seed=seed)
    t_step = 200.0
    scheduler = WindowFlexible(t_step=t_step, policy=MinRatePolicy())
    full = scheduler.schedule(problem)

    ordered = list(problem.requests.sorted_by_arrival())
    t_begin = ordered[0].t_start
    # cut at the end of the 3rd epoch
    cut = t_begin + 3 * t_step
    prefix_requests = [r for r in ordered if r.t_start < cut]
    if not prefix_requests:
        return
    prefix = scheduler.schedule(ProblemInstance(problem.platform, RequestSet(prefix_requests)))
    prefix_rids = {r.rid for r in prefix_requests}
    assert {rid for rid in full.accepted if rid in prefix_rids} == set(prefix.accepted)
    for rid, alloc in prefix.accepted.items():
        assert full.accepted[rid] == alloc
