"""Tests for the time-indexed flexible LP upper bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Platform, ProblemInstance, Request, RequestSet
from repro.exact import flexible_lp_bound, max_requests_rigid_exact
from repro.schedulers import (
    EarliestStartFlexible,
    FractionOfMaxPolicy,
    GreedyFlexible,
    WindowFlexible,
)
from repro.workload import paper_flexible_workload, paper_rigid_workload


def flex(rid, i, e, volume, t0, window, max_rate):
    return Request(rid, i, e, volume=volume, t_start=t0, t_end=t0 + window, max_rate=max_rate)


class TestFlexibleLpBound:
    def test_unconstrained_accepts_all(self):
        reqs = [flex(i, 0, 1, 100.0, float(i), 100.0, 50.0) for i in range(4)]
        prob = ProblemInstance(Platform.uniform(2, 2, 1000.0), RequestSet(reqs))
        assert flexible_lp_bound(prob) == pytest.approx(4.0, abs=1e-6)

    def test_volume_limited(self):
        # one port, horizon 10 s at 100 MB/s = 1000 MB of capacity;
        # each request needs 600 MB in that window -> at most 1000/600
        reqs = [flex(i, 0, 0, 600.0, 0.0, 10.0, 100.0) for i in range(3)]
        prob = ProblemInstance(Platform.uniform(1, 1, 100.0), RequestSet(reqs))
        bound = flexible_lp_bound(prob)
        assert bound == pytest.approx(1000.0 / 600.0, rel=1e-6)

    def test_bounds_online_heuristics(self):
        prob = paper_flexible_workload(0.5, 80, seed=11)
        bound = flexible_lp_bound(prob)
        for scheduler in (
            GreedyFlexible(),
            WindowFlexible(t_step=200.0),
            EarliestStartFlexible(),
            GreedyFlexible(policy=FractionOfMaxPolicy(1.0)),
        ):
            assert scheduler.schedule(prob).num_accepted <= bound + 1e-6

    def test_at_least_rigid_milp_on_rigid_instances(self):
        # the flexible relaxation is looser than the rigid exact optimum
        prob = paper_rigid_workload(8.0, 14, seed=1)
        exact = max_requests_rigid_exact(prob).num_accepted
        assert flexible_lp_bound(prob) >= exact - 1e-6

    def test_coarsening_still_upper_bounds(self):
        prob = paper_flexible_workload(1.0, 60, seed=12)
        fine = flexible_lp_bound(prob, max_slots=500)
        coarse = flexible_lp_bound(prob, max_slots=20)
        accepted = EarliestStartFlexible().schedule(prob).num_accepted
        assert accepted <= fine + 1e-6
        assert fine <= coarse + 1e-6  # coarsening only loosens

    def test_empty(self):
        prob = ProblemInstance(Platform.uniform(1, 1, 10.0), RequestSet())
        assert flexible_lp_bound(prob) == 0.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_lp_bound_property(seed):
    """Property: the LP bound dominates every online schedule."""
    prob = paper_flexible_workload(1.0, 40, seed=seed)
    bound = flexible_lp_bound(prob)
    accepted = EarliestStartFlexible().schedule(prob).num_accepted
    assert accepted <= bound + 1e-6
