"""The gridlint engine: walking, suppression, output formats, exit codes."""

import json
import textwrap

import pytest

from repro.analysis import all_rules, run_analysis
from repro.analysis.cli import main
from repro.analysis.engine import (
    PARSE_ERROR_RULE,
    Finding,
    iter_python_files,
    validate_rule_ids,
)

CLEAN = """\
def shift(t0, dt):
    return t0 + dt
"""

#: One GL003 violation, unsuppressed.
VIOLATING = """\
def same(t_end, deadline):
    return t_end == deadline
"""

#: The same violation, suppressed with a reason.
SUPPRESSED = """\
def same(t_end, deadline):
    return t_end == deadline  # gridlint: disable=GL003 -- exact identity intended
"""


def _write(path, source):
    path.write_text(textwrap.dedent(source))
    return path


class TestWalker:
    def test_skips_pycache_and_hidden(self, tmp_path):
        _write(tmp_path / "keep.py", CLEAN)
        (tmp_path / "__pycache__").mkdir()
        _write(tmp_path / "__pycache__" / "skip.py", CLEAN)
        (tmp_path / ".hidden").mkdir()
        _write(tmp_path / ".hidden" / "skip.py", CLEAN)
        found = [p.name for p in iter_python_files([tmp_path])]
        assert found == ["keep.py"]

    def test_accepts_single_file(self, tmp_path):
        target = _write(tmp_path / "one.py", CLEAN)
        assert list(iter_python_files([target])) == [target]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            list(iter_python_files([tmp_path / "nope"]))


class TestSuppression:
    def test_finding_moves_to_suppressed(self, tmp_path):
        _write(tmp_path / "mod.py", SUPPRESSED)
        report = run_analysis([tmp_path], all_rules())
        assert report.findings == []
        assert len(report.suppressed) == 1
        sup = report.suppressed[0]
        assert sup.rule == "GL003"
        assert sup.suppressed is True
        assert sup.suppress_reason == "exact identity intended"

    def test_unsuppressed_stays_active(self, tmp_path):
        _write(tmp_path / "mod.py", VIOLATING)
        report = run_analysis([tmp_path], all_rules())
        assert [f.rule for f in report.findings] == ["GL003"]

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        _write(
            tmp_path / "mod.py",
            "def same(t_end, deadline):\n"
            "    return t_end == deadline  # gridlint: disable=GL001 -- wrong id\n",
        )
        report = run_analysis([tmp_path], all_rules())
        assert [f.rule for f in report.findings] == ["GL003"]

    def test_multi_rule_and_reasonless_suppression(self, tmp_path):
        _write(
            tmp_path / "mod.py",
            "def same(t_end, deadline):\n"
            "    return t_end == deadline  # gridlint: disable=GL001,GL003\n",
        )
        report = run_analysis([tmp_path], all_rules())
        assert report.findings == []
        assert report.suppressed[0].suppress_reason is None


class TestParseErrors:
    def test_unparsable_file_is_a_gl000_finding(self, tmp_path):
        _write(tmp_path / "broken.py", "def oops(:\n")
        report = run_analysis([tmp_path], all_rules())
        assert [f.rule for f in report.findings] == [PARSE_ERROR_RULE]
        assert report.exit_code == 1


class TestJsonOutput:
    def test_schema(self, tmp_path):
        _write(tmp_path / "bad.py", VIOLATING)
        _write(tmp_path / "ok.py", SUPPRESSED)
        report = run_analysis([tmp_path], all_rules())
        doc = json.loads(report.to_json())
        assert doc["version"] == 1
        assert doc["tool"] == "gridlint"
        assert doc["files_scanned"] == 2
        assert doc["summary"]["active"] == 1
        assert doc["summary"]["suppressed"] == 1
        assert doc["summary"]["by_rule"] == {"GL003": 1}
        (finding,) = doc["findings"]
        assert set(finding) == {
            "path", "line", "col", "rule", "message", "severity",
            "suppressed", "suppress_reason",
        }
        assert finding["rule"] == "GL003"
        assert finding["line"] == 2
        assert finding["suppressed"] is False

    def test_findings_sorted_and_stable(self, tmp_path):
        _write(tmp_path / "b.py", VIOLATING)
        _write(tmp_path / "a.py", VIOLATING)
        report = run_analysis([tmp_path], all_rules())
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", CLEAN)
        assert main([str(tmp_path)]) == 0

    def test_violations_exit_one(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", VIOLATING)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "GL003" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "missing")]) == 2

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", CLEAN)
        assert main(["--rules", "GL999", str(tmp_path)]) == 2

    def test_rule_selection_narrows_run(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", VIOLATING)
        # GL003 disabled: the float-eq violation is invisible.
        assert main(["--rules", "GL001", str(tmp_path)]) == 0

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("GL001", "GL002", "GL003", "GL004", "GL005", "GL006", "GL007"):
            assert rule_id in out

    def test_json_flag_emits_json(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", VIOLATING)
        assert main(["--format", "json", str(tmp_path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["active"] == 1


class TestValidateRuleIds:
    def test_normalises_case_and_whitespace(self):
        assert validate_rule_ids([" gl001 ", "GL003"], {"GL001", "GL003"}) == [
            "GL001",
            "GL003",
        ]

    def test_rejects_unknown(self):
        with pytest.raises(ValueError):
            validate_rule_ids(["GL042"], {"GL001"})


class TestFindingRendering:
    def test_render_carries_suppression_reason(self):
        finding = Finding(
            path="x.py", line=3, col=1, rule="GL001", message="m",
            suppressed=True, suppress_reason="because",
        )
        assert "[suppressed: because]" in finding.render()

    def test_plain_render(self):
        finding = Finding(path="x.py", line=3, col=1, rule="GL001", message="msg")
        assert finding.render() == "x.py:3:1: GL001 msg"


class TestRepoIsClean:
    def test_src_tree_has_no_active_findings(self):
        """The acceptance gate: the shipped tree lints clean."""
        from pathlib import Path

        src = Path(__file__).parent.parent / "src"
        report = run_analysis([src], all_rules())
        assert report.findings == [], "\n".join(f.render() for f in report.findings)
        # The known, documented suppressions (timeline breakpoint identity).
        assert all(f.suppress_reason for f in report.suppressed)


class TestMultiLineSuppression:
    """Regression: a disable comment anywhere in a multi-line statement
    must cover the statement's reported line, not just its own line."""

    def test_comment_on_last_line_of_multiline_call(self, tmp_path):
        _write(
            tmp_path / "mod.py",
            """\
            import time

            def f():
                return time.time(
                )  # gridlint: disable=GL001 -- wall time wanted
            """,
        )
        report = run_analysis([tmp_path], all_rules())
        assert [f for f in report.findings if f.rule == "GL001"] == []
        assert len([f for f in report.suppressed if f.rule == "GL001"]) == 1

    def test_comment_on_first_line_covers_inner_lines(self, tmp_path):
        _write(
            tmp_path / "mod.py",
            """\
            import time

            def f():
                stamps = (  # gridlint: disable=GL001 -- wall time wanted
                    time.time(),
                    time.time(),
                )
                return stamps
            """,
        )
        report = run_analysis([tmp_path], all_rules())
        assert [f for f in report.findings if f.rule == "GL001"] == []
        assert len([f for f in report.suppressed if f.rule == "GL001"]) == 2

    def test_compound_header_span_does_not_silence_body(self, tmp_path):
        _write(
            tmp_path / "mod.py",
            """\
            import time

            def f(xs):
                for x in sorted(
                    xs
                ):  # gridlint: disable=GL001 -- covers the header only
                    t = time.time()
                return t
            """,
        )
        report = run_analysis([tmp_path], all_rules())
        # The body violation on line 7 is outside the for-header span.
        assert len([f for f in report.findings if f.rule == "GL001"]) == 1


class TestParallelWalk:
    def test_parallel_report_matches_serial(self, tmp_path):
        for idx in range(12):
            source = VIOLATING if idx % 3 == 0 else CLEAN
            _write(tmp_path / f"mod_{idx:02d}.py", source)
        serial = run_analysis([tmp_path], all_rules())
        parallel = run_analysis([tmp_path], all_rules(), jobs=4)
        assert serial.findings == parallel.findings
        assert serial.suppressed == parallel.suppressed
        assert serial.files_scanned == parallel.files_scanned
        assert serial.to_json() == parallel.to_json()

    def test_jobs_flag_via_cli(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", CLEAN)
        assert main(["--jobs", "4", str(tmp_path)]) == 0


class TestSarifOutput:
    def test_sarif_document_shape(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", VIOLATING)
        assert main(["--format", "sarif", str(tmp_path)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "gridlint"
        rule_ids = {r["id"] for r in driver["rules"]}
        assert {"GL001", "GL011", "GL012", "GL013", "GL014"} <= rule_ids
        assert all(r["helpUri"].startswith("docs/ANALYSIS.md#") for r in driver["rules"])
        results = run["results"]
        assert len(results) == 1
        assert results[0]["ruleId"] == "GL003"
        region = results[0]["locations"][0]["physicalLocation"]["region"]
        assert region["startLine"] == 2

    def test_sarif_marks_suppressions(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", SUPPRESSED)
        assert main(["--format", "sarif", str(tmp_path)]) == 0
        doc = json.loads(capsys.readouterr().out)
        results = doc["runs"][0]["results"]
        assert len(results) == 1
        suppression = results[0]["suppressions"][0]
        assert suppression["kind"] == "inSource"
        assert "identity intended" in suppression["justification"]


class TestBaseline:
    def test_write_then_gate_round_trip(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(tmp_path)]) == 0
        capsys.readouterr()
        # Gated against its own snapshot the tree is green…
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 0
        capsys.readouterr()
        # …and the baselined finding stays auditable, not vanished.
        assert main(
            ["--baseline", str(baseline), "--format", "json", str(tmp_path)]
        ) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["summary"]["active"] == 0
        reasons = {f["suppress_reason"] for f in doc["suppressed_findings"]}
        assert "baselined" in reasons

    def test_new_finding_still_fails(self, tmp_path, capsys):
        mod = _write(tmp_path / "mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(tmp_path)]) == 0
        capsys.readouterr()
        # A second, distinct violation appears after the snapshot.
        mod.write_text(
            mod.read_text()
            + textwrap.dedent(
                """\

                def worse(bw, cap):
                    return bw != cap
                """
            )
        )
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 1

    def test_count_exceeded_fails(self, tmp_path, capsys):
        mod = _write(tmp_path / "mod.py", VIOLATING)
        baseline = tmp_path / "baseline.json"
        assert main(["--write-baseline", str(baseline), str(tmp_path)]) == 0
        capsys.readouterr()
        # The same violation duplicated: occurrence 2 exceeds the count.
        mod.write_text(
            mod.read_text()
            + textwrap.dedent(
                """\

                def same_again(t_end, deadline):
                    return t_end == deadline
                """
            )
        )
        assert main(["--baseline", str(baseline), str(tmp_path)]) == 1

    def test_malformed_baseline_exits_two(self, tmp_path, capsys):
        _write(tmp_path / "mod.py", CLEAN)
        bad = tmp_path / "baseline.json"
        bad.write_text('{"version": 99}')
        assert main(["--baseline", str(bad), str(tmp_path)]) == 2
