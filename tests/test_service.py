"""Tests for the stateful ReservationService."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.control import RejectReason, ReservationService, ReservationState
from repro.core import ConfigurationError, InvalidRequestError, Platform
from repro.obs import NullTelemetry, Telemetry, get_telemetry, use_telemetry
from repro.schedulers import FractionOfMaxPolicy


@pytest.fixture
def service():
    return ReservationService(Platform.uniform(2, 2, 100.0))


class TestSubmit:
    def test_confirms_feasible(self, service):
        r = service.submit(ingress=0, egress=1, volume=1000.0, deadline=100.0, now=0.0)
        assert r.confirmed
        assert r.allocation.bw == pytest.approx(10.0)  # MinRate policy
        assert r.state(0.0) == ReservationState.ACTIVE
        assert r.state(200.0) == ReservationState.COMPLETED

    def test_default_max_rate_is_bottleneck(self, service):
        r = service.submit(ingress=0, egress=1, volume=1000.0, deadline=100.0, now=0.0)
        assert r.request.max_rate == pytest.approx(100.0)

    def test_books_ahead_when_busy(self):
        service = ReservationService(
            Platform.uniform(2, 2, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        first = service.submit(ingress=0, egress=1, volume=1000.0, deadline=1000.0, now=0.0)
        assert first.allocation.tau == pytest.approx(10.0)
        second = service.submit(ingress=0, egress=1, volume=1000.0, deadline=1000.0, now=1.0)
        assert second.confirmed
        assert second.allocation.sigma == pytest.approx(10.0)  # waits for the port
        assert second.state(5.0) == ReservationState.CONFIRMED

    def test_rejects_infeasible(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        service.submit(ingress=0, egress=0, volume=1000.0, deadline=100.0, now=0.0)
        r = service.submit(ingress=0, egress=0, volume=1000.0, deadline=12.0, now=1.0)
        assert not r.confirmed
        assert r.state(1.0) == ReservationState.REJECTED

    def test_malformed_submission_raises(self, service):
        with pytest.raises(InvalidRequestError):
            service.submit(ingress=0, egress=1, volume=-5.0, deadline=10.0, now=0.0)

    def test_clock_monotonic(self, service):
        service.submit(ingress=0, egress=1, volume=10.0, deadline=100.0, now=50.0)
        with pytest.raises(ConfigurationError):
            service.submit(ingress=0, egress=1, volume=10.0, deadline=100.0, now=10.0)


class TestCancel:
    def test_cancel_frees_capacity_for_next(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        first = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=200.0, now=0.0)
        assert first.confirmed  # occupies the port until t = 100
        blocked = service.submit(ingress=0, egress=0, volume=9_000.0, deadline=95.0, now=1.0)
        assert not blocked.confirmed
        assert service.cancel(first.rid, now=2.0)
        retry = service.submit(ingress=0, egress=0, volume=9_000.0, deadline=95.0, now=3.0)
        assert retry.confirmed

    def test_cancel_mid_transfer_releases_remainder(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        r = service.submit(ingress=0, egress=0, volume=10_000.0, deadline=200.0, now=0.0)
        assert service.cancel(r.rid, now=50.0)
        assert r.state(60.0) == ReservationState.CANCELLED
        # the tail [50, 100) is free again
        ins, _ = service.port_usage(75.0)
        assert ins[0] == pytest.approx(0.0)
        # but the consumed part [0, 50) stays accounted
        ins, _ = service.port_usage(25.0)
        assert ins[0] == pytest.approx(100.0)

    def test_cancel_completed_is_noop(self, service):
        r = service.submit(ingress=0, egress=1, volume=100.0, deadline=10.0, now=0.0)
        assert not service.cancel(r.rid, now=20.0)

    def test_cancel_rejected_is_noop(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        service.submit(ingress=0, egress=0, volume=1000.0, deadline=100.0, now=0.0)
        r = service.submit(ingress=0, egress=0, volume=1000.0, deadline=11.0, now=1.0)
        assert not r.confirmed
        assert not service.cancel(r.rid, now=2.0)

    def test_double_cancel(self, service):
        r = service.submit(ingress=0, egress=1, volume=1000.0, deadline=500.0, now=0.0)
        assert service.cancel(r.rid, now=1.0)
        assert not service.cancel(r.rid, now=2.0)

    def test_unknown_rid(self, service):
        with pytest.raises(KeyError):
            service.cancel(999, now=0.0)
        with pytest.raises(KeyError):
            service.get(999)


class TestInspection:
    def test_accept_rate_and_listing(self, service):
        service.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        service.submit(ingress=1, egress=0, volume=100.0, deadline=100.0, now=1.0)
        assert service.accept_rate() == 1.0
        assert [r.rid for r in service.reservations()] == [0, 1]

    def test_empty_accept_rate(self, service):
        assert service.accept_rate() == 0.0

    def test_accept_rate_counts_striped(self):
        # regression: striped bookings used to vanish from the accounting
        service = ReservationService(Platform.uniform(4, 2, 100.0))
        service.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        ok = service.submit_striped(
            sources=[0, 1], egress=0, volume=100.0, deadline=100.0, now=1.0
        )
        assert ok is not None
        bad = service.submit_striped(
            sources=[2, 3], egress=1, volume=1e9, deadline=2.0, now=1.5
        )
        assert bad is None
        # 3 client submissions, 2 served
        assert service.accept_rate() == pytest.approx(2 / 3)
        assert set(service.striped_bookings()) == {1, 3}

    def test_deadline_at_zero_accepts_exact_fit(self, service):
        # regression: tau overshoots t_end=0 by a few ulp; the old relative
        # tolerance (t_end * (1 + 1e-12) == 0) rejected the request
        r = service.submit(ingress=0, egress=1, volume=3.3, deadline=0.0, now=-0.1)
        assert r.confirmed
        assert r.allocation.tau <= 1e-9


class TestStripedCancel:
    def test_cancel_striped_frees_all_stripes(self):
        service = ReservationService(Platform.uniform(4, 2, 100.0))
        booking = service.submit_striped(
            sources=[0, 1], egress=0, volume=1000.0, deadline=1000.0, now=0.0
        )
        base = booking.allocations[0].rid
        assert service.cancel(base, now=2.0)
        _, outs = service.port_usage(5.0)
        assert outs[0] == pytest.approx(2 * 50.0 * 0.0)  # tails released
        # consumed heads [0, 2) stay accounted
        _, outs = service.port_usage(1.0)
        assert outs[0] == pytest.approx(100.0)
        # double cancel is a no-op
        assert not service.cancel(base, now=3.0)

    def test_cancel_completed_striped_is_noop(self):
        service = ReservationService(Platform.uniform(4, 2, 100.0))
        booking = service.submit_striped(
            sources=[0, 1], egress=0, volume=1000.0, deadline=1000.0, now=0.0
        )
        assert not service.cancel(booking.allocations[0].rid, now=booking.finish + 1.0)

    def test_cancel_rejected_striped_is_noop(self):
        service = ReservationService(Platform.uniform(2, 1, 10.0))
        assert (
            service.submit_striped(
                sources=[0, 1], egress=0, volume=1e9, deadline=10.0, now=0.0
            )
            is None
        )
        assert not service.cancel(0, now=1.0)


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["submit", "cancel"]),
            st.floats(1.0, 50.0, allow_nan=False),   # dt
            st.floats(100.0, 50_000.0, allow_nan=False),  # volume
            st.integers(0, 1),
            st.integers(0, 1),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_service_never_overcommits(ops):
    """Property: any submit/cancel interleaving keeps ports within capacity."""
    service = ReservationService(Platform.uniform(2, 2, 100.0))
    now = 0.0
    confirmed: list[int] = []
    for op, dt, volume, ingress, egress in ops:
        now += dt
        if op == "submit" or not confirmed:
            r = service.submit(
                ingress=ingress, egress=egress, volume=volume, deadline=now + 600.0, now=now
            )
            if r.confirmed:
                confirmed.append(r.rid)
        else:
            service.cancel(confirmed.pop(0), now=now)
    assert service._ledger.max_overcommit() <= 1e-6


class TestStripedSubmission:
    def test_striped_books_and_blocks(self):
        service = ReservationService(Platform.uniform(4, 2, 100.0))
        booking = service.submit_striped(
            sources=[0, 1], egress=0, volume=1000.0, deadline=1000.0, now=0.0
        )
        assert booking is not None
        assert booking.volume == pytest.approx(1000.0)
        assert booking.finish == pytest.approx(10.0)  # 2 sources, egress cap 100
        # the egress is now full until t=10: a conflicting submit waits
        r = service.submit(ingress=2, egress=0, volume=500.0, deadline=100.0, now=1.0)
        assert r.confirmed
        assert r.allocation.sigma >= 10.0 - 1e-9

    def test_striped_infeasible_books_nothing(self):
        service = ReservationService(Platform.uniform(2, 1, 10.0))
        booking = service.submit_striped(
            sources=[0, 1], egress=0, volume=1_000_000.0, deadline=10.0, now=0.0
        )
        assert booking is None
        ins, outs = service.port_usage(5.0)
        assert outs[0] == pytest.approx(0.0)

    def test_striped_rids_unique(self):
        service = ReservationService(Platform.uniform(4, 2, 100.0))
        a = service.submit_striped(sources=[0, 1], egress=0, volume=100.0, deadline=100.0, now=0.0)
        b = service.submit_striped(sources=[2, 3], egress=1, volume=100.0, deadline=100.0, now=1.0)
        rids = [al.rid for al in a.allocations] + [al.rid for al in b.allocations]
        assert len(set(rids)) == len(rids)


class TestRejectReasons:
    def test_capacity_rejection_names_ingress(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        service.submit(ingress=0, egress=0, volume=1000.0, deadline=100.0, now=0.0)
        r = service.submit(ingress=0, egress=0, volume=1000.0, deadline=12.0, now=1.0)
        assert not r.confirmed
        # uniform platform: both sides equally full, ingress reported first
        assert r.reject_reason is RejectReason.INGRESS_FULL

    def test_capacity_rejection_names_egress(self):
        # two wide ingress ports funnel into one narrow egress
        service = ReservationService(
            Platform([100.0, 100.0], [50.0]), policy=FractionOfMaxPolicy(1.0)
        )
        service.submit(ingress=0, egress=0, volume=500.0, deadline=100.0, now=0.0)
        r = service.submit(ingress=1, egress=0, volume=500.0, deadline=11.0, now=1.0)
        assert not r.confirmed
        assert r.reject_reason is RejectReason.EGRESS_FULL

    def test_accepted_reservation_has_no_reason(self, service):
        r = service.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        assert r.confirmed
        assert r.reject_reason is None

    def test_reject_reason_survives_snapshot(self):
        service = ReservationService(
            Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
        )
        service.submit(ingress=0, egress=0, volume=1000.0, deadline=100.0, now=0.0)
        service.submit(ingress=0, egress=0, volume=1000.0, deadline=12.0, now=1.0)
        snap = service.snapshot()
        reasons = [entry["reject_reason"] for entry in snap["reservations"]]
        assert reasons == [None, "ingress-full"]


class TestServiceTelemetry:
    def test_ctor_handle_overrides_global(self):
        tel = Telemetry()
        service = ReservationService(Platform.uniform(2, 2, 100.0), telemetry=tel)
        service.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        submits = tel.metrics.counter("service_submits_total")
        assert submits.value(outcome="accepted") == 1.0
        # the process-wide handle stays the inert default
        assert isinstance(get_telemetry(), NullTelemetry)
        assert get_telemetry().is_empty()

    def test_global_handle_used_when_ctor_omitted(self):
        tel = Telemetry()
        with use_telemetry(tel):
            service = ReservationService(
                Platform.uniform(1, 1, 100.0), policy=FractionOfMaxPolicy(1.0)
            )
            service.submit(ingress=0, egress=0, volume=1000.0, deadline=100.0, now=0.0)
            service.submit(ingress=0, egress=0, volume=1000.0, deadline=12.0, now=1.0)
        submits = tel.metrics.counter("service_submits_total")
        assert submits.value(outcome="accepted") == 1.0
        assert submits.value(outcome="rejected") == 1.0
        rejects = tel.metrics.counter("service_rejects_total")
        assert rejects.value(reason="ingress-full") == 1.0
        assert [e.name for e in tel.events] == ["service.submit", "service.submit"]

    def test_lifecycle_counters(self):
        tel = Telemetry()
        service = ReservationService(Platform.uniform(2, 2, 100.0), telemetry=tel)
        r = service.submit(ingress=0, egress=1, volume=1000.0, deadline=100.0, now=0.0)
        service.cancel(r.rid, now=1.0)
        assert tel.metrics.counter("service_cancels_total").total() == 1.0
        names = [e.name for e in tel.events]
        assert names == ["service.submit", "service.cancel"]

    def test_peak_utilization_gauge(self):
        tel = Telemetry()
        service = ReservationService(
            Platform.uniform(1, 1, 100.0),
            policy=FractionOfMaxPolicy(0.5),
            telemetry=tel,
        )
        service.submit(ingress=0, egress=0, volume=100.0, deadline=100.0, now=0.0)
        gauge = tel.metrics.gauge("service_port_peak_utilization")
        assert gauge.value(side="ingress", port=0) == pytest.approx(0.5)
        assert gauge.value(side="egress", port=0) == pytest.approx(0.5)
