"""Tests for the capacity kernel: backends, selection, and regressions.

Every behavioural test is parametrized over both backends — the kernel's
contract is that they are interchangeable.  The regression tests at the
bottom (coalescing at tolerance boundaries, ``PortLedger.copy``
independence) used to live against the concrete timeline class; they are
kept here against the interface so a future backend inherits them.
"""

import math

import numpy as np
import pytest

from repro.core import Platform, PortLedger
from repro.core.capacity import (
    BreakpointProfile,
    CapacityProfile,
    VectorProfile,
    available_backends,
    backends,
    get_default_backend,
    make_profile,
    set_default_backend,
    use_backend,
)
from repro.core.errors import ConfigurationError
from repro.core.timeline import BandwidthTimeline

BACKENDS = available_backends()


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


@pytest.fixture
def profile(backend):
    return make_profile(backend)


class TestBackendRegistry:
    def test_both_backends_registered(self):
        assert BACKENDS == ("breakpoint", "vector")

    def test_default_is_breakpoint(self):
        assert get_default_backend() == "breakpoint"
        assert isinstance(make_profile(), BreakpointProfile)

    def test_make_profile_by_name(self):
        assert isinstance(make_profile("breakpoint"), BreakpointProfile)
        assert isinstance(make_profile("vector"), VectorProfile)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown capacity backend"):
            make_profile("linkedlist")
        with pytest.raises(ConfigurationError):
            set_default_backend("linkedlist")

    def test_set_default_backend(self):
        set_default_backend("vector")
        try:
            assert get_default_backend() == "vector"
            assert isinstance(make_profile(), VectorProfile)
        finally:
            set_default_backend("breakpoint")

    def test_use_backend_scopes_and_restores(self):
        assert get_default_backend() == "breakpoint"
        with use_backend("vector"):
            assert get_default_backend() == "vector"
            assert isinstance(BandwidthTimeline(), VectorProfile)
        assert get_default_backend() == "breakpoint"

    def test_use_backend_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with use_backend("vector"):
                raise RuntimeError("boom")
        assert get_default_backend() == "breakpoint"

    def test_environment_variable_sets_initial_default(self, monkeypatch):
        monkeypatch.setattr(backends, "_default_backend", None)
        monkeypatch.setenv(backends.ENV_VAR, "vector")
        assert get_default_backend() == "vector"

    def test_environment_typo_fails_fast(self, monkeypatch):
        monkeypatch.setattr(backends, "_default_backend", None)
        monkeypatch.setenv(backends.ENV_VAR, "vectorised")
        with pytest.raises(ConfigurationError):
            get_default_backend()
        monkeypatch.setattr(backends, "_default_backend", "breakpoint")

    def test_bandwidth_timeline_alias_dispatches(self):
        tl = BandwidthTimeline()
        assert isinstance(tl, CapacityProfile)
        assert isinstance(tl, BandwidthTimeline)
        assert tl.backend_name == get_default_backend()

    def test_isinstance_holds_for_every_backend(self):
        for name in BACKENDS:
            assert isinstance(make_profile(name), BandwidthTimeline)


class TestProfileContract:
    def test_starts_zero(self, profile):
        assert profile.usage_at(0.0) == 0.0
        assert profile.is_zero()
        assert profile.num_segments == 1
        assert profile.global_max() == 0.0

    def test_add_and_query(self, profile):
        profile.add(10.0, 20.0, 5.0)
        assert profile.usage_at(9.999) == 0.0
        assert profile.usage_at(10.0) == 5.0
        assert profile.usage_at(20.0) == 0.0  # half-open
        assert profile.max_usage(0.0, 30.0) == 5.0
        assert profile.min_usage(10.0, 20.0) == 5.0
        assert profile.integral(0.0, 30.0) == 50.0

    def test_empty_and_inverted_intervals_rejected(self, profile):
        for t0, t1 in [(5.0, 5.0), (5.0, 4.0)]:
            with pytest.raises(ValueError):
                profile.add(t0, t1, 1.0)
            with pytest.raises(ValueError):
                profile.max_usage(t0, t1)
            with pytest.raises(ValueError):
                profile.min_usage(t0, t1)
            with pytest.raises(ValueError):
                profile.integral(t0, t1)

    def test_release_coalesces_back_to_zero(self, profile):
        profile.add(0.0, 10.0, 3.0)
        profile.add(0.0, 10.0, -3.0)
        assert profile.is_zero()
        assert profile.num_segments == 1

    def test_segments_clip(self, profile):
        profile.add(0.0, 10.0, 2.0)
        profile.add(10.0, 20.0, 4.0)
        segs = list(profile.segments(5.0, 15.0))
        assert segs == [(5.0, 10.0, 2.0), (10.0, 15.0, 4.0)]

    def test_breakpoints_finite(self, profile):
        profile.add(1.0, 2.0, 1.0)
        pts = profile.breakpoints()
        assert np.all(np.isfinite(pts))
        assert list(pts) == [1.0, 2.0]

    def test_global_max_cache_tracks_mutations(self, profile):
        profile.add(0.0, 10.0, 3.0)
        assert profile.global_max() == 3.0
        profile.add(5.0, 15.0, 4.0)
        assert profile.global_max() == 7.0
        profile.add(5.0, 15.0, -4.0)
        assert profile.global_max() == 3.0
        profile.clear()
        assert profile.global_max() == 0.0

    def test_open_ended_max_tracks_mutations(self, profile):
        # Exercises the vector backend's suffix-max cache across
        # invalidations; the breakpoint backend answers by scan.
        profile.add(0.0, 10.0, 2.0)
        assert profile.max_usage(5.0, math.inf) == 2.0
        profile.add(20.0, 30.0, 9.0)
        assert profile.max_usage(5.0, math.inf) == 9.0
        assert profile.max_usage(25.0, math.inf) == 9.0
        assert profile.max_usage(30.0, math.inf) == 0.0
        profile.add(20.0, 30.0, -9.0)
        assert profile.max_usage(5.0, math.inf) == 2.0

    def test_copy_is_independent_and_same_backend(self, profile, backend):
        profile.add(0.0, 10.0, 3.0)
        clone = profile.copy()
        assert clone.backend_name == backend
        clone.add(0.0, 10.0, 4.0)
        assert profile.max_usage(0.0, 10.0) == 3.0
        assert clone.max_usage(0.0, 10.0) == 7.0

    def test_add_batch_matches_sequential_adds(self, backend):
        rng = np.random.default_rng(7)
        intervals = []
        for _ in range(200):
            t0 = float(rng.uniform(0.0, 1000.0))
            t1 = t0 + float(rng.uniform(0.1, 200.0))
            intervals.append((t0, t1, float(rng.uniform(-5.0, 15.0))))

        batched = make_profile(backend)
        batched.add_batch(intervals)
        sequential = make_profile(backend)
        for t0, t1, delta in intervals:
            sequential.add(t0, t1, delta)

        assert list(batched.segments()) == list(sequential.segments())
        assert batched.num_segments == sequential.num_segments

    def test_add_batch_empty_is_noop(self, profile):
        profile.add(0.0, 1.0, 1.0)
        profile.add_batch([])
        assert list(profile.segments()) == [(0.0, 1.0, 1.0)]

    def test_add_batch_rejects_bad_interval(self, profile):
        with pytest.raises(ValueError):
            profile.add_batch([(0.0, 1.0, 1.0), (5.0, 5.0, 1.0)])

    def test_repr_mentions_backend_class(self, profile, backend):
        profile.add(0.0, 1.0, 2.0)
        assert type(profile).__name__ in repr(profile)


class TestCoalescingRegression:
    """Adjacent segments merge on *exact* value equality only.

    Coalescing on approximate equality would silently change admission
    arithmetic: a segment at ``3.0`` and one at ``3.0 + 1e-12`` are one
    ulp apart for a max-query but must stay distinct segments, because the
    later release of the 1e-12 allocation has to find its breakpoints.
    """

    def test_values_one_ulp_apart_do_not_coalesce(self, profile):
        profile.add(0.0, 10.0, 3.0)
        profile.add(10.0, 20.0, 3.0 + 1e-12)
        assert profile.num_segments == 4  # zero | 3.0 | 3.0+eps | zero

    def test_exactly_equal_values_coalesce(self, profile):
        profile.add(0.0, 10.0, 3.0)
        profile.add(10.0, 20.0, 3.0)
        assert profile.num_segments == 3  # zero | 3.0 | zero
        assert list(profile.segments()) == [(0.0, 20.0, 3.0)]

    def test_release_heals_a_split(self, profile):
        profile.add(0.0, 20.0, 3.0)
        profile.add(5.0, 15.0, 1.0)
        assert profile.num_segments == 5
        profile.add(5.0, 15.0, -1.0)
        assert profile.num_segments == 3
        assert list(profile.segments()) == [(0.0, 20.0, 3.0)]

    def test_tolerance_residue_not_coalesced_but_is_zero_absorbs(self, profile):
        profile.add(0.0, 10.0, 0.1)
        profile.add(0.0, 10.0, 0.2)
        profile.add(0.0, 10.0, -0.3)
        # 0.1 + 0.2 - 0.3 != 0.0 exactly; the residue segment survives…
        assert profile.max_usage(0.0, 10.0) != 0.0
        # …but is_zero's tolerance absorbs it.
        assert profile.is_zero()


class TestPortLedgerAcrossBackends:
    @pytest.fixture
    def platform(self):
        return Platform.uniform(2, 2, 100.0)

    def test_ledger_copy_independence(self, platform, backend):
        with use_backend(backend):
            ledger = PortLedger(platform)
            ledger.allocate(0, 1, 0.0, 10.0, 40.0)
            clone = ledger.copy()
            clone.allocate(0, 1, 0.0, 10.0, 50.0)

            assert ledger.ingress_timeline(0).max_usage(0.0, 10.0) == 40.0
            assert clone.ingress_timeline(0).max_usage(0.0, 10.0) == 90.0
            # The original still fits another 60; the clone does not.
            assert ledger.fits(0, 1, 0.0, 10.0, 60.0)
            assert not clone.fits(0, 1, 0.0, 10.0, 60.0)

    def test_ledger_timelines_use_selected_backend(self, platform, backend):
        with use_backend(backend):
            ledger = PortLedger(platform)
        assert ledger.ingress_timeline(0).backend_name == backend
        assert ledger.egress_timeline(1).backend_name == backend

    def test_same_decisions_both_backends(self, platform):
        decisions = {}
        for name in BACKENDS:
            with use_backend(name):
                ledger = PortLedger(platform)
                outcome = []
                for k in range(40):
                    t0 = float(k % 7)
                    t1 = t0 + 3.0 + (k % 3)
                    bw = 30.0 + 7.0 * (k % 5)
                    if ledger.fits(k % 2, k % 2, t0, t1, bw):
                        ledger.allocate(k % 2, k % 2, t0, t1, bw)
                        outcome.append((k, True))
                    else:
                        outcome.append((k, False))
                decisions[name] = outcome
        assert decisions["breakpoint"] == decisions["vector"]

    def test_same_decisions_both_backends_multi_segment(self, platform):
        """Stepwise (multi-segment) bookings decide identically too.

        Fuzzed ``fits_segments`` / ``allocate_segments`` /
        ``release_segments`` streams drawn from binary fractions, so
        float arithmetic is exact and the traces compare with ``==``.
        """
        import random

        def quarter(rng, lo, hi):
            return round(rng.uniform(lo, hi) * 4.0) / 4.0

        for seed in (0, 1, 2, 3):
            decisions = {}
            for name in BACKENDS:
                rng = random.Random(seed)
                with use_backend(name):
                    ledger = PortLedger(platform)
                live = []
                outcome = []
                for k in range(60):
                    segments = []
                    t = quarter(rng, 0.0, 20.0)
                    for _ in range(rng.randint(1, 4)):
                        t1 = t + quarter(rng, 0.5, 6.0)
                        segments.append((t, t1, quarter(rng, 5.0, 45.0)))
                        t = t1 + quarter(rng, 0.0, 3.0)
                    i, e = rng.randrange(2), rng.randrange(2)
                    if ledger.fits_segments(i, e, segments):
                        ledger.allocate_segments(i, e, segments)
                        live.append((i, e, segments))
                        outcome.append((k, True))
                    else:
                        outcome.append((k, False))
                    if live and rng.random() < 0.3:
                        ledger.release_segments(*live.pop(rng.randrange(len(live))))
                sample_ts = [t * 0.25 for t in range(0, 200, 3)]
                usage = [
                    (ledger.ingress_usage_at(p, t), ledger.egress_usage_at(p, t))
                    for p in range(2)
                    for t in sample_ts
                ]
                decisions[name] = (outcome, usage)
            assert decisions["breakpoint"] == decisions["vector"]
