"""Tests for rigid-request heuristics (FCFS and the SLOTS family)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    Platform,
    ProblemInstance,
    Request,
    RequestSet,
    verify_schedule,
)
from repro.schedulers import (
    FCFSRigid,
    cumulated_slots,
    fifo_slots,
    minbw_slots,
    minvol_slots,
    priority_factor,
)
from repro.workload import paper_rigid_workload


def rigid(rid, i, e, bw, t0, t1):
    """Rigid request at fixed bandwidth bw over [t0, t1]."""
    return Request.rigid(rid, i, e, volume=bw * (t1 - t0), t_start=t0, t_end=t1)


def problem(requests, capacity=100.0, m=2, n=2):
    return ProblemInstance(Platform.uniform(m, n, capacity), RequestSet(requests))


ALL_RIGID = [FCFSRigid(), fifo_slots(), cumulated_slots(), minbw_slots(), minvol_slots()]


class TestFCFSRigid:
    def test_accepts_when_fits(self):
        prob = problem([rigid(0, 0, 1, 60.0, 0, 10), rigid(1, 0, 1, 40.0, 5, 15)])
        result = FCFSRigid().schedule(prob)
        assert result.num_accepted == 2
        verify_schedule(prob.platform, prob.requests, result)

    def test_rejects_overflow(self):
        prob = problem([rigid(0, 0, 1, 60.0, 0, 10), rigid(1, 0, 1, 50.0, 5, 15)])
        result = FCFSRigid().schedule(prob)
        assert result.num_accepted == 1
        assert 1 in result.rejected

    def test_earlier_arrival_wins(self):
        prob = problem([rigid(0, 0, 1, 60.0, 1, 10), rigid(1, 0, 1, 60.0, 0, 10)])
        result = FCFSRigid().schedule(prob)
        assert 1 in result.accepted
        assert 0 in result.rejected

    def test_tie_break_smaller_bw_first(self):
        prob = problem([rigid(0, 0, 1, 80.0, 0, 10), rigid(1, 0, 1, 30.0, 0, 10)])
        result = FCFSRigid().schedule(prob)
        # both start at 0; smaller bw (rid 1) scheduled first, then 80 doesn't fit
        assert 1 in result.accepted
        assert 0 in result.rejected

    def test_rejects_flexible_request(self):
        flexible = Request(0, 0, 1, volume=100.0, t_start=0.0, t_end=100.0, max_rate=50.0)
        prob = problem([flexible])
        with pytest.raises(ConfigurationError):
            FCFSRigid().schedule(prob)

    def test_different_ports_independent(self):
        prob = problem([rigid(0, 0, 0, 100.0, 0, 10), rigid(1, 1, 1, 100.0, 0, 10)])
        result = FCFSRigid().schedule(prob)
        assert result.num_accepted == 2

    def test_empty_problem(self):
        result = FCFSRigid().schedule(problem([]))
        assert result.num_decided == 0


class TestSlotsScheduler:
    def test_single_interval_cost_order(self):
        # capacity 100; three concurrent requests of bw 60, 50, 30
        reqs = [
            rigid(0, 0, 1, 60.0, 0, 10),
            rigid(1, 0, 1, 50.0, 0, 10),
            rigid(2, 0, 1, 30.0, 0, 10),
        ]
        result = minbw_slots().schedule(problem(reqs))
        # minbw packs 30 then 50 (=80), 60 fails
        assert set(result.accepted) == {1, 2}

    def test_minvol_blocking(self):
        # concurrent in [0,1): 90 + 20 = 110 > 100 -> minvol keeps the small
        # volume (rid 0), rejecting the large-volume low-bw one
        reqs = [
            rigid(0, 0, 1, 90.0, 0, 1),   # vol 90, bw 90
            rigid(1, 0, 1, 20.0, 0, 10),  # vol 200, bw 20
        ]
        result = minvol_slots().schedule(problem(reqs, capacity=100.0))
        assert 0 in result.accepted
        assert 1 in result.rejected
        # minbw makes the opposite (better-utilising) choice
        result2 = minbw_slots().schedule(problem(reqs, capacity=100.0))
        assert 1 in result2.accepted
        assert 0 in result2.rejected

    def test_multi_interval_failure_removes_request(self):
        # rid 0 spans [0, 20); fits in [0,10) but loses [10,20) to cheaper rivals
        reqs = [
            rigid(0, 0, 1, 60.0, 0, 20),
            rigid(1, 0, 1, 50.0, 10, 20),
            rigid(2, 0, 1, 30.0, 10, 20),
        ]
        result = minbw_slots().schedule(problem(reqs))
        assert 0 in result.rejected
        assert {1, 2} <= set(result.accepted)
        verify_schedule(problem(reqs).platform, RequestSet(reqs), result)

    def test_accepted_satisfy_every_interval(self):
        prob = paper_rigid_workload(4.0, 300, seed=2)
        for scheduler in (cumulated_slots(), minbw_slots(), minvol_slots(), fifo_slots()):
            result = scheduler.schedule(prob)
            verify_schedule(prob.platform, prob.requests, result)

    def test_rejects_flexible(self):
        flexible = Request(0, 0, 1, volume=100.0, t_start=0.0, t_end=100.0, max_rate=50.0)
        with pytest.raises(ConfigurationError):
            cumulated_slots().schedule(problem([flexible]))

    def test_empty(self):
        result = cumulated_slots().schedule(problem([]))
        assert result.num_decided == 0

    def test_names(self):
        assert cumulated_slots().name == "cumulated-slots"
        assert minbw_slots().name == "minbw-slots"
        assert minvol_slots().name == "minvol-slots"
        assert fifo_slots().name == "fifo-slots"

    def test_fifo_slots_orders_by_arrival(self):
        # later-arriving cheap request loses to earlier expensive one under FIFO
        reqs = [
            rigid(0, 0, 1, 90.0, 0, 10),
            rigid(1, 0, 1, 20.0, 5, 10),
        ]
        result = fifo_slots().schedule(problem(reqs))
        assert 0 in result.accepted
        assert 1 in result.rejected
        # minbw kicks rid 0 at the [5, 10) slice instead
        result2 = minbw_slots().schedule(problem(reqs))
        assert 1 in result2.accepted
        assert 0 in result2.rejected


class TestPriorityFactor:
    def test_grows_towards_one(self):
        r = rigid(0, 0, 1, 10.0, 0, 100)
        early = priority_factor(r, 0.0, 10.0)
        late = priority_factor(r, 90.0, 100.0)
        assert early == pytest.approx(0.1)
        assert late == pytest.approx(1.0)

    def test_smaller_duration_higher_priority(self):
        short = rigid(0, 0, 1, 10.0, 0, 10)
        long = rigid(1, 0, 1, 10.0, 0, 100)
        assert priority_factor(short, 0.0, 10.0) > priority_factor(long, 0.0, 10.0)


class TestCrossHeuristicInvariants:
    @pytest.mark.parametrize("scheduler", ALL_RIGID, ids=lambda s: s.name)
    def test_all_valid_on_paper_workload(self, scheduler):
        prob = paper_rigid_workload(6.0, 250, seed=9)
        result = scheduler.schedule(prob)
        verify_schedule(prob.platform, prob.requests, result)
        assert result.num_decided == prob.num_requests

    def test_fifo_worst_under_heavy_load(self):
        prob = paper_rigid_workload(16.0, 800, seed=4)
        rates = {s.name: s.schedule(prob).accept_rate for s in ALL_RIGID}
        assert rates["fifo-slots"] < rates["cumulated-slots"]
        assert rates["fifo-slots"] < rates["minbw-slots"]

    def test_deterministic(self):
        prob = paper_rigid_workload(4.0, 200, seed=5)
        a = cumulated_slots().schedule(prob)
        b = cumulated_slots().schedule(prob)
        assert set(a.accepted) == set(b.accepted)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), load=st.floats(0.5, 10.0, allow_nan=False))
def test_slots_schedules_always_verify(seed, load):
    """Property: every SLOTS schedule on random workloads satisfies Eq. 1."""
    prob = paper_rigid_workload(load, 120, seed=seed)
    for scheduler in (cumulated_slots(), minbw_slots(), minvol_slots()):
        result = scheduler.schedule(prob)
        verify_schedule(prob.platform, prob.requests, result)
