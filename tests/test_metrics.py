"""Tests for the metrics collector and report tables."""

import pytest

from repro.core import (
    Platform,
    ProblemInstance,
    Request,
    RequestSet,
    ScheduleResult,
    verify_schedule,
)
from repro.metrics import Table, evaluate, jain_index
from repro.schedulers import GreedyFlexible, WindowFlexible
from repro.workload import paper_flexible_workload


class TestJainIndex:
    def test_even_is_one(self):
        assert jain_index([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_user_is_1_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_zero(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0


class TestEvaluate:
    def test_full_report(self):
        prob = paper_flexible_workload(2.0, 200, seed=4)
        result = WindowFlexible(t_step=200.0).schedule(prob)
        verify_schedule(prob.platform, prob.requests, result)
        report = evaluate(prob, result)
        assert report.scheduler == result.scheduler
        assert report.num_requests == 200
        assert 0.0 <= report.accept_rate <= 1.0
        assert 0.0 <= report.utilization_time_averaged <= 1.0
        assert report.mean_wait > 0  # window decisions happen after arrival
        assert report.max_wait >= report.mean_wait
        assert 0 < report.mean_granted_over_max <= 1.0
        assert 0 < report.port_jain_index <= 1.0
        assert set(report.guaranteed) == {0.5, 0.8, 1.0}

    def test_greedy_has_zero_wait(self):
        prob = paper_flexible_workload(2.0, 200, seed=4)
        report = evaluate(prob, GreedyFlexible().schedule(prob))
        assert report.mean_wait == pytest.approx(0.0)

    def test_guaranteed_monotone_in_f(self):
        prob = paper_flexible_workload(2.0, 300, seed=5)
        report = evaluate(prob, GreedyFlexible().schedule(prob), fractions=(0.2, 0.5, 1.0))
        assert report.guaranteed[0.2] >= report.guaranteed[0.5] >= report.guaranteed[1.0]

    def test_as_dict_flat(self):
        prob = paper_flexible_workload(2.0, 50, seed=6)
        report = evaluate(prob, GreedyFlexible().schedule(prob))
        flat = report.as_dict()
        assert "guaranteed_f0.5" in flat
        assert flat["accept_rate"] == report.accept_rate


class TestEvaluateEdgeCases:
    """evaluate() must stay finite on degenerate schedules (no div-by-zero)."""

    def _request(self, rid: int = 0) -> Request:
        return Request(
            rid=rid, ingress=0, egress=0, volume=100.0, t_start=0.0, t_end=100.0, max_rate=10.0
        )

    def test_empty_schedule(self):
        prob = ProblemInstance(platform=Platform.uniform(2, 2, 10.0), requests=RequestSet())
        report = evaluate(prob, ScheduleResult(scheduler="noop"))
        assert report.num_requests == 0
        assert report.accept_rate == 0.0
        assert report.resource_utilization == 0.0
        assert report.utilization_time_averaged == 0.0
        assert report.mean_wait == 0.0 and report.max_wait == 0.0
        assert report.mean_granted_over_max == 0.0
        assert report.mean_transfer_duration == 0.0
        assert report.port_jain_index == 1.0
        assert all(rate == 0.0 for rate in report.guaranteed.values())

    def test_all_rejected(self):
        requests = RequestSet([self._request(0), self._request(1), self._request(2)])
        prob = ProblemInstance(platform=Platform.uniform(2, 2, 10.0), requests=requests)
        result = ScheduleResult(
            rejected={0, 1, 2},
            scheduler="noop",
            rejection_reasons={0: "capacity", 1: "capacity", 2: "deadline"},
        )
        report = evaluate(prob, result)
        assert report.num_requests == 3
        assert report.accept_rate == 0.0
        assert report.mean_wait == 0.0
        assert report.mean_granted_over_max == 0.0
        assert report.port_jain_index == 1.0
        assert all(rate == 0.0 for rate in report.guaranteed.values())

    def test_single_request(self):
        from repro.core import Allocation

        requests = RequestSet([self._request(0)])
        prob = ProblemInstance(platform=Platform.uniform(2, 2, 10.0), requests=requests)
        result = ScheduleResult(
            accepted={0: Allocation(rid=0, ingress=0, egress=0, bw=10.0, sigma=0.0, tau=10.0)},
            scheduler="noop",
        )
        report = evaluate(prob, result)
        assert report.num_requests == 1
        assert report.accept_rate == 1.0
        assert report.mean_wait == 0.0
        assert report.mean_granted_over_max == pytest.approx(1.0)
        assert report.mean_transfer_duration == pytest.approx(10.0)
        assert 0.0 < report.port_jain_index <= 1.0
        assert report.guaranteed[1.0] == pytest.approx(1.0)


class TestTable:
    def _table(self):
        t = Table(["name", "value"], title="demo")
        t.add_row("a", 1.5)
        t.add_row("b", 0.25)
        return t

    def test_text(self):
        text = self._table().to_text()
        assert "demo" in text
        assert "a" in text and "0.2500" in text

    def test_markdown(self):
        md = self._table().to_markdown()
        assert md.count("|") > 6
        assert "---" in md

    def test_csv_roundtrip(self, tmp_path):
        t = self._table()
        path = tmp_path / "t.csv"
        t.save_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "name,value"
        assert len(lines) == 3

    def test_column(self):
        assert self._table().column("name") == ["a", "b"]

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            self._table().add_row("only-one")


class TestSteadyState:
    def _scheduled(self, gap=0.5, n=400):
        prob = paper_flexible_workload(gap, n, seed=11)
        return prob, GreedyFlexible().schedule(prob)

    def test_steady_window_trims(self):
        from repro.metrics import steady_window

        prob, _ = self._scheduled()
        t0, t1 = prob.requests.time_span()
        lo, hi = steady_window(prob, trim=0.2)
        assert t0 < lo < hi < t1

    def test_steady_rate_below_raw_under_load(self):
        """Warm-up inflates the raw accept rate under sustained overload."""
        from repro.metrics import steady_accept_rate

        prob, result = self._scheduled(gap=0.3)
        assert steady_accept_rate(prob, result, trim=0.2) <= result.accept_rate + 0.02

    def test_trim_zero_matches_raw(self):
        from repro.metrics import steady_accept_rate

        prob, result = self._scheduled()
        assert steady_accept_rate(prob, result, trim=0.0) == pytest.approx(result.accept_rate)

    def test_series_shape(self):
        import numpy as np

        from repro.metrics import accept_rate_series

        prob, result = self._scheduled()
        centres, rates = accept_rate_series(prob, result, num_bins=10)
        assert centres.shape == rates.shape == (10,)
        finite = rates[~np.isnan(rates)]
        assert np.all((finite >= 0) & (finite <= 1))

    def test_series_shows_warmup(self):
        import numpy as np

        from repro.metrics import accept_rate_series

        prob, result = self._scheduled(gap=0.3)
        _, rates = accept_rate_series(prob, result, num_bins=8)
        # first bin (empty network) at least as good as the middle bins
        middle = np.nanmean(rates[2:6])
        assert rates[0] >= middle - 0.05

    def test_validation(self):
        from repro.metrics import accept_rate_series, steady_window

        prob, result = self._scheduled(n=20)
        with pytest.raises(ValueError):
            steady_window(prob, trim=0.7)
        with pytest.raises(ValueError):
            accept_rate_series(prob, result, num_bins=0)
