"""Golden regression tests: pinned scheduler decisions.

The fixture ``tests/data/golden.json`` records, for one fixed seeded
workload per family, the exact accepted-request sets of every published
heuristic (and the main extensions).  Any change to a scheduler's
decisions — intended or not — fails these tests, forcing the change to be
recognised and the fixture regenerated deliberately (see the generation
snippet in the fixture's git history / this file's docstring).

Regenerate with::

    python - <<'PY'
    # ... see repository history: the block that produced tests/data/golden.json
    PY
"""

import json
from pathlib import Path

import pytest

from repro.core import verify_schedule
from repro.schedulers import make_scheduler
from repro.workload import paper_flexible_workload, paper_rigid_workload

GOLDEN = json.loads((Path(__file__).parent / "data" / "golden.json").read_text())
RIGID_NAMES = {"fcfs-rigid", "fifo-slots", "cumulated-slots", "minbw-slots", "minvol-slots"}


def _problem(name):
    if name in RIGID_NAMES:
        p = GOLDEN["rigid_params"]
        return paper_rigid_workload(p["load"], p["n_requests"], seed=p["seed"])
    p = GOLDEN["flexible_params"]
    return paper_flexible_workload(p["mean_interarrival"], p["n_requests"], seed=p["seed"])


@pytest.mark.parametrize("name", sorted(GOLDEN["decisions"]))
def test_decisions_pinned(name):
    entry = GOLDEN["decisions"][name]
    problem = _problem(name)
    result = make_scheduler(name, **entry["options"]).schedule(problem)
    verify_schedule(problem.platform, problem.requests, result)
    assert sorted(result.accepted) == entry["accepted"], (
        f"{name} decisions changed; if intentional, regenerate tests/data/golden.json"
    )
    assert result.num_rejected == entry["num_rejected"]


def test_fixture_covers_all_published_heuristics():
    published = {"greedy", "window", "fcfs-rigid", "fifo-slots", "cumulated-slots", "minbw-slots", "minvol-slots"}
    assert published <= set(GOLDEN["decisions"])
