"""Tests for long-lived flow allocation (rates + polynomial admission)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Platform
from repro.longlived import (
    max_accept_uniform_longlived,
    max_throughput_rates,
    maxmin_rates,
    proportional_fair_rates,
)


class TestMaxThroughput:
    def test_single_flow(self):
        p = Platform([100.0], [60.0])
        rates = max_throughput_rates(p, np.array([0]), np.array([0]))
        assert rates[0] == pytest.approx(60.0)

    def test_prefers_parallel_flows(self):
        # flow 0: (0,0); flow 1: (0,1); flow 2: (1,1) — LP fills disjoint pairs
        p = Platform([100.0, 100.0], [100.0, 100.0])
        rates = max_throughput_rates(
            p, np.array([0, 0, 1]), np.array([0, 1, 1])
        )
        assert rates.sum() == pytest.approx(200.0)

    def test_respects_host_limits(self):
        p = Platform([100.0], [100.0])
        rates = max_throughput_rates(p, np.array([0]), np.array([0]), np.array([25.0]))
        assert rates[0] == pytest.approx(25.0)

    def test_total_at_least_maxmin(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            m, k, n = 3, 3, 12
            p = Platform(rng.uniform(50, 150, m), rng.uniform(50, 150, k))
            ingress = rng.integers(0, m, n)
            egress = rng.integers(0, k, n)
            mm = maxmin_rates(p, ingress, egress)
            mt = max_throughput_rates(p, ingress, egress)
            assert mt.sum() >= mm.sum() - 1e-6

    def test_empty(self):
        p = Platform.paper_platform()
        assert max_throughput_rates(p, np.array([], dtype=int), np.array([], dtype=int)).size == 0

    def test_validation(self):
        p = Platform.uniform(2, 2, 10.0)
        with pytest.raises(ConfigurationError):
            max_throughput_rates(p, np.array([5]), np.array([0]))


class TestProportionalFairness:
    def test_single_bottleneck_equal_split(self):
        p = Platform([90.0], [1000.0, 1000.0, 1000.0])
        rates = proportional_fair_rates(p, np.zeros(3, dtype=int), np.arange(3))
        np.testing.assert_allclose(rates, 30.0, rtol=1e-4)

    def test_classic_linear_network(self):
        # 2-port "line": flow A crosses both bottlenecks, B and C one each.
        # Proportional fairness gives the long flow 1/3 and the short ones 2/3.
        p = Platform([90.0, 90.0], [1000.0, 1000.0])
        ingress = np.array([0, 0, 1])
        egress = np.array([0, 1, 0])
        # flow 0 uses ingress0+egress0; flow 1 ingress0+egress1; flow 2 ingress1+egress0
        # ingress0: flows {0,1}; egress0: flows {0,2} -> flow 0 crosses both
        rates = proportional_fair_rates(p, ingress, egress)
        assert rates[0] == pytest.approx(45.0, rel=0.05)  # symmetric: 45/45 here
        total = rates[0] + rates[1]
        assert total == pytest.approx(90.0, rel=1e-3)

    def test_feasible(self):
        rng = np.random.default_rng(1)
        p = Platform(rng.uniform(50, 150, 3), rng.uniform(50, 150, 3))
        ingress = rng.integers(0, 3, 10)
        egress = rng.integers(0, 3, 10)
        rates = proportional_fair_rates(p, ingress, egress)
        used_in = np.bincount(ingress, weights=rates, minlength=3)
        used_out = np.bincount(egress, weights=rates, minlength=3)
        assert np.all(used_in <= p.ingress_capacity * (1 + 1e-6))
        assert np.all(used_out <= p.egress_capacity * (1 + 1e-6))
        assert np.all(rates > 0)

    def test_log_utility_at_least_maxmin(self):
        rng = np.random.default_rng(2)
        p = Platform(rng.uniform(50, 150, 3), rng.uniform(50, 150, 3))
        ingress = rng.integers(0, 3, 8)
        egress = rng.integers(0, 3, 8)
        pf = proportional_fair_rates(p, ingress, egress)
        mm = maxmin_rates(p, ingress, egress)
        assert np.sum(np.log(pf)) >= np.sum(np.log(mm)) - 1e-6


class TestUniformLongLivedAdmission:
    def _brute_force(self, platform, ingress, egress, rate):
        n = len(ingress)
        cap_in = np.floor(platform.ingress_capacity / rate + 1e-9)
        cap_out = np.floor(platform.egress_capacity / rate + 1e-9)
        best = 0
        for size in range(n, -1, -1):
            for subset in itertools.combinations(range(n), size):
                used_in = np.bincount(
                    [ingress[i] for i in subset], minlength=platform.num_ingress
                )
                used_out = np.bincount(
                    [egress[i] for i in subset], minlength=platform.num_egress
                )
                if np.all(used_in <= cap_in) and np.all(used_out <= cap_out):
                    return size
        return best

    def test_simple(self):
        p = Platform([100.0, 100.0], [100.0, 100.0])
        # rate 50 -> 2 units per port; 3 flows on pair (0,0): only 2 fit
        ingress = np.array([0, 0, 0])
        egress = np.array([0, 0, 0])
        accepted = max_accept_uniform_longlived(p, ingress, egress, 50.0)
        assert accepted.sum() == 2

    def test_matches_bruteforce(self):
        rng = np.random.default_rng(3)
        for _ in range(20):
            m, k = int(rng.integers(1, 4)), int(rng.integers(1, 4))
            p = Platform(rng.uniform(40, 160, m), rng.uniform(40, 160, k))
            n = int(rng.integers(1, 9))
            ingress = rng.integers(0, m, n)
            egress = rng.integers(0, k, n)
            accepted = max_accept_uniform_longlived(p, ingress, egress, 50.0)
            # feasibility of the returned set
            used_in = np.bincount(ingress[accepted], minlength=m) * 50.0
            used_out = np.bincount(egress[accepted], minlength=k) * 50.0
            assert np.all(used_in <= p.ingress_capacity + 1e-6)
            assert np.all(used_out <= p.egress_capacity + 1e-6)
            # optimality vs exhaustive search
            assert accepted.sum() == self._brute_force(p, ingress, egress, 50.0)

    def test_rate_above_all_ports(self):
        p = Platform([10.0], [10.0])
        accepted = max_accept_uniform_longlived(p, np.array([0]), np.array([0]), 50.0)
        assert accepted.sum() == 0

    def test_empty(self):
        p = Platform.paper_platform()
        out = max_accept_uniform_longlived(p, np.array([], dtype=int), np.array([], dtype=int), 10.0)
        assert out.size == 0

    def test_validation(self):
        p = Platform.uniform(2, 2, 10.0)
        with pytest.raises(ConfigurationError):
            max_accept_uniform_longlived(p, np.array([0]), np.array([0]), 0.0)
        with pytest.raises(ConfigurationError):
            max_accept_uniform_longlived(p, np.array([9]), np.array([0]), 1.0)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_longlived_admission_never_beaten_by_greedy(seed):
    """Property: the max-flow optimum ≥ any greedy packing of the flows."""
    rng = np.random.default_rng(seed)
    m = int(rng.integers(1, 4))
    k = int(rng.integers(1, 4))
    p = Platform(rng.uniform(40, 160, m), rng.uniform(40, 160, k))
    n = int(rng.integers(1, 15))
    ingress = rng.integers(0, m, n)
    egress = rng.integers(0, k, n)
    rate = 50.0
    optimal = int(max_accept_uniform_longlived(p, ingress, egress, rate).sum())

    cap_in = np.floor(p.ingress_capacity / rate + 1e-9)
    cap_out = np.floor(p.egress_capacity / rate + 1e-9)
    used_in = np.zeros(m)
    used_out = np.zeros(k)
    greedy = 0
    for i, e in zip(ingress, egress):
        if used_in[i] + 1 <= cap_in[i] and used_out[e] + 1 <= cap_out[e]:
            used_in[i] += 1
            used_out[e] += 1
            greedy += 1
    assert optimal >= greedy
