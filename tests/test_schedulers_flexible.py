"""Tests for flexible-request heuristics (GREEDY and WINDOW) and policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    Platform,
    ProblemInstance,
    Request,
    RequestSet,
    verify_schedule,
)
from repro.schedulers import (
    FractionOfMaxPolicy,
    FullRatePolicy,
    GreedyFlexible,
    MinRatePolicy,
    WindowFlexible,
)
from repro.workload import paper_flexible_workload


def flex(rid, i, e, volume, t0, window, max_rate):
    return Request(rid, i, e, volume=volume, t_start=t0, t_end=t0 + window, max_rate=max_rate)


def problem(requests, capacity=100.0, m=2, n=2):
    return ProblemInstance(Platform.uniform(m, n, capacity), RequestSet(requests))


class TestPolicies:
    def test_min_rate_policy_on_time(self):
        r = flex(0, 0, 1, volume=100.0, t0=0.0, window=10.0, max_rate=50.0)
        assert MinRatePolicy().assign(r) == pytest.approx(10.0)

    def test_min_rate_policy_late_start(self):
        r = flex(0, 0, 1, volume=100.0, t0=0.0, window=10.0, max_rate=50.0)
        assert MinRatePolicy().assign(r, start=5.0) == pytest.approx(20.0)

    def test_min_rate_policy_deadline_unreachable(self):
        r = flex(0, 0, 1, volume=100.0, t0=0.0, window=10.0, max_rate=50.0)
        assert MinRatePolicy().assign(r, start=8.5) is None  # needs 66.7 > 50

    def test_fraction_policy_grants_f_times_max(self):
        r = flex(0, 0, 1, volume=100.0, t0=0.0, window=100.0, max_rate=50.0)
        assert FractionOfMaxPolicy(0.8).assign(r) == pytest.approx(40.0)

    def test_fraction_policy_floors_at_min_rate(self):
        r = flex(0, 0, 1, volume=100.0, t0=0.0, window=10.0, max_rate=50.0)
        # f*max = 5 < MinRate 10 -> grant MinRate
        assert FractionOfMaxPolicy(0.1).assign(r) == pytest.approx(10.0)

    def test_fraction_policy_deadline_floor_late(self):
        r = flex(0, 0, 1, volume=100.0, t0=0.0, window=10.0, max_rate=50.0)
        # start 6: deadline rate 25 > f*max 10 -> grant 25
        assert FractionOfMaxPolicy(0.2).assign(r, start=6.0) == pytest.approx(25.0)

    def test_full_rate_policy(self):
        r = flex(0, 0, 1, volume=100.0, t0=0.0, window=100.0, max_rate=50.0)
        policy = FullRatePolicy()
        assert policy.f == 1.0
        assert policy.assign(r) == pytest.approx(50.0)

    def test_fraction_policy_validates_f(self):
        with pytest.raises(ConfigurationError):
            FractionOfMaxPolicy(0.0)
        with pytest.raises(ConfigurationError):
            FractionOfMaxPolicy(1.5)

    def test_policy_names(self):
        assert MinRatePolicy().name == "min-bw"
        assert FractionOfMaxPolicy(0.8).name == "f=0.8"


class TestGreedyFlexible:
    def test_accepts_until_full(self):
        reqs = [flex(i, 0, 1, 1000.0, float(i), 100.0, 40.0) for i in range(4)]
        result = GreedyFlexible(policy=FullRatePolicy()).schedule(problem(reqs))
        # 40 MB/s each, capacity 100: first two fit, third rejected at t=2
        assert {0, 1} <= set(result.accepted)
        assert 2 in result.rejected

    def test_bandwidth_reclaimed_at_departure(self):
        # rid 0 at full port [0, 10); rid 1 arrives exactly at 10 -> fits
        reqs = [
            flex(0, 0, 1, 1000.0, 0.0, 100.0, 100.0),
            flex(1, 0, 1, 1000.0, 10.0, 100.0, 100.0),
        ]
        result = GreedyFlexible(policy=FullRatePolicy()).schedule(problem(reqs))
        assert result.num_accepted == 2

    def test_arrival_before_departure_rejected(self):
        reqs = [
            flex(0, 0, 1, 1000.0, 0.0, 100.0, 100.0),
            flex(1, 0, 1, 1000.0, 9.9, 10.5, 100.0),
        ]
        result = GreedyFlexible(policy=FullRatePolicy()).schedule(problem(reqs))
        assert 1 in result.rejected

    def test_min_rate_packs_more(self):
        reqs = [flex(i, 0, 1, 1000.0, 0.1 * i, 100.0, 50.0) for i in range(8)]
        greedy_min = GreedyFlexible(policy=MinRatePolicy()).schedule(problem(reqs))
        greedy_max = GreedyFlexible(policy=FullRatePolicy()).schedule(problem(reqs))
        # MinRate = 10 each -> all 8 (80 <= 100); FullRate = 50 -> only 2
        assert greedy_min.num_accepted == 8
        assert greedy_max.num_accepted == 2

    def test_schedules_verify(self):
        prob = paper_flexible_workload(1.0, 400, seed=3)
        for policy in (MinRatePolicy(), FractionOfMaxPolicy(0.5), FullRatePolicy()):
            result = GreedyFlexible(policy=policy).schedule(prob)
            verify_schedule(prob.platform, prob.requests, result)
            assert result.num_decided == prob.num_requests

    def test_sigma_equals_arrival(self):
        prob = paper_flexible_workload(2.0, 100, seed=6)
        result = GreedyFlexible().schedule(prob)
        for rid, alloc in result.accepted.items():
            assert alloc.sigma == pytest.approx(prob.requests.by_rid(rid).t_start)

    def test_empty(self):
        assert GreedyFlexible().schedule(problem([])).num_decided == 0


class TestWindowFlexible:
    def test_rejects_bad_t_step(self):
        with pytest.raises(ConfigurationError):
            WindowFlexible(t_step=0.0)

    def test_decisions_at_epoch_boundaries(self):
        reqs = [flex(0, 0, 1, 1000.0, 5.0, 1000.0, 100.0)]
        result = WindowFlexible(t_step=50.0).schedule(problem(reqs))
        assert result.num_accepted == 1
        alloc = result.accepted[0]
        # first arrival at 5.0 -> epoch starts there, decision at 5 + 50
        assert alloc.sigma == pytest.approx(55.0)

    def test_min_cost_candidate_wins(self):
        # two candidates on the same epoch; only one fits
        reqs = [
            flex(0, 0, 1, 9000.0, 0.0, 1000.0, 90.0),   # cost 0.9
            flex(1, 0, 1, 2000.0, 1.0, 1000.0, 20.0),   # cost 0.2 -> admitted first
        ]
        result = WindowFlexible(t_step=10.0, policy=FullRatePolicy()).schedule(problem(reqs))
        assert 1 in result.accepted
        # after rid 1, rid 0 would need 20+90=110 > 100 -> rejected
        assert 0 in result.rejected

    def test_port_balancing(self):
        # candidates across distinct ports all admitted
        reqs = [
            flex(0, 0, 0, 1000.0, 0.0, 1000.0, 80.0),
            flex(1, 0, 1, 1000.0, 1.0, 1000.0, 80.0),  # shares ingress 0: conflict
            flex(2, 1, 1, 1000.0, 2.0, 1000.0, 80.0),  # shares egress 1 with rid 1
        ]
        result = WindowFlexible(t_step=10.0, policy=FullRatePolicy()).schedule(problem(reqs))
        # min-cost packing admits 0 then 2 (disjoint); 1 conflicts with both
        assert {0, 2} <= set(result.accepted)
        assert 1 in result.rejected

    def test_deadline_enforcement_rejects_expired(self):
        # tiny window: by decision time the deadline cannot be met
        reqs = [flex(0, 0, 1, 1000.0, 0.0, 12.0, 100.0)]
        result = WindowFlexible(t_step=400.0).schedule(problem(reqs))
        assert 0 in result.rejected

    def test_deadline_relaxed_mode(self):
        reqs = [flex(0, 0, 1, 1000.0, 0.0, 12.0, 100.0)]
        scheduler = WindowFlexible(t_step=400.0, enforce_deadline=False)
        result = scheduler.schedule(problem(reqs))
        assert 0 in result.accepted
        verify_schedule(problem(reqs).platform, RequestSet(reqs), result, enforce_window=False)

    def test_schedules_verify(self):
        prob = paper_flexible_workload(0.5, 400, seed=13)
        for t_step in (50.0, 400.0):
            result = WindowFlexible(t_step=t_step).schedule(prob)
            verify_schedule(prob.platform, prob.requests, result)
            assert result.num_decided == prob.num_requests

    def test_all_starts_at_epochs(self):
        prob = paper_flexible_workload(1.0, 200, seed=14)
        t_step = 100.0
        result = WindowFlexible(t_step=t_step).schedule(prob)
        t_begin = min(r.t_start for r in prob.requests)
        for alloc in result.accepted.values():
            offset = (alloc.sigma - t_begin) / t_step
            assert offset == pytest.approx(round(offset), abs=1e-9)

    def test_empty(self):
        assert WindowFlexible().schedule(problem([])).num_decided == 0

    def test_names(self):
        assert WindowFlexible(t_step=400.0).name == "window[400s,min-bw]"
        assert GreedyFlexible(policy=FractionOfMaxPolicy(0.5)).name == "greedy[f=0.5]"


class TestPublishedShapes:
    """Cheap statistical checks of the paper's §5.3 claims."""

    def test_window_beats_greedy_heavy_load(self):
        prob = paper_flexible_workload(0.1, 800, seed=21)
        greedy = GreedyFlexible(policy=FullRatePolicy()).schedule(prob)
        window = WindowFlexible(t_step=400.0, policy=FullRatePolicy()).schedule(prob)
        assert window.accept_rate > greedy.accept_rate

    def test_policies_close_when_light(self):
        prob = paper_flexible_workload(5.0, 800, seed=22)
        greedy = GreedyFlexible(policy=FullRatePolicy()).schedule(prob)
        window = WindowFlexible(t_step=400.0, policy=FullRatePolicy()).schedule(prob)
        assert abs(window.accept_rate - greedy.accept_rate) < 0.08

    def test_smaller_f_accepts_more_when_light(self):
        prob = paper_flexible_workload(10.0, 800, seed=23)
        low = GreedyFlexible(policy=FractionOfMaxPolicy(0.5)).schedule(prob)
        high = GreedyFlexible(policy=FullRatePolicy()).schedule(prob)
        assert low.accept_rate > high.accept_rate


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    gap=st.floats(0.2, 10.0, allow_nan=False),
    t_step=st.floats(10.0, 1000.0, allow_nan=False),
    f=st.floats(0.1, 1.0, allow_nan=False),
)
def test_flexible_schedules_always_verify(seed, gap, t_step, f):
    """Property: online schedules on random workloads satisfy Eq. 1 and
    deadlines, whatever the policy and epoch length."""
    prob = paper_flexible_workload(gap, 100, seed=seed)
    for scheduler in (
        GreedyFlexible(policy=FractionOfMaxPolicy(f)),
        WindowFlexible(t_step=t_step, policy=FractionOfMaxPolicy(f)),
    ):
        result = scheduler.schedule(prob)
        verify_schedule(prob.platform, prob.requests, result)
        assert result.num_decided == prob.num_requests


class TestWindowVectorizedEdgeCases:
    def test_epoch_with_all_deadline_rejects(self):
        """Candidates whose deadline dies during the batch leave an empty
        pool; the epoch must be skipped cleanly."""
        reqs = [
            flex(0, 0, 1, 1000.0, 0.0, 11.0, 100.0),
            flex(1, 0, 1, 1000.0, 1.0, 11.0, 100.0),
        ]
        result = WindowFlexible(t_step=400.0).schedule(problem(reqs))
        assert result.num_rejected == 2
        assert set(result.rejection_reasons.values()) == {"deadline"}

    def test_single_candidate_pool(self):
        reqs = [flex(0, 0, 1, 1000.0, 0.0, 1000.0, 100.0)]
        result = WindowFlexible(t_step=10.0, policy=FullRatePolicy()).schedule(problem(reqs))
        assert result.num_accepted == 1

    def test_exact_float_tie_prefers_lower_rid(self):
        # identical requests -> identical costs; rid breaks the tie, and
        # capacity only admits one
        reqs = [
            flex(5, 0, 1, 1000.0, 0.0, 1000.0, 60.0),
            flex(2, 0, 1, 1000.0, 1.0, 1000.0, 60.0),
        ]
        result = WindowFlexible(t_step=10.0, policy=FullRatePolicy()).schedule(problem(reqs))
        assert 2 in result.accepted
        assert 5 in result.rejected
