"""Tests for the grid-obs CLI (repro.obs.cli)."""

import json

import pytest

from repro.obs import RunTelemetry, Telemetry
from repro.obs.cli import main


@pytest.fixture
def artifact_path(tmp_path):
    tel = Telemetry()
    submits = tel.metrics.counter("service_submits_total")
    submits.inc(2.0, outcome="accepted")
    submits.inc(outcome="rejected")
    tel.metrics.counter("service_rejects_total").inc(reason="ingress-full")
    tel.metrics.gauge("service_port_peak_utilization").set_max(0.75, side="ingress", port=0)
    tel.tracer.complete("reservation", 0.0, 100.0, cat="service")
    tel.emit("service.submit", 0.0, rid=0, outcome="accepted")
    artifact = RunTelemetry("cli-test")
    artifact.capture("run", tel)
    path = tmp_path / "run.json"
    artifact.save(path)
    return path


class TestSummary:
    def test_text_summary(self, artifact_path, capsys):
        assert main(["summary", str(artifact_path)]) == 0
        out = capsys.readouterr().out
        assert "2 accepted / 1 rejected" in out
        assert "ingress-full" in out
        assert "reservation" in out

    def test_json_summary(self, artifact_path, capsys):
        assert main(["summary", str(artifact_path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["accepted"] == 2
        assert data["rejected"] == 1
        assert data["reject_reasons"] == {"ingress-full": 1}
        assert data["port_peaks"] == {"ingress:0": 0.75}

    def test_missing_file_is_usage_error(self, capsys):
        assert main(["summary", "/no/such/artifact.json"]) == 2

    def test_non_artifact_json_is_usage_error(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"whatever": 1}')
        assert main(["summary", str(bogus)]) == 2


class TestGatewayPlaneSummary:
    """Satellite regression: summaries cover the sharded-gateway counters —
    shard-unreachable rejections and backlog re-admissions included."""

    def _partitioned_artifact(self, tmp_path):
        import random

        from repro.core.platform import Platform
        from repro.gateway import ChaosPolicy, Gateway
        from repro.schedulers.retry import BackoffSchedule

        telemetry = Telemetry()
        gw = Gateway(
            Platform.uniform(4, 4, 1000.0),
            num_shards=2,
            batch_size=2,
            chaos=ChaosPolicy.with_partition(1, 0.0, 150.0, seed=0),
            backoff=BackoffSchedule(base=1.0, max_attempts=4),
            rpc_deadline=60.0,
            backlog_limit=8,
            telemetry=telemetry,
        )
        rng = random.Random(11)
        arrivals = sorted(
            (
                rng.uniform(0.0, 300.0),
                rng.randrange(4),
                rng.randrange(4),
                rng.uniform(10.0, 40.0),
                rng.uniform(60.0, 200.0),
            )
            for _ in range(20)
        )
        for t0, ingress, egress, rate, duration in arrivals:
            gw.submit(
                ingress=ingress,
                egress=egress,
                volume=0.5 * rate * duration,
                deadline=t0 + duration,
                now=t0,
                max_rate=rate,
            )
        gw.drain(500.0)
        assert gw.stats.readmitted > 0, "fixture must exercise the backlog"
        artifact = RunTelemetry("partition-run")
        artifact.capture("run", telemetry)
        path = tmp_path / "partition.json"
        artifact.save(path)
        return path

    def test_summary_surfaces_unreachable_shards_and_readmissions(self, tmp_path, capsys):
        path = self._partitioned_artifact(tmp_path)
        assert main(["summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "shard-unreachable" in out
        assert "backlog re-admissions:" in out

    def test_json_summary_counts_both_planes(self, tmp_path, capsys):
        path = self._partitioned_artifact(tmp_path)
        assert main(["summary", str(path), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["reject_reasons"].get("shard-unreachable", 0) > 0
        assert data["readmissions"] > 0
        assert data["accepted"] > 0
        # The per-edge channel counters ride along in the counter table.
        assert any(k.startswith("gateway_channel_") for k in data["counters"])


class TestConvert:
    def test_to_chrome_writes_valid_trace(self, artifact_path, tmp_path, capsys):
        out_path = tmp_path / "trace.json"
        assert main(["convert", str(artifact_path), "--to", "chrome", "-o", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"][0]["name"] == "reservation"
        assert main(["validate", str(out_path), "--kind", "chrome"]) == 0

    def test_to_jsonl(self, artifact_path, capsys):
        assert main(["convert", str(artifact_path), "--to", "jsonl"]) == 0
        lines = [ln for ln in capsys.readouterr().out.splitlines() if ln.strip()]
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "reservation"

    def test_to_prometheus(self, artifact_path, capsys):
        assert main(["convert", str(artifact_path), "--to", "prometheus"]) == 0
        out = capsys.readouterr().out
        assert 'service_submits_total{outcome="accepted"} 2' in out
        assert "# capture: run" in out


class TestValidate:
    def test_auto_sniffs_artifact(self, artifact_path, capsys):
        assert main(["validate", str(artifact_path)]) == 0
        assert "valid artifact" in capsys.readouterr().out

    def test_auto_sniffs_chrome(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        trace.write_text(json.dumps({"traceEvents": []}))
        assert main(["validate", str(trace)]) == 0
        assert "valid chrome" in capsys.readouterr().out

    def test_invalid_document_exits_1(self, tmp_path, capsys):
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        assert main(["validate", str(broken), "--kind", "chrome"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_unreadable_json_exits_2(self, tmp_path, capsys):
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["validate", str(garbage)]) == 2
