"""Tests for striped (multi-source) transfer planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConfigurationError, Platform, PortLedger
from repro.control.striped import book_striped, plan_striped


@pytest.fixture
def setup():
    platform = Platform.uniform(4, 2, 100.0)
    return platform, PortLedger(platform)


class TestPlanning:
    def test_single_source_full_rate(self, setup):
        platform, ledger = setup
        booking = plan_striped(
            ledger, platform, sources=[0], egress=0, volume=1000.0, t_start=0.0, t_end=100.0
        )
        assert booking is not None
        assert booking.finish == pytest.approx(10.0)  # 100 MB/s available
        assert booking.total_rate == pytest.approx(100.0)
        assert booking.volume == pytest.approx(1000.0)

    def test_striping_beats_single_stream(self, setup):
        platform, ledger = setup
        # egress 0 caps at 100, so two sources can't go faster than 100 total
        single = plan_striped(
            ledger, platform, sources=[0], egress=0, volume=1000.0, t_start=0.0, t_end=100.0,
            max_stream_rate=50.0,
        )
        striped = plan_striped(
            ledger, platform, sources=[0, 1], egress=0, volume=1000.0, t_start=0.0, t_end=100.0,
            max_stream_rate=50.0,
        )
        assert single.finish == pytest.approx(20.0)   # 50 MB/s
        assert striped.finish == pytest.approx(10.0)  # 2 x 50 MB/s

    def test_egress_is_the_aggregate_bottleneck(self, setup):
        platform, ledger = setup
        booking = plan_striped(
            ledger, platform, sources=[0, 1, 2, 3], egress=0, volume=1000.0,
            t_start=0.0, t_end=100.0,
        )
        assert booking.total_rate == pytest.approx(100.0)  # egress cap, not 400

    def test_uses_headroom_left_by_existing_bookings(self, setup):
        platform, ledger = setup
        ledger.allocate(0, 0, 0.0, 50.0, 80.0)  # source 0 mostly busy until 50
        booking = book_striped(
            ledger, platform, sources=[0, 1], egress=1, volume=2000.0,
            t_start=0.0, t_end=200.0,
        )
        assert booking is not None
        # source 0 contributes at most 20 until t=50; source 1 up to 80
        # (egress cap 100); planner finds a feasible common finish
        assert booking.volume == pytest.approx(2000.0)
        assert ledger.max_overcommit() <= 1e-9

    def test_infeasible_returns_none(self, setup):
        platform, ledger = setup
        booking = plan_striped(
            ledger, platform, sources=[0], egress=0, volume=100_000.0,
            t_start=0.0, t_end=10.0,
        )
        assert booking is None

    def test_book_commits_and_plan_does_not(self, setup):
        platform, ledger = setup
        plan_striped(ledger, platform, sources=[0], egress=0, volume=100.0, t_start=0.0, t_end=10.0)
        assert ledger.is_empty()
        book_striped(ledger, platform, sources=[0], egress=0, volume=100.0, t_start=0.0, t_end=10.0)
        assert not ledger.is_empty()

    def test_zero_rate_stripes_omitted(self, setup):
        platform, ledger = setup
        ledger.allocate(1, 1, 0.0, 1000.0, 100.0)  # source 1 fully busy
        booking = plan_striped(
            ledger, platform, sources=[0, 1], egress=0, volume=500.0, t_start=0.0, t_end=100.0
        )
        assert booking is not None
        assert all(a.ingress != 1 for a in booking.allocations)

    def test_validation(self, setup):
        platform, ledger = setup
        with pytest.raises(ConfigurationError):
            plan_striped(ledger, platform, sources=[], egress=0, volume=1.0, t_start=0.0, t_end=1.0)
        with pytest.raises(ConfigurationError):
            plan_striped(ledger, platform, sources=[0, 0], egress=0, volume=1.0, t_start=0.0, t_end=1.0)
        with pytest.raises(ConfigurationError):
            plan_striped(ledger, platform, sources=[0], egress=0, volume=-1.0, t_start=0.0, t_end=1.0)
        with pytest.raises(ConfigurationError):
            plan_striped(ledger, platform, sources=[0], egress=0, volume=1.0, t_start=5.0, t_end=1.0)


@settings(max_examples=40, deadline=None)
@given(
    volume=st.floats(10.0, 50_000.0, allow_nan=False),
    num_sources=st.integers(1, 4),
    max_stream=st.one_of(st.none(), st.floats(10.0, 100.0, allow_nan=False)),
    preload=st.floats(0.0, 90.0, allow_nan=False),
)
def test_striped_properties(volume, num_sources, max_stream, preload):
    """Property: any booking carries exactly the volume, respects the
    deadline, and never overcommits the ledger."""
    platform = Platform.uniform(4, 2, 100.0)
    ledger = PortLedger(platform)
    if preload > 0:
        ledger.allocate(0, 0, 0.0, 500.0, preload)
    booking = book_striped(
        ledger,
        platform,
        sources=list(range(num_sources)),
        egress=0,
        volume=volume,
        t_start=0.0,
        t_end=1000.0,
        max_stream_rate=max_stream,
    )
    if booking is None:
        return
    assert booking.volume == pytest.approx(volume, rel=1e-9)
    assert booking.finish <= 1000.0 + 1e-9
    assert ledger.max_overcommit() <= 1e-6
