"""Tests for the order-space local search scheduler."""

import pytest

from repro.core import ConfigurationError, verify_schedule
from repro.exact import max_requests_rigid_exact
from repro.schedulers import (
    EarliestStartFlexible,
    FCFSRigid,
    LocalSearchScheduler,
    MinRatePolicy,
)
from repro.workload import paper_flexible_workload, paper_rigid_workload


class TestLocalSearchRigid:
    def test_valid_and_complete(self):
        prob = paper_rigid_workload(8.0, 120, seed=1)
        result = LocalSearchScheduler(mode="rigid", iterations=60, restarts=2).schedule(prob)
        verify_schedule(prob.platform, prob.requests, result)
        assert result.num_decided == prob.num_requests

    def test_never_worse_than_fcfs(self):
        # the first restart decodes the FCFS order, so the search result
        # dominates plain FCFS by construction
        for seed in range(4):
            prob = paper_rigid_workload(12.0, 80, seed=seed)
            search = LocalSearchScheduler(mode="rigid", iterations=40, restarts=1).schedule(prob)
            fcfs = FCFSRigid().schedule(prob)
            assert search.num_accepted >= fcfs.num_accepted

    def test_never_beats_exact(self):
        for seed in range(3):
            prob = paper_rigid_workload(8.0, 14, seed=seed)
            search = LocalSearchScheduler(mode="rigid", iterations=120, restarts=3).schedule(prob)
            exact = max_requests_rigid_exact(prob)
            assert search.num_accepted <= exact.num_accepted

    def test_often_reaches_exact_on_small(self):
        hits = 0
        for seed in range(5):
            prob = paper_rigid_workload(8.0, 12, seed=seed)
            search = LocalSearchScheduler(mode="rigid", iterations=200, restarts=4).schedule(prob)
            if search.num_accepted == max_requests_rigid_exact(prob).num_accepted:
                hits += 1
        assert hits >= 3

    def test_deterministic_for_seed(self):
        prob = paper_rigid_workload(8.0, 60, seed=2)
        a = LocalSearchScheduler(mode="rigid", iterations=50, seed=7).schedule(prob)
        b = LocalSearchScheduler(mode="rigid", iterations=50, seed=7).schedule(prob)
        assert set(a.accepted) == set(b.accepted)

    def test_rejects_flexible_in_rigid_mode(self):
        prob = paper_flexible_workload(2.0, 20, seed=1)
        with pytest.raises(ConfigurationError):
            LocalSearchScheduler(mode="rigid").schedule(prob)


class TestLocalSearchFlexible:
    def test_valid(self):
        prob = paper_flexible_workload(1.0, 100, seed=3)
        result = LocalSearchScheduler(
            mode="flexible", iterations=40, restarts=2, policy=MinRatePolicy()
        ).schedule(prob)
        verify_schedule(prob.platform, prob.requests, result)

    def test_never_worse_than_bookahead(self):
        prob = paper_flexible_workload(0.5, 100, seed=4)
        search = LocalSearchScheduler(mode="flexible", iterations=40, restarts=1).schedule(prob)
        book = EarliestStartFlexible().schedule(prob)
        assert search.num_accepted >= book.num_accepted


class TestValidation:
    def test_bad_mode(self):
        with pytest.raises(ConfigurationError):
            LocalSearchScheduler(mode="quantum")

    def test_bad_budget(self):
        with pytest.raises(ConfigurationError):
            LocalSearchScheduler(iterations=-1)
        with pytest.raises(ConfigurationError):
            LocalSearchScheduler(restarts=0)

    def test_empty(self):
        from repro.core import Platform, ProblemInstance, RequestSet

        prob = ProblemInstance(Platform.uniform(1, 1, 10.0), RequestSet())
        assert LocalSearchScheduler().schedule(prob).num_decided == 0
