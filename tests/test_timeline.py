"""Tests for BandwidthTimeline, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BandwidthTimeline


class TestBasics:
    def test_starts_zero(self):
        tl = BandwidthTimeline()
        assert tl.usage_at(0.0) == 0.0
        assert tl.usage_at(-1e9) == 0.0
        assert tl.is_zero()

    def test_single_add(self):
        tl = BandwidthTimeline()
        tl.add(10.0, 20.0, 5.0)
        assert tl.usage_at(9.999) == 0.0
        assert tl.usage_at(10.0) == 5.0
        assert tl.usage_at(15.0) == 5.0
        assert tl.usage_at(20.0) == 0.0  # half-open interval

    def test_overlapping_adds(self):
        tl = BandwidthTimeline()
        tl.add(0.0, 10.0, 3.0)
        tl.add(5.0, 15.0, 4.0)
        assert tl.usage_at(2.0) == 3.0
        assert tl.usage_at(7.0) == 7.0
        assert tl.usage_at(12.0) == 4.0

    def test_release_restores(self):
        tl = BandwidthTimeline()
        tl.add(0.0, 10.0, 3.0)
        tl.add(0.0, 10.0, -3.0)
        assert tl.is_zero()

    def test_empty_interval_rejected(self):
        tl = BandwidthTimeline()
        with pytest.raises(ValueError):
            tl.add(5.0, 5.0, 1.0)
        with pytest.raises(ValueError):
            tl.add(5.0, 4.0, 1.0)

    def test_zero_delta_noop(self):
        tl = BandwidthTimeline()
        tl.add(0.0, 10.0, 0.0)
        assert tl.num_segments == 1

    def test_clear(self):
        tl = BandwidthTimeline()
        tl.add(0.0, 5.0, 2.0)
        tl.clear()
        assert tl.is_zero()


class TestQueries:
    def _tl(self):
        tl = BandwidthTimeline()
        tl.add(0.0, 10.0, 2.0)
        tl.add(5.0, 20.0, 3.0)
        return tl  # usage: [0,5)=2, [5,10)=5, [10,20)=3

    def test_max_usage(self):
        tl = self._tl()
        assert tl.max_usage(0.0, 20.0) == 5.0
        assert tl.max_usage(0.0, 5.0) == 2.0
        assert tl.max_usage(10.0, 20.0) == 3.0
        # interval ending exactly at a breakpoint must not see beyond it
        assert tl.max_usage(0.0, 5.0) == 2.0
        assert tl.max_usage(20.0, 30.0) == 0.0

    def test_min_usage(self):
        tl = self._tl()
        assert tl.min_usage(0.0, 20.0) == 2.0
        assert tl.min_usage(5.0, 10.0) == 5.0
        assert tl.min_usage(15.0, 25.0) == 0.0

    def test_integral(self):
        tl = self._tl()
        assert tl.integral(0.0, 20.0) == pytest.approx(2 * 5 + 5 * 5 + 3 * 10)
        assert tl.integral(4.0, 6.0) == pytest.approx(2.0 + 5.0)

    def test_segments_clipped(self):
        tl = self._tl()
        segs = list(tl.segments(3.0, 12.0))
        assert segs == [(3.0, 5.0, 2.0), (5.0, 10.0, 5.0), (10.0, 12.0, 3.0)]

    def test_breakpoints(self):
        tl = self._tl()
        assert list(tl.breakpoints()) == [0.0, 5.0, 10.0, 20.0]

    def test_global_max(self):
        assert self._tl().global_max() == 5.0

    def test_copy_independent(self):
        tl = self._tl()
        clone = tl.copy()
        clone.add(0.0, 1.0, 100.0)
        assert tl.usage_at(0.5) == 2.0
        assert clone.usage_at(0.5) == 102.0


class TestCoalescing:
    def test_adjacent_equal_segments_merge(self):
        tl = BandwidthTimeline()
        tl.add(0.0, 10.0, 2.0)
        tl.add(10.0, 20.0, 2.0)
        # one finite segment [0, 20) at 2.0 -> breakpoints {0, 20}
        assert list(tl.breakpoints()) == [0.0, 20.0]

    def test_release_merges_back(self):
        tl = BandwidthTimeline()
        tl.add(0.0, 30.0, 5.0)
        tl.add(10.0, 20.0, 1.0)
        tl.add(10.0, 20.0, -1.0)
        assert list(tl.breakpoints()) == [0.0, 30.0]

    def test_segment_count_stays_bounded(self):
        tl = BandwidthTimeline()
        for i in range(100):
            tl.add(float(i), float(i + 1), 1.0)
        # all segments equal -> coalesced into one
        assert tl.num_segments <= 3


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

interval_strategy = st.tuples(
    st.floats(min_value=0.0, max_value=1000.0, allow_nan=False),
    st.floats(min_value=0.001, max_value=500.0, allow_nan=False),
    st.floats(min_value=0.001, max_value=100.0, allow_nan=False),
)


@settings(max_examples=200, deadline=None)
@given(st.lists(interval_strategy, min_size=1, max_size=30))
def test_timeline_matches_bruteforce(intervals):
    """Timeline agrees with a dense numpy reference on usage and integral."""
    tl = BandwidthTimeline()
    for start, length, bw in intervals:
        tl.add(start, start + length, bw)

    edges = sorted({s for s, l, _ in intervals} | {s + l for s, l, _ in intervals})
    probes = np.array(edges)
    mids = (probes[:-1] + probes[1:]) / 2 if len(probes) > 1 else np.array([])
    for t in list(probes) + list(mids):
        expected = sum(bw for s, l, bw in intervals if s <= t < s + l)
        assert tl.usage_at(float(t)) == pytest.approx(expected, rel=1e-9, abs=1e-9)

    lo, hi = edges[0], edges[-1]
    if hi > lo:
        expected_integral = sum(
            bw * (min(hi, s + l) - max(lo, s)) for s, l, bw in intervals if s + l > lo and s < hi
        )
        assert tl.integral(lo, hi) == pytest.approx(expected_integral, rel=1e-9, abs=1e-6)
        expected_max = max(
            sum(bw for s, l, bw in intervals if s <= t < s + l) for t in list(probes[:-1]) + list(mids)
        )
        assert tl.max_usage(lo, hi) == pytest.approx(expected_max, rel=1e-9, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(st.lists(interval_strategy, min_size=1, max_size=20))
def test_add_then_release_returns_to_zero(intervals):
    """Releasing every allocation leaves the identically-zero function."""
    tl = BandwidthTimeline()
    for start, length, bw in intervals:
        tl.add(start, start + length, bw)
    for start, length, bw in intervals:
        tl.add(start, start + length, -bw)
    for t in {s for s, _, _ in intervals} | {s + l for s, l, _ in intervals}:
        assert tl.usage_at(t) == pytest.approx(0.0, abs=1e-9)


@settings(max_examples=100, deadline=None)
@given(st.lists(interval_strategy, min_size=1, max_size=25))
def test_coalescing_never_changes_semantics(intervals):
    """num_segments stays small when all values collapse to equal levels."""
    tl = BandwidthTimeline()
    for start, length, _ in intervals:
        tl.add(start, start + length, 1.0)
        tl.add(start, start + length, -1.0)
    assert tl.num_segments == 1
