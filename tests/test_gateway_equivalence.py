"""Property tests anchoring the gateway to the monolithic service.

Two guarantees the gateway design leans on:

1. **Single-shard equivalence** — a ``Gateway(num_shards=1,
   batch_size=1, ordering="fifo")`` is decision-for-decision identical to
   :class:`~repro.control.service.ReservationService`: same accepts, same
   allocations (σ, τ, bw), same :class:`RejectReason` on rejects, same
   displacement victims, across interleaved submits / cancels / aborts /
   degradations.  The headroom fast path must be invisible here.
2. **No overcommit under sharding** — for 2/4/8 shards, under port
   faults, broker crashes, and random mid-flight aborts, no port's
   committed usage ever exceeds its capacity (Eq. 1 per shard slice).
"""

import numpy as np
import pytest

from repro.control import BrokerCrash, PortFault, run_gateway_fault_drill
from repro.control.service import ReservationService
from repro.core.ledger import CAPACITY_SLACK
from repro.core.platform import Platform
from repro.core.request import Request
from repro.gateway import Gateway

PORTS = 5
CAP = 1000.0


def workload(seed, n=80, horizon=400.0):
    """A mixed op stream: (kind, payload) tuples in time order.

    Sized so the platform saturates part-way through — the stream must
    produce real rejections (each reason is asserted seen at least once
    across the seeds) as well as accepts, cancels, aborts, and degrades.
    """
    rng = np.random.default_rng(seed)
    ops = []
    t = 0.0
    live_guess = []
    for i in range(n):
        t += float(rng.exponential(horizon / n))
        kind = rng.random()
        if kind < 0.70 or not live_guess:
            window = float(rng.uniform(40.0, 500.0))
            # Keep the request structurally valid (MinRate <= CAP) while
            # loading the platform enough to force capacity rejections.
            volume = min(float(rng.uniform(2_000.0, 60_000.0)), 0.9 * CAP * window)
            ops.append(
                (
                    "submit",
                    {
                        "ingress": int(rng.integers(PORTS)),
                        "egress": int(rng.integers(PORTS)),
                        "volume": volume,
                        "deadline": t + window,
                        "now": t,
                        # Sometimes cap the rate so MINRATE_EXCEEDS_MAXRATE
                        # shows up at candidate starts late in the window.
                        "max_rate": float(rng.choice([CAP, volume / window * 1.5])),
                    },
                )
            )
            live_guess.append(len([o for o in ops if o[0] == "submit"]) - 1)
        elif kind < 0.80:
            ops.append(("cancel", {"rid": int(rng.choice(live_guess)), "now": t}))
        elif kind < 0.90:
            ops.append(("abort", {"rid": int(rng.choice(live_guess)), "now": t}))
        else:
            ops.append(
                (
                    "degrade",
                    {
                        "side": str(rng.choice(["ingress", "egress"])),
                        "port": int(rng.integers(PORTS)),
                        "amount": float(rng.uniform(200.0, 900.0)),
                        "start": t,
                        "end": t + float(rng.uniform(30.0, 200.0)),
                        "now": t,
                    },
                )
            )
    return ops


def run_pair(seed):
    """Drive the same op stream through both front-ends; compare as we go."""
    service = ReservationService(Platform.uniform(PORTS, PORTS, CAP))
    gateway = Gateway(Platform.uniform(PORTS, PORTS, CAP), num_shards=1, batch_size=1)
    reasons = set()
    decisions = 0
    for kind, args in workload(seed):
        if kind == "submit":
            rs = service.submit(**args)
            tg = gateway.submit(**args)
            rg = tg.reservation
            assert tg.decided, "batch_size=1 must decide at submit"
            assert rg.rid == rs.rid
            assert rg.confirmed == rs.confirmed, (
                f"seed {seed} rid {rs.rid}: service={rs.confirmed} gateway={rg.confirmed}"
            )
            if rs.confirmed:
                assert rg.allocation.sigma == pytest.approx(rs.allocation.sigma, abs=1e-9)
                assert rg.allocation.tau == pytest.approx(rs.allocation.tau, abs=1e-9)
                assert rg.allocation.bw == pytest.approx(rs.allocation.bw, abs=1e-9)
            else:
                assert rg.reject_reason == rs.reject_reason, (
                    f"seed {seed} rid {rs.rid}: "
                    f"service={rs.reject_reason} gateway={rg.reject_reason}"
                )
                reasons.add(rs.reject_reason)
            decisions += 1
        elif kind == "cancel":
            assert gateway.cancel(args["rid"], now=args["now"]) == service.cancel(
                args["rid"], now=args["now"]
            )
        elif kind == "abort":
            assert gateway.abort(args["rid"], now=args["now"]) == service.abort(
                args["rid"], now=args["now"]
            )
        else:
            ds = service.degrade(**args)
            dg = gateway.degrade(**args)
            assert [r.rid for r in dg] == [r.rid for r in ds]
    # Terminal ledger agreement: identical usage on every port over time.
    finish = max(
        (r.allocation.tau for r in service.reservations() if r.allocation), default=0.0
    )
    for t in np.linspace(0.0, finish + 1.0, 37):
        ins_g, outs_g = gateway.port_usage(float(t))
        for port in range(PORTS):
            assert ins_g[port] == pytest.approx(
                service.port_usage(float(t))[0][port], abs=1e-6
            )
            assert outs_g[port] == pytest.approx(
                service.port_usage(float(t))[1][port], abs=1e-6
            )
    return decisions, reasons


class TestSingleShardEquivalence:
    SEEDS = (101, 202, 303, 404)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_decision_for_decision(self, seed):
        decisions, _ = run_pair(seed)
        assert decisions >= 40

    def test_workloads_exercise_accepts_and_reject_reasons(self):
        """The equivalence claim is vacuous unless rejects actually occur."""
        seen = set()
        for seed in self.SEEDS:
            _, reasons = run_pair(seed)
            seen |= {r.value for r in reasons}
        assert "ingress-full" in seen or "egress-full" in seen
        assert len(seen) >= 2, f"workloads too easy, only saw: {seen}"

    def test_fastpath_engages_but_stays_invisible(self):
        """The headroom index must answer some decisions — and test_decision_
        for_decision above proves those answers match the full search."""
        gw = Gateway(Platform.uniform(PORTS, PORTS, CAP), num_shards=1, batch_size=1)
        for kind, args in workload(self.SEEDS[0]):
            if kind == "submit":
                gw.submit(**args)
        assert gw.stats.fastpath_hits > 0


class TestShardedNoOvercommit:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_no_capacity_violation_under_faults(self, shards):
        rng = np.random.default_rng(shards)
        n_ports = 8
        requests = []
        for rid in range(120):
            t0 = float(rng.uniform(0.0, 500.0))
            window = float(rng.uniform(60.0, 600.0))
            requests.append(
                Request(
                    rid=rid,
                    ingress=int(rng.integers(n_ports)),
                    egress=int(rng.integers(n_ports)),
                    volume=min(float(rng.uniform(5_000.0, 80_000.0)), 0.9 * CAP * window),
                    t_start=t0,
                    t_end=t0 + window,
                    max_rate=CAP,
                )
            )
        report = run_gateway_fault_drill(
            Platform.uniform(n_ports, n_ports, CAP),
            requests,
            num_shards=shards,
            batch_size=4,
            abort_rate=0.1,
            faults=[
                PortFault(side="ingress", port=1, amount=600.0, start=100.0, end=300.0),
                PortFault(side="egress", port=3, amount=CAP, start=200.0, end=260.0),
            ],
            crashes=[
                BrokerCrash(shard=0, at=150.0, restart_at=220.0),
                BrokerCrash(shard=shards - 1, at=400.0),
            ],
            seed=shards * 7,
        )
        gw = report.gateway
        assert gw.stats.accepted > 0
        # Eq. 1 on every shard slice, degradations included.
        assert gw.max_overcommit() <= CAPACITY_SLACK * CAP
        # No transaction left half-done: every hold committed or aborted.
        for broker in gw.brokers:
            assert broker.holds() == []
