"""Tests for the flight recorder (repro.obs.recorder).

A bounded per-component ring of recent events, dumped to a deterministic,
schema-validated post-mortem artifact whenever the invariant checker
fails — and on demand from drills.
"""

import json

import pytest

from repro.core.platform import Platform
from repro.gateway import Gateway, check_gateway
from repro.obs import FlightRecorder, validate_flight_dump
from repro.obs.cli import main
from repro.obs.schema import SchemaError


def platform(n=4, cap=1000.0):
    return Platform.uniform(n, n, cap)


class TestRingBuffer:
    def test_capacity_bounds_each_component_with_exact_drop_accounting(self):
        recorder = FlightRecorder(capacity=3)
        for k in range(8):
            recorder.record("gateway", float(k), f"e{k}")
        recorder.record("rpc.shard0", 99.0, "lonely")
        assert [e.t for e in recorder.entries("gateway")] == [5.0, 6.0, 7.0]
        assert recorder.dropped("gateway") == 5
        assert recorder.dropped("rpc.shard0") == 0
        assert recorder.components() == ["gateway", "rpc.shard0"]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_entries_keep_fields(self):
        recorder = FlightRecorder()
        recorder.record("slo", 1.5, "slo.breach", rule="accept-rate-floor", value=0.0)
        (entry,) = recorder.entries("slo")
        assert entry.kind == "slo.breach"
        assert entry.fields == {"rule": "accept-rate-floor", "value": 0.0}


class TestDump:
    def _recorder(self):
        recorder = FlightRecorder(capacity=4)
        for k in range(6):
            recorder.record("gateway", float(k), "tick", k=k)
        recorder.record("rpc.shard1", 2.0, "rpc.prepare", rid=3)
        return recorder

    def test_dump_is_schema_valid(self):
        dump = self._recorder().dump(reason="drill", now=6.0)
        validate_flight_dump(dump)
        assert dump["reason"] == "drill" and dump["now"] == 6.0
        components = {c["component"]: c for c in dump["components"]}
        assert components["gateway"]["dropped"] == 2
        assert len(components["gateway"]["events"]) == 4

    def test_dump_json_is_byte_stable(self):
        a = self._recorder().dump_json(reason="drill", now=6.0)
        b = self._recorder().dump_json(reason="drill", now=6.0)
        assert a == b
        assert a.endswith("\n")
        validate_flight_dump(json.loads(a))

    def test_save_dump_writes_the_artifact(self, tmp_path):
        path = self._recorder().save_dump(
            tmp_path / "nested" / "FLIGHT.json", reason="on-demand", now=6.0
        )
        document = json.loads(path.read_text(encoding="utf-8"))
        validate_flight_dump(document)
        assert document["reason"] == "on-demand"

    def test_schema_rejects_malformed_dumps(self):
        dump = self._recorder().dump(reason="drill", now=6.0)
        del dump["components"]
        with pytest.raises(SchemaError):
            validate_flight_dump(dump)

    def test_cli_validates_flight_dumps(self, tmp_path, capsys):
        path = self._recorder().save_dump(tmp_path / "f.json", reason="x", now=0.0)
        assert main(["validate", str(path)]) == 0
        assert "valid flight document" in capsys.readouterr().out


class TestFailureCapture:
    def test_invariant_violation_attaches_a_schema_valid_dump(self):
        recorder = FlightRecorder()
        gw = Gateway(platform(), num_shards=2, recorder=recorder)
        gw.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        gw.brokers[0].book_pair(0, 0, 0.0, 10.0, 50.0)  # behind the gateway's back
        report = check_gateway(gw, now=0.0)
        assert not report.ok
        assert report.flight is not None
        validate_flight_dump(report.flight)
        assert report.flight["reason"].startswith("invariant-violation:")
        # The recorder retained the causal records leading up to the failure.
        components = {c["component"] for c in report.flight["components"]}
        assert "gateway" in components
        # ... but the dump stays out of the matrix-cell payload.
        assert "flight" not in report.to_dict()

    def test_clean_audit_attaches_nothing(self):
        recorder = FlightRecorder()
        gw = Gateway(platform(), num_shards=2, recorder=recorder)
        gw.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        report = check_gateway(gw, now=0.0)
        assert report.ok and report.flight is None

    def test_recorderless_gateway_fails_without_a_dump(self):
        gw = Gateway(platform(), num_shards=2)
        gw.brokers[0].book_pair(0, 0, 0.0, 10.0, 50.0)
        report = check_gateway(gw, now=0.0)
        assert not report.ok and report.flight is None

    def test_recorder_runs_even_under_null_telemetry(self):
        recorder = FlightRecorder()
        gw = Gateway(platform(), num_shards=2, recorder=recorder)
        assert not gw.telemetry.enabled
        gw.submit(ingress=0, egress=1, volume=100.0, deadline=100.0, now=0.0)
        assert recorder.components(), "recorder must not depend on telemetry"
