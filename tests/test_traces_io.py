"""Tests for workload trace persistence (npz / csv)."""

import pytest

from repro.workload import load_csv, load_npz, paper_flexible_workload, save_csv, save_npz


@pytest.fixture
def requests():
    return paper_flexible_workload(2.0, 40, seed=8).requests


def test_npz_roundtrip(tmp_path, requests):
    path = tmp_path / "trace.npz"
    save_npz(path, requests)
    clone = load_npz(path)
    assert list(clone) == list(requests)


def test_csv_roundtrip(tmp_path, requests):
    path = tmp_path / "trace.csv"
    save_csv(path, requests)
    clone = load_csv(path)
    assert len(clone) == len(requests)
    for a, b in zip(clone, requests):
        assert a.rid == b.rid
        assert a.volume == pytest.approx(b.volume)
        assert a.t_start == pytest.approx(b.t_start)


def test_csv_header(tmp_path, requests):
    path = tmp_path / "trace.csv"
    save_csv(path, requests)
    header = path.read_text().splitlines()[0]
    assert header == "rid,ingress,egress,volume,t_start,t_end,max_rate"
