"""Tests for the exact solvers: 3-DM, the Theorem 1 reduction, MILP, B&B,
LP bound, and the polynomial single-pair algorithms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    Platform,
    ProblemInstance,
    Request,
    RequestSet,
    verify_schedule,
)
from repro.exact import (
    ThreeDMInstance,
    edf_single_pair_unit,
    greedy_single_pair_rigid,
    max_requests_rigid_bb,
    max_requests_rigid_exact,
    max_requests_unit_slotted_exact,
    random_3dm,
    reduce_3dm,
    rigid_lp_bound,
    schedule_from_matching,
    solve_3dm,
)
from repro.schedulers import cumulated_slots, minbw_slots
from repro.workload import paper_rigid_workload


class TestThreeDM:
    def test_trivial_yes(self):
        inst = ThreeDMInstance(2, [(0, 0, 0), (1, 1, 1)])
        assert solve_3dm(inst) == (0, 1)

    def test_trivial_no(self):
        inst = ThreeDMInstance(2, [(0, 0, 0), (1, 1, 0)])  # share z = 0
        assert solve_3dm(inst) is None

    def test_needs_all_x_covered(self):
        inst = ThreeDMInstance(2, [(0, 0, 0), (0, 1, 1)])  # x = 1 uncovered
        assert solve_3dm(inst) is None

    def test_is_matching(self):
        inst = ThreeDMInstance(2, [(0, 0, 0), (1, 1, 1), (1, 0, 1)])
        assert inst.is_matching([0, 1])
        assert not inst.is_matching([0, 2])  # share y = 0
        assert not inst.is_matching([0])     # wrong size

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ThreeDMInstance(0, [])
        with pytest.raises(ConfigurationError):
            ThreeDMInstance(2, [(0, 0, 5)])
        with pytest.raises(ConfigurationError):
            ThreeDMInstance(2, [(0, 0, 0), (0, 0, 0)])

    def test_planted_instances_solve(self):
        rng = np.random.default_rng(0)
        for n in (2, 3, 4, 5):
            inst = random_3dm(n, num_extra=2 * n, rng=rng, plant_matching=True)
            assert solve_3dm(inst) is not None

    def test_backtracker_matches_bruteforce(self):
        from itertools import combinations

        rng = np.random.default_rng(1)
        for _ in range(20):
            inst = random_3dm(3, num_extra=4, rng=rng, plant_matching=False)
            brute = any(
                inst.is_matching(sel) for sel in combinations(range(inst.num_triples), inst.n)
            )
            assert (solve_3dm(inst) is not None) == brute


class TestReduction:
    def test_structure(self):
        inst = ThreeDMInstance(3, [(0, 0, 0), (1, 1, 1), (2, 2, 2), (0, 1, 2)])
        reduced = reduce_3dm(inst)
        n = 3
        assert reduced.problem.platform.num_ingress == n + 1
        assert reduced.problem.platform.bin(n) == n - 1
        assert reduced.problem.platform.bin(0) == 1.0
        assert reduced.num_regular == 4
        assert reduced.num_special == 2 * n * (n - 1)
        assert reduced.target == n + 2 * n * (n - 1)

    def test_requires_n_at_least_2(self):
        with pytest.raises(ConfigurationError):
            reduce_3dm(ThreeDMInstance(1, [(0, 0, 0)]))

    def test_forward_direction_constructive(self):
        """3-DM solvable -> the proof's schedule accepts exactly K requests
        and satisfies every constraint."""
        rng = np.random.default_rng(7)
        for n in (2, 3, 4):
            inst = random_3dm(n, num_extra=n, rng=rng, plant_matching=True)
            matching = solve_3dm(inst)
            assert matching is not None
            reduced = reduce_3dm(inst)
            schedule = schedule_from_matching(reduced, matching)
            verify_schedule(reduced.problem.platform, reduced.problem.requests, schedule)
            assert schedule.num_accepted == reduced.target

    def test_constructive_rejects_non_matching(self):
        inst = ThreeDMInstance(2, [(0, 0, 0), (1, 1, 1), (1, 0, 1)])
        reduced = reduce_3dm(inst)
        with pytest.raises(ConfigurationError):
            schedule_from_matching(reduced, (0, 2))

    def test_theorem1_equivalence_exact(self):
        """3-DM solvable <-> K requests schedulable (checked by MILP)."""
        rng = np.random.default_rng(11)
        solvable_seen = unsolvable_seen = 0
        for trial in range(14):
            plant = trial % 2 == 0
            inst = random_3dm(2, num_extra=3, rng=rng, plant_matching=plant)
            reduced = reduce_3dm(inst)
            schedule = max_requests_unit_slotted_exact(reduced.problem)
            verify_schedule(reduced.problem.platform, reduced.problem.requests, schedule)
            has_matching = solve_3dm(inst) is not None
            reaches_target = schedule.num_accepted >= reduced.target
            assert has_matching == reaches_target
            solvable_seen += has_matching
            unsolvable_seen += not has_matching
        assert solvable_seen and unsolvable_seen  # both branches exercised

    def test_theorem1_equivalence_n3(self):
        rng = np.random.default_rng(13)
        for plant in (True, False):
            inst = random_3dm(3, num_extra=3, rng=rng, plant_matching=plant)
            reduced = reduce_3dm(inst)
            schedule = max_requests_unit_slotted_exact(reduced.problem)
            assert (solve_3dm(inst) is not None) == (schedule.num_accepted >= reduced.target)


class TestRigidExactSolvers:
    def _small_problem(self, seed, n=12, load=6.0):
        return paper_rigid_workload(load, n, seed=seed)

    def test_milp_beats_or_ties_heuristics(self):
        for seed in range(5):
            prob = self._small_problem(seed)
            exact = max_requests_rigid_exact(prob)
            verify_schedule(prob.platform, prob.requests, exact)
            for heuristic in (cumulated_slots(), minbw_slots()):
                assert exact.num_accepted >= heuristic.schedule(prob).num_accepted

    def test_bb_agrees_with_milp(self):
        for seed in range(8):
            prob = self._small_problem(seed + 100, n=14)
            assert (
                max_requests_rigid_bb(prob).num_accepted
                == max_requests_rigid_exact(prob).num_accepted
            )

    def test_lp_bound_dominates(self):
        for seed in range(5):
            prob = self._small_problem(seed + 200, n=16)
            bound = rigid_lp_bound(prob)
            assert max_requests_rigid_exact(prob).num_accepted <= bound + 1e-6

    def test_empty(self):
        prob = ProblemInstance(Platform.uniform(2, 2, 10.0), RequestSet())
        assert max_requests_rigid_exact(prob).num_decided == 0
        assert max_requests_rigid_bb(prob).num_decided == 0
        assert rigid_lp_bound(prob) == 0.0

    def test_rejects_flexible(self):
        flex = Request(0, 0, 1, volume=10.0, t_start=0.0, t_end=10.0, max_rate=5.0)
        prob = ProblemInstance(Platform.uniform(2, 2, 10.0), RequestSet([flex]))
        with pytest.raises(ConfigurationError):
            max_requests_rigid_exact(prob)
        with pytest.raises(ConfigurationError):
            max_requests_rigid_bb(prob)
        with pytest.raises(ConfigurationError):
            rigid_lp_bound(prob)

    def test_unconstrained_accepts_all(self):
        requests = RequestSet(
            [Request.rigid(i, 0, 1, volume=10.0, t_start=float(10 * i), t_end=float(10 * i + 5)) for i in range(4)]
        )
        prob = ProblemInstance(Platform.uniform(2, 2, 100.0), requests)
        assert max_requests_rigid_exact(prob).num_accepted == 4


def unit_request(rid, i, e, release, deadline):
    """Unit-bandwidth, one-slot request with window [release, deadline]."""
    return Request(rid, i, e, volume=1.0, t_start=float(release), t_end=float(deadline), max_rate=1.0)


class TestUnitSlottedExact:
    def test_simple_packing(self):
        # 2 slots, capacity 1: three requests, only two fit
        requests = RequestSet(
            [unit_request(0, 0, 0, 0, 2), unit_request(1, 0, 0, 0, 2), unit_request(2, 0, 0, 0, 2)]
        )
        prob = ProblemInstance(Platform.uniform(1, 1, 1.0), requests)
        result = max_requests_unit_slotted_exact(prob)
        assert result.num_accepted == 2
        verify_schedule(prob.platform, prob.requests, result)

    def test_rejects_misaligned(self):
        bad = Request(0, 0, 0, volume=1.0, t_start=0.5, t_end=2.5, max_rate=1.0)
        prob = ProblemInstance(Platform.uniform(1, 1, 1.0), RequestSet([bad]))
        with pytest.raises(ConfigurationError):
            max_requests_unit_slotted_exact(prob)

    def test_rejects_multi_slot(self):
        bad = Request(0, 0, 0, volume=2.0, t_start=0.0, t_end=4.0, max_rate=1.0)
        prob = ProblemInstance(Platform.uniform(1, 1, 1.0), RequestSet([bad]))
        with pytest.raises(ConfigurationError):
            max_requests_unit_slotted_exact(prob)


class TestSinglePair:
    def test_greedy_rigid_simple(self):
        # capacity 2 tracks of bw 1; three overlapping unit requests
        requests = RequestSet(
            [
                Request.rigid(0, 0, 0, volume=10.0, t_start=0.0, t_end=10.0),
                Request.rigid(1, 0, 0, volume=10.0, t_start=0.0, t_end=10.0),
                Request.rigid(2, 0, 0, volume=5.0, t_start=2.0, t_end=7.0),
            ]
        )
        prob = ProblemInstance(Platform.uniform(1, 1, 2.0), requests)
        result = greedy_single_pair_rigid(prob)
        verify_schedule(prob.platform, prob.requests, result)
        assert result.num_accepted == 2

    def test_greedy_rigid_matches_exact(self):
        rng = np.random.default_rng(3)
        for _ in range(25):
            n = int(rng.integers(3, 12))
            requests = []
            for rid in range(n):
                start = float(rng.integers(0, 10))
                length = float(rng.integers(1, 6))
                requests.append(
                    Request.rigid(rid, 0, 0, volume=length, t_start=start, t_end=start + length)
                )
            prob = ProblemInstance(Platform.uniform(1, 1, 2.0), RequestSet(requests))
            greedy = greedy_single_pair_rigid(prob)
            exact = max_requests_rigid_exact(prob)
            verify_schedule(prob.platform, prob.requests, greedy)
            assert greedy.num_accepted == exact.num_accepted

    def test_greedy_rejects_multi_pair(self):
        requests = RequestSet(
            [
                Request.rigid(0, 0, 0, volume=1.0, t_start=0.0, t_end=1.0),
                Request.rigid(1, 1, 0, volume=1.0, t_start=0.0, t_end=1.0),
            ]
        )
        prob = ProblemInstance(Platform.uniform(2, 2, 1.0), requests)
        with pytest.raises(ConfigurationError):
            greedy_single_pair_rigid(prob)

    def test_greedy_rejects_nonuniform(self):
        requests = RequestSet(
            [
                Request.rigid(0, 0, 0, volume=1.0, t_start=0.0, t_end=1.0),
                Request.rigid(1, 0, 0, volume=2.0, t_start=0.0, t_end=1.0),
            ]
        )
        prob = ProblemInstance(Platform.uniform(1, 1, 5.0), requests)
        with pytest.raises(ConfigurationError):
            greedy_single_pair_rigid(prob)

    def test_edf_simple(self):
        # capacity 1, two slots; three unit jobs, one must drop
        requests = RequestSet(
            [unit_request(0, 0, 0, 0, 1), unit_request(1, 0, 0, 0, 2), unit_request(2, 0, 0, 1, 2)]
        )
        prob = ProblemInstance(Platform.uniform(1, 1, 1.0), requests)
        result = edf_single_pair_unit(prob)
        verify_schedule(prob.platform, prob.requests, result)
        # EDF serves 0 at slot 0 (deadline 1), then one of {1, 2} at slot 1
        assert result.num_accepted == 2
        assert 0 in result.accepted

    def test_edf_matches_exact(self):
        rng = np.random.default_rng(5)
        for _ in range(25):
            n = int(rng.integers(3, 14))
            requests = []
            for rid in range(n):
                release = int(rng.integers(0, 6))
                deadline = release + int(rng.integers(1, 5))
                requests.append(unit_request(rid, 0, 0, release, deadline))
            capacity = float(rng.integers(1, 3))
            prob = ProblemInstance(Platform.uniform(1, 1, capacity), RequestSet(requests))
            edf = edf_single_pair_unit(prob)
            exact = max_requests_unit_slotted_exact(prob)
            verify_schedule(prob.platform, prob.requests, edf)
            assert edf.num_accepted == exact.num_accepted


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 100_000))
def test_heuristics_never_beat_exact(seed):
    """Property: no heuristic exceeds the exact optimum (sanity of both)."""
    prob = paper_rigid_workload(8.0, 12, seed=seed)
    exact = max_requests_rigid_exact(prob).num_accepted
    bound = rigid_lp_bound(prob)
    assert exact <= bound + 1e-6
    for heuristic in (cumulated_slots(), minbw_slots()):
        assert heuristic.schedule(prob).num_accepted <= exact


class TestWeightedExact:
    def test_weights_change_the_winner(self):
        # two conflicting unit requests: with weights the heavier one wins
        requests = RequestSet(
            [
                Request.rigid(0, 0, 0, volume=10.0, t_start=0.0, t_end=10.0),
                Request.rigid(1, 0, 0, volume=10.0, t_start=0.0, t_end=10.0),
            ]
        )
        prob = ProblemInstance(Platform.uniform(1, 1, 1.0), requests)
        plain = max_requests_rigid_exact(prob)
        assert plain.num_accepted == 1
        weighted = max_requests_rigid_exact(prob, weights={1: 5.0})
        assert 1 in weighted.accepted

    def test_weighted_objective_dominates(self):
        prob = paper_rigid_workload(8.0, 14, seed=3)
        weights = {r.rid: r.volume / 1e5 for r in prob.requests}
        weighted = max_requests_rigid_exact(prob, weights=weights)
        plain = max_requests_rigid_exact(prob)

        def value(result):
            return sum(weights[rid] for rid in result.accepted)

        assert value(weighted) >= value(plain) - 1e-9
        verify_schedule(prob.platform, prob.requests, weighted)

    def test_negative_weight_rejected(self):
        prob = paper_rigid_workload(4.0, 6, seed=1)
        with pytest.raises(ConfigurationError):
            max_requests_rigid_exact(prob, weights={0: -1.0})


class TestWeightedCostHeuristic:
    def test_weight_flips_slot_decision(self):
        from repro.schedulers import MinBwCost, SlotsScheduler, WeightedCost

        requests = RequestSet(
            [
                Request.rigid(0, 0, 0, volume=40.0, t_start=0.0, t_end=10.0),  # bw 4
                Request.rigid(1, 0, 0, volume=80.0, t_start=0.0, t_end=10.0),  # bw 8
            ]
        )
        prob = ProblemInstance(Platform.uniform(1, 1, 10.0), requests)
        plain = SlotsScheduler(MinBwCost()).schedule(prob)
        assert 0 in plain.accepted and 1 in plain.rejected
        boosted = SlotsScheduler(WeightedCost(MinBwCost(), {1: 10.0})).schedule(prob)
        assert 1 in boosted.accepted and 0 in boosted.rejected

    def test_weight_validation(self):
        from repro.schedulers import MinBwCost, WeightedCost

        with pytest.raises(ValueError):
            WeightedCost(MinBwCost(), {0: 0.0})
