"""Tests for the SLO watchdog (repro.obs.slo).

Declarative rules over windowed aggregates, edge-triggered breach
events, the live gateway integration, the offline artifact replay and
the ``grid-obs slo`` subcommand.
"""

import json

import pytest

from repro.core.platform import Platform
from repro.gateway import ChaosPolicy, Gateway
from repro.obs import (
    FlightRecorder,
    RunTelemetry,
    SloRule,
    SloWatchdog,
    Telemetry,
    default_slo_rules,
    evaluate_artifact,
    load_rules,
)
from repro.obs.cli import main
from repro.obs.slo import SloRuleError


def platform(n=4, cap=1000.0):
    return Platform.uniform(n, n, cap)


class TestRules:
    def test_unknown_metric_rejected(self):
        with pytest.raises(SloRuleError):
            SloRule("r", "cpu_load", "floor", 0.5)

    def test_bad_bound_rejected(self):
        with pytest.raises(SloRuleError):
            SloRule("r", "accept_rate", "between", 0.5)

    def test_nonpositive_window_rejected(self):
        with pytest.raises(SloRuleError):
            SloRule("r", "accept_rate", "floor", 0.5, window=0.0)

    def test_floor_and_ceiling_semantics(self):
        floor = SloRule("f", "accept_rate", "floor", 0.5)
        assert floor.violated(0.49) and not floor.violated(0.5)
        ceiling = SloRule("c", "backlog_depth", "ceiling", 4.0)
        assert ceiling.violated(4.1) and not ceiling.violated(4.0)

    def test_dict_roundtrip_maps_infinite_window_to_none(self):
        rule = SloRule("r", "accept_rate", "floor", 0.5)
        data = rule.to_dict()
        assert data["window"] is None
        assert SloRule.from_dict(data) == rule
        windowed = SloRule("w", "backlog_depth", "ceiling", 4.0, window=60.0)
        assert SloRule.from_dict(windowed.to_dict()) == windowed

    def test_missing_key_raises(self):
        with pytest.raises(SloRuleError):
            SloRule.from_dict({"name": "r", "metric": "accept_rate"})

    def test_duplicate_rule_names_rejected(self):
        rule = SloRule("dup", "accept_rate", "floor", 0.5)
        with pytest.raises(SloRuleError):
            SloWatchdog([rule, rule])

    def test_default_rules_scale_to_gateway_knobs(self):
        rules = {r.name: r for r in default_slo_rules(hold_ttl=100.0, backlog_limit=8)}
        assert rules["hold-age-ceiling"].threshold == pytest.approx(150.0)
        assert rules["backlog-ceiling"].threshold == pytest.approx(8.0)
        assert "backlog-ceiling" not in {r.name for r in default_slo_rules()}


class TestWatchdog:
    def test_accept_rate_floor_breaches(self):
        dog = SloWatchdog([SloRule("floor", "accept_rate", "floor", 0.5)])
        dog.admission(1.0, accepted=False, latency=0.0)
        dog.admission(2.0, accepted=False, latency=0.0)
        breaches = dog.evaluate(2.0)
        assert len(breaches) == 1
        assert breaches[0].value == 0.0 and breaches[0].at == 2.0
        assert not dog.ok

    def test_no_data_is_not_a_breach(self):
        dog = SloWatchdog([SloRule("floor", "accept_rate", "floor", 0.5)])
        assert dog.evaluate(10.0) == [] and dog.ok

    def test_breaches_are_edge_triggered(self):
        dog = SloWatchdog([SloRule("floor", "accept_rate", "floor", 0.5)])
        dog.admission(1.0, accepted=False, latency=0.0)
        assert len(dog.evaluate(1.0)) == 1
        assert dog.evaluate(2.0) == []  # still violated: no new breach
        dog.admission(3.0, accepted=True, latency=0.0)
        dog.admission(3.5, accepted=True, latency=0.0)
        assert dog.evaluate(4.0) == []  # recovered
        for t in (5.0, 6.0, 7.0):
            dog.admission(t, accepted=False, latency=0.0)
        assert len(dog.evaluate(7.0)) == 1  # re-crossed: one fresh breach
        assert len(dog.breaches) == 2

    def test_windowing_forgets_old_admissions(self):
        dog = SloWatchdog(
            [SloRule("floor", "accept_rate", "floor", 0.5, window=10.0)]
        )
        dog.admission(0.0, accepted=False, latency=0.0)
        dog.admission(50.0, accepted=True, latency=0.0)
        assert dog.evaluate(55.0) == []  # the rejection aged out
        assert dog.ok

    def test_p99_latency_ceiling(self):
        # With 10 decisions the p99 is the max: one slow admission breaches.
        dog = SloWatchdog([SloRule("p99", "p99_admission_latency", "ceiling", 10.0)])
        for k in range(9):
            dog.admission(float(k), accepted=True, latency=1.0)
        assert dog.evaluate(9.0) == []
        dog.admission(9.0, accepted=True, latency=500.0)
        (breach,) = dog.evaluate(10.0)
        assert breach.value == pytest.approx(500.0)

    def test_p99_tolerates_a_true_one_percent_tail(self):
        dog = SloWatchdog([SloRule("p99", "p99_admission_latency", "ceiling", 10.0)])
        for k in range(199):
            dog.admission(float(k), accepted=True, latency=1.0)
        dog.admission(199.0, accepted=True, latency=500.0)  # 0.5% of decisions
        assert dog.evaluate(200.0) == []

    def test_sampled_metric_uses_worst_case_in_window(self):
        dog = SloWatchdog([SloRule("depth", "backlog_depth", "ceiling", 4.0)])
        dog.sample("backlog_depth", 1.0, 6.0)
        dog.sample("backlog_depth", 2.0, 1.0)
        (breach,) = dog.evaluate(2.0)
        assert breach.value == pytest.approx(6.0)  # the max, not the latest

    def test_breach_emits_event_counter_and_flight_row(self):
        telemetry = Telemetry()
        recorder = FlightRecorder()
        dog = SloWatchdog([SloRule("floor", "accept_rate", "floor", 0.5)])
        dog.admission(1.0, accepted=False, latency=0.0)
        dog.evaluate(1.0, telemetry=telemetry, recorder=recorder)
        events = [e for e in telemetry.events if e.name == "slo.breach"]
        assert len(events) == 1 and events[0].fields["rule"] == "floor"
        counter = telemetry.metrics.counter("slo_breaches_total", "")
        samples = {tuple(sorted(labels.items())): value for labels, value in counter.samples()}
        assert samples[(("rule", "floor"),)] == 1.0
        (row,) = recorder.entries("slo")
        assert row.kind == "slo.breach" and row.fields["rule"] == "floor"

    def test_report_shape(self):
        dog = SloWatchdog(default_slo_rules())
        report = dog.report()
        assert report["ok"] is True and report["breaches"] == []
        assert {r["name"] for r in report["rules"]} >= {"accept-rate-floor"}


class TestGatewayIntegration:
    def drive(self, gw, n=10):
        for k in range(n):
            gw.submit(
                ingress=k % 4,
                egress=(k + 1) % 4,
                volume=50.0,
                deadline=100.0 + k,
                now=float(k),
            )
        gw.drain(200.0)

    def test_healthy_run_stays_ok(self):
        dog = SloWatchdog(default_slo_rules(hold_ttl=120.0))
        gw = Gateway(platform(), num_shards=2, batch_size=2, hold_ttl=120.0, slo=dog)
        self.drive(gw)
        assert dog.ok, dog.breaches

    def test_watchdog_is_fed_without_telemetry(self):
        dog = SloWatchdog(default_slo_rules(hold_ttl=120.0))
        gw = Gateway(platform(), num_shards=2, batch_size=2, hold_ttl=120.0, slo=dog)
        assert not gw.telemetry.enabled
        self.drive(gw)
        assert dog._admissions, "decisions must reach the watchdog under NullTelemetry"

    def test_partitioned_gateway_breaches_accept_rate(self):
        dog = SloWatchdog([SloRule("floor", "accept_rate", "floor", 0.5)])
        telemetry = Telemetry()
        gw = Gateway(
            platform(),
            num_shards=2,
            batch_size=1,
            chaos=ChaosPolicy.with_partition(1, 0.0, 1000.0),
            slo=dog,
            telemetry=telemetry,
        )
        # Cross-shard requests into a dead shard: all reject.
        for k in range(6):
            gw.submit(ingress=0, egress=3, volume=10.0, deadline=50.0 + k, now=float(k))
        gw.drain(60.0)
        assert not dog.ok
        assert any(e.name == "slo.breach" for e in telemetry.events)


class TestOfflineEvaluation:
    def _artifact(self, *, chaos=None):
        telemetry = Telemetry()
        gw = Gateway(
            platform(),
            num_shards=2,
            batch_size=2,
            chaos=chaos,
            telemetry=telemetry,
        )
        for k in range(8):
            gw.submit(
                ingress=0,
                egress=3,
                volume=10.0,
                deadline=100.0 + k,
                now=float(k),
            )
        gw.drain(200.0)
        artifact = RunTelemetry("slo-test")
        artifact.capture("run", telemetry)
        return artifact

    def test_clean_artifact_passes_default_rules(self):
        verdict = evaluate_artifact(self._artifact(), default_slo_rules())
        assert verdict["ok"] is True
        assert verdict["captures"][0]["label"] == "run"

    def test_partitioned_artifact_breaches(self):
        artifact = self._artifact(chaos=ChaosPolicy.with_partition(1, 0.0, 1000.0))
        verdict = evaluate_artifact(
            artifact, [SloRule("floor", "accept_rate", "floor", 0.5)]
        )
        assert verdict["ok"] is False
        assert verdict["captures"][0]["breaches"]

    def test_accepts_the_json_dict_form(self):
        artifact = self._artifact()
        as_dict = json.loads(artifact.to_json())
        assert evaluate_artifact(as_dict, default_slo_rules()) == evaluate_artifact(
            artifact, default_slo_rules()
        )


class TestRulesFileAndCli:
    def _rules_file(self, tmp_path, threshold=0.5):
        path = tmp_path / "rules.json"
        path.write_text(
            json.dumps(
                {
                    "rules": [
                        {
                            "name": "floor",
                            "metric": "accept_rate",
                            "bound": "floor",
                            "threshold": threshold,
                            "window": None,
                        }
                    ]
                }
            )
        )
        return path

    def test_load_rules_dict_and_bare_list(self, tmp_path):
        path = self._rules_file(tmp_path)
        (rule,) = load_rules(path)
        assert rule.name == "floor" and rule.threshold == 0.5
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps([rule.to_dict()]))
        assert load_rules(bare) == (rule,)

    def test_load_rules_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not-rules": 1}))
        with pytest.raises(SloRuleError):
            load_rules(path)

    def _artifact_file(self, tmp_path, *, chaos=None):
        telemetry = Telemetry()
        gw = Gateway(platform(), num_shards=2, batch_size=2, chaos=chaos, telemetry=telemetry)
        for k in range(6):
            gw.submit(ingress=0, egress=3, volume=10.0, deadline=60.0 + k, now=float(k))
        gw.drain(100.0)
        artifact = RunTelemetry("slo-cli")
        artifact.capture("run", telemetry)
        path = tmp_path / "run.json"
        artifact.save(path)
        return path

    def test_cli_ok_exits_zero(self, tmp_path, capsys):
        art = self._artifact_file(tmp_path)
        assert main(["slo", str(art)]) == 0
        assert "slo: ok" in capsys.readouterr().out

    def test_cli_breach_exits_one(self, tmp_path, capsys):
        art = self._artifact_file(
            tmp_path, chaos=ChaosPolicy.with_partition(1, 0.0, 1000.0)
        )
        rules = self._rules_file(tmp_path)
        assert main(["slo", str(art), "--rules", str(rules)]) == 1
        out = capsys.readouterr().out
        assert "BREACH" in out and "accept_rate" in out

    def test_cli_json_verdict(self, tmp_path, capsys):
        art = self._artifact_file(tmp_path)
        assert main(["slo", str(art), "--json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is True and verdict["captures"]
