"""Tests for the batch report generator."""

import pytest

from repro.experiments import generate_all


class TestGenerateAll:
    def test_writes_artifacts(self, tmp_path):
        timings = generate_all(
            tmp_path,
            only=["rtt-unfairness"],
        )
        assert set(timings) == {"rtt-unfairness"}
        assert (tmp_path / "rtt-unfairness.txt").exists()
        assert (tmp_path / "rtt-unfairness.md").exists()
        assert "reno_share" in (tmp_path / "rtt-unfairness.txt").read_text()

    def test_override_sizes(self, tmp_path):
        timings = generate_all(
            tmp_path,
            only=["claims"],
            overrides={"claims": dict(n_requests=200, seeds=(0,))},
        )
        assert timings["claims"] < 30.0
        assert "claim" in (tmp_path / "claims.txt").read_text()

    def test_unknown_experiment(self, tmp_path):
        with pytest.raises(KeyError, match="unknown experiments"):
            generate_all(tmp_path, only=["not-a-figure"])

    def test_progress_callback(self, tmp_path):
        seen = []
        generate_all(tmp_path, only=["rtt-unfairness"], progress=seen.append)
        assert len(seen) == 1
        assert seen[0].startswith("rtt-unfairness")

    def test_creates_directory(self, tmp_path):
        target = tmp_path / "nested" / "dir"
        generate_all(target, only=["rtt-unfairness"])
        assert target.exists()
