"""Tests for repro.units: parsing, formatting, constants."""

import math

import pytest

from repro import units


class TestConstants:
    def test_volume_hierarchy(self):
        assert units.KB < units.MB < units.GB < units.TB
        assert units.GB == 1000 * units.MB
        assert units.TB == 1000 * units.GB

    def test_time_hierarchy(self):
        assert units.MINUTE == 60 * units.SECOND
        assert units.HOUR == 60 * units.MINUTE
        assert units.DAY == 24 * units.HOUR

    def test_bandwidth(self):
        assert units.GBPS == 1000 * units.MBPS


class TestParseVolume:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("100GB", 100_000.0),
            ("1TB", 1_000_000.0),
            ("512mb", 512.0),
            ("1.5 GB", 1500.0),
            ("250", 250.0),
            ("2e3 MB", 2000.0),
        ],
    )
    def test_strings(self, text, expected):
        assert units.parse_volume(text) == pytest.approx(expected)

    def test_numbers_pass_through(self):
        assert units.parse_volume(42) == 42.0
        assert units.parse_volume(3.5) == 3.5

    def test_bad_unit(self):
        with pytest.raises(ValueError):
            units.parse_volume("10 parsecs")

    def test_garbage(self):
        with pytest.raises(ValueError):
            units.parse_volume("not a number")


class TestParseBandwidth:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1GB/s", 1000.0),
            ("10 MB/s", 10.0),
            ("1gbps", 1000.0),
            ("500", 500.0),
        ],
    )
    def test_strings(self, text, expected):
        assert units.parse_bandwidth(text) == pytest.approx(expected)

    def test_bad(self):
        with pytest.raises(ValueError):
            units.parse_bandwidth("10 qubits/s")


class TestParseDuration:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("90s", 90.0),
            ("2h", 7200.0),
            ("1 day", 86400.0),
            ("5 min", 300.0),
            ("10", 10.0),
        ],
    )
    def test_strings(self, text, expected):
        assert units.parse_duration(text) == pytest.approx(expected)


class TestFormatting:
    def test_volume_roundtrip_scale(self):
        assert units.format_volume(1_000_000.0) == "1TB"
        assert units.format_volume(250_000.0) == "250GB"
        assert units.format_volume(5.0) == "5MB"

    def test_bandwidth(self):
        assert units.format_bandwidth(1000.0) == "1GB/s"
        assert units.format_bandwidth(10.0) == "10MB/s"

    def test_duration(self):
        assert units.format_duration(86400.0) == "1d"
        assert units.format_duration(7200.0) == "2h"
        assert units.format_duration(90.0) == "1.5min"
        assert units.format_duration(12.0) == "12s"

    def test_nonfinite(self):
        assert units.format_volume(math.inf) == "inf"
        assert units.format_duration(math.nan) == "nan"

    def test_parse_format_roundtrip(self):
        for mb in [1.0, 500.0, 100_000.0, 2_000_000.0]:
            assert units.parse_volume(units.format_volume(mb)) == pytest.approx(mb, rel=1e-3)
