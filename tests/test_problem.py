"""Tests for ProblemInstance."""

import pytest

from repro.core import Platform, ProblemInstance, Request, RequestSet


@pytest.fixture
def problem():
    platform = Platform.uniform(2, 2, 100.0)
    requests = RequestSet(
        [
            Request(0, 0, 1, volume=1000.0, t_start=0.0, t_end=100.0, max_rate=50.0),
            Request(1, 1, 0, volume=500.0, t_start=50.0, t_end=150.0, max_rate=10.0),
        ]
    )
    return ProblemInstance(platform, requests)


class TestBasics:
    def test_num_requests(self, problem):
        assert problem.num_requests == 2

    def test_offered_load(self, problem):
        # demanded = 10 + 5 = 15; half capacity = 200
        assert problem.offered_load() == pytest.approx(15.0 / 200.0)

    def test_offered_load_rate(self, problem):
        # total volume 1500 over horizon 150 -> 10 MB/s over 200
        assert problem.offered_load_rate() == pytest.approx(10.0 / 200.0)

    def test_empty_loads(self):
        p = ProblemInstance(Platform.uniform(1, 1, 10.0), RequestSet())
        assert p.offered_load() == 0.0
        assert p.offered_load_rate() == 0.0

    def test_validate_ok(self, problem):
        problem.validate()

    def test_validate_catches_bad_ports(self):
        platform = Platform.uniform(1, 1, 100.0)
        requests = RequestSet([Request(0, 3, 0, 100.0, 0.0, 10.0, 50.0)])
        with pytest.raises(ValueError, match="ingress"):
            ProblemInstance(platform, requests).validate()


class TestSerialisation:
    def test_json_roundtrip(self, problem):
        clone = ProblemInstance.from_json(problem.to_json())
        assert clone.platform == problem.platform
        assert list(clone.requests) == list(problem.requests)

    def test_file_roundtrip(self, problem, tmp_path):
        path = tmp_path / "instance.json"
        problem.save(path)
        clone = ProblemInstance.load(path)
        assert list(clone.requests) == list(problem.requests)
