#!/usr/bin/env python3
"""Reservation vs TCP-style statistical sharing (the paper's motivation).

The same overloaded workload is served two ways:

1. **admission control** (WINDOW heuristic): a fraction of requests is
   accepted, but every accepted transfer holds a bandwidth reservation and
   finishes inside its window — predictable and reliable;
2. **max-min fair sharing** (fluid model of ideal TCP): everyone is let
   in, shares collapse, transfers overshoot their deadlines, and — once
   the grid reclaims CPUs/disks at the deadline — fail after having burned
   real capacity.

Run:  python examples/reservation_vs_tcp.py
"""

from repro import WindowFlexible, FractionOfMaxPolicy, verify_schedule
from repro.fairness import FluidSimulation
from repro.metrics import Table
from repro.workload import paper_flexible_workload

table = Table(
    [
        "inter-arrival",
        "reserved: accepted & on-time",
        "shared: on-time",
        "shared: failed @deadline",
        "shared: wasted (TB)",
    ],
    title="Reservation vs statistical sharing on the same overloaded workload",
)

for gap in (0.5, 2.0, 10.0):
    problem = paper_flexible_workload(mean_interarrival=gap, n_requests=400, seed=7)

    reserved = WindowFlexible(t_step=400.0, policy=FractionOfMaxPolicy(1.0)).schedule(problem)
    verify_schedule(problem.platform, problem.requests, reserved)

    shared = FluidSimulation(problem).run()
    dropped = FluidSimulation(problem, drop_at_deadline=True).run()

    table.add_row(
        f"{gap:g} s",
        f"{reserved.accept_rate:.1%}",
        f"{shared.deadline_met_rate:.1%}",
        f"{dropped.dropped_rate:.1%}",
        f"{dropped.wasted_volume / 1e6:.1f}",
    )

print(table.to_text())
print()
print("Reservation accepts fewer transfers but 100% of them are on time and")
print("no capacity is ever spent on a transfer that later fails — the three")
print("goals of the paper: predictability, reliability, performance.")
