#!/usr/bin/env python3
"""Theorem 1 end to end: 3-DM ⇔ bandwidth scheduling (§3).

Builds random 3-Dimensional Matching instances, reduces each to a
MAX-REQUESTS-DEC bandwidth-sharing instance (the NP-completeness
construction), solves both sides exactly and checks the equivalence.
For solvable instances it also materialises the proof's constructive
schedule and verifies it against Eq. 1.

Run:  python examples/np_hardness_demo.py
"""

import numpy as np

from repro.core import verify_schedule
from repro.exact import (
    max_requests_unit_slotted_exact,
    random_3dm,
    reduce_3dm,
    schedule_from_matching,
    solve_3dm,
)
from repro.metrics import Table

rng = np.random.default_rng(12)
table = Table(
    ["n", "|T|", "3-DM solvable", "K (target)", "exact accepts", "equivalent"],
    title="Theorem 1: 3-DM has a perfect matching  <=>  K requests schedulable",
)

for trial in range(6):
    n = 2 + trial % 2
    inst = random_3dm(n, num_extra=3, rng=rng, plant_matching=(trial % 2 == 0))
    matching = solve_3dm(inst)
    reduced = reduce_3dm(inst)
    exact = max_requests_unit_slotted_exact(reduced.problem)
    equivalent = (matching is not None) == (exact.num_accepted >= reduced.target)
    table.add_row(
        n,
        inst.num_triples,
        "yes" if matching else "no",
        reduced.target,
        exact.num_accepted,
        "OK" if equivalent else "BROKEN",
    )

    if matching is not None:
        # the proof's constructive schedule: accept all K requests explicitly
        schedule = schedule_from_matching(reduced, matching)
        verify_schedule(reduced.problem.platform, reduced.problem.requests, schedule)
        assert schedule.num_accepted == reduced.target

print(table.to_text())
print()
print("Every row must be equivalent — this is the paper's NP-completeness")
print("reduction running in both directions on concrete instances.")
