#!/usr/bin/env python3
"""The tuning factor f: faster transfers vs acceptance odds (§2.3, §5.3).

A grid job releases its CPUs and disks only when its data lands, so users
may prefer a *faster* transfer (large ``f × MaxRate``) over a *likelier*
one (MIN BW).  This study sweeps f under a lightly-loaded network and
prints the trade-off the paper describes: accept-rate gains roughly linear
in (1 − f), transfer durations shrinking as f grows.

Run:  python examples/tuning_factor_study.py
"""

import numpy as np

from repro import GreedyFlexible, WindowFlexible, FractionOfMaxPolicy
from repro.experiments import ascii_chart
from repro.metrics import Table, evaluate
from repro.workload import paper_flexible_workload

FS = [0.2, 0.4, 0.6, 0.8, 1.0]
problem = paper_flexible_workload(mean_interarrival=20.0, n_requests=800, seed=42)

table = Table(
    ["f", "greedy accept", "window accept", "mean transfer (h)", "mean granted (MB/s)"],
    title="Tuning factor under light load (mean inter-arrival 20 s)",
)
series = {"greedy": ([], []), "window": ([], [])}
for f in FS:
    policy = FractionOfMaxPolicy(f)
    greedy = GreedyFlexible(policy=policy).schedule(problem)
    window = WindowFlexible(t_step=400.0, policy=policy).schedule(problem)
    report = evaluate(problem, greedy)
    mean_bw = np.mean([a.bw for a in greedy.accepted.values()]) if greedy.accepted else 0.0
    table.add_row(
        f,
        f"{greedy.accept_rate:.1%}",
        f"{window.accept_rate:.1%}",
        f"{report.mean_transfer_duration / 3600:.2f}",
        f"{mean_bw:.0f}",
    )
    series["greedy"][0].append(f)
    series["greedy"][1].append(greedy.accept_rate)
    series["window"][0].append(f)
    series["window"][1].append(window.accept_rate)

print(table.to_text())
print()
print(ascii_chart(series, title="accept rate vs f", x_label="f", y_label="accept rate"))
print()
print("Reading: customers picking a small f are likelier to be accepted;")
print("customers picking f=1 transfer ~{:.0f}x faster when they do get in."
      .format(1 / FS[0]))
