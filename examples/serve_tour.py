#!/usr/bin/env python3
"""A tour of the admission service plane (``repro.serve``).

The gateway library becomes a long-running HTTP/JSON service: this
script boots one on a loopback socket and walks the whole surface —

1. authenticated submits (API key → client identity), status reads, and
   the ``?explain=1`` causal story over HTTP;
2. cancellation releasing the unconsumed tail of a reservation;
3. a tripped per-client request quota (429 + ``Retry-After``);
4. an SLO breach (accept-rate floor) surfacing as 503 in ``/healthz``;
5. graceful drain and a journal-replayed successor that resumes with
   identical state and the next fresh reservation id.

Everything runs on the deterministic :class:`LogicalClock` (simulated
time = the largest client-observed instant), so the tour prints the same
story every time.  Artifacts land under ``examples/out/`` (gitignored).

Run:  python examples/serve_tour.py
"""

import asyncio
import json
from pathlib import Path

from repro.core import Platform
from repro.loadgen import ServiceClient
from repro.obs.slo import SloRule
from repro.serve import ServeApp, ServeConfig
from repro.serve.clock import LogicalClock
from repro.serve.security import ClientQuota

out_dir = Path(__file__).parent / "out"
out_dir.mkdir(exist_ok=True)
journal_path = out_dir / "serve_tour.journal.jsonl"
if journal_path.exists():
    journal_path.unlink()

config = ServeConfig(
    platform=Platform.uniform(4, 4, 100.0),
    num_shards=2,
    batch_size=4,
    keys={"key-alice": "alice", "key-bob": "bob"},
    quota=ClientQuota(rate=1.0, burst=8.0),
    slo_rules=(
        SloRule(name="accept-floor", metric="accept_rate", bound="floor", threshold=0.9),
    ),
    journal_path=journal_path,
)


def submission(i: int, volume: float = 10.0, at: float = 0.0) -> dict:
    return {
        "ingress": i % 4,
        "egress": (i + 1) % 4,
        "volume": volume,
        "deadline": at + 900.0,
        "at": at,
    }


async def tour() -> None:
    app = ServeApp(config, clock=LogicalClock())
    host, port = await app.start()
    print(f"service listening on http://{host}:{port}")
    alice = ServiceClient(host, port, api_key="key-alice")
    await alice.connect()

    # -- submit / status / explain / cancel ---------------------------
    first = (await alice.request("POST", "/v1/reservations", payload=submission(0))).json()
    print(f"\nsubmit      -> rid {first['rid']} {first['outcome']}"
          f" (bw {first['allocation']['bw']:.3f} MB/s from {first['allocation']['sigma']:.0f}s)")

    status = (await alice.request("GET", f"/v1/reservations/{first['rid']}")).json()
    print(f"status      -> {status['outcome']}, client {status['client']}")

    explained = (
        await alice.request("GET", f"/v1/reservations/{first['rid']}?explain=1")
    ).json()
    story = explained["explain"].strip().splitlines()
    print("explain     ->", story[0])
    for line in story[1:4]:
        print("              ", line)

    cancel = (await alice.request("DELETE", f"/v1/reservations/{first['rid']}")).json()
    print(f"cancel      -> rid {cancel['rid']} released tail: {cancel['released']}")

    # -- trip the request quota ---------------------------------------
    refused = None
    for i in range(1, 12):
        resp = await alice.request("POST", "/v1/reservations", payload=submission(i))
        if resp.status == 429:
            refused = resp
            break
    assert refused is not None
    print(f"\nquota trip  -> 429 after burst, Retry-After {refused.headers['retry-after']}s")

    # -- breach the accept-rate SLO -----------------------------------
    # The keyring is closed (anonymous requests get 401), so the heavy
    # tenant is a second key with a fresh quota.
    bob = ServiceClient(host, port, api_key="key-bob")
    await bob.connect()
    for i in range(6):
        # 80 GB against 100 MB/s ports over a 900 s window: feasible on a
        # free port (min rate 88.9 MB/s), hopeless on one already carrying
        # a sibling — the repeats are rejected and the accept rate dives
        # under the 0.9 floor.
        await bob.request(
            "POST", "/v1/reservations", payload=submission(i, volume=80_000.0, at=30.0)
        )
    health = await bob.request("GET", "/healthz")
    verdict = health.json()["slo"]
    print(f"healthz     -> HTTP {health.status}, slo ok={verdict['ok']}, "
          f"active={verdict['active']}")
    for breach in verdict["breaches"][:1]:
        print(f"               breach: {breach['rule']} {breach['metric']}"
              f"={breach['value']:.2f} under floor {breach['threshold']}")

    metrics = (await bob.request("GET", "/metrics")).body.decode()
    line = next(l for l in metrics.splitlines() if l.startswith("serve_decisions_total"))
    print("metrics     ->", line)

    await alice.close()
    await bob.close()

    # -- graceful drain, journal-replayed successor -------------------
    await app.drain()
    snapshot = app.snapshot()
    print(f"\ndrained     -> {len(app.journal)} journal ops at {journal_path.name}")

    successor = ServeApp(config, clock=LogicalClock())
    same = successor.snapshot() == snapshot
    print(f"restart     -> snapshot equal: {same}, next rid {successor.snapshot()['next_rid']}")
    (out_dir / "serve_tour_state.json").write_text(
        json.dumps(snapshot, indent=2, sort_keys=True, default=str) + "\n"
    )
    print(f"state saved -> {out_dir / 'serve_tour_state.json'}")


if __name__ == "__main__":
    asyncio.run(tour())
