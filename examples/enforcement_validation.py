#!/usr/bin/env python3
"""Why the session-level abstraction is sound (§5.4).

Every scheduler in this library assumes a granted rate is actually
delivered.  The paper backs that with hardware enforcement on Grid'5000:
token-bucket pacing plus access-point dropping keeps reserved flows exact
and protects them from misbehaving TCP cross-traffic.  This example
recreates the argument on a simulated 1 Gbit/s bottleneck:

1. two paced (reserved) transfers + aggressive AIMD cross-traffic, with
   and without enforcement;
2. pure AIMD sharing, showing RTT unfairness and sawtooth variance —
   what bulk transfers get *without* the control plane.

Run:  python examples/enforcement_validation.py
"""

import numpy as np

from repro.metrics import Table
from repro.packetsim import AimdFlow, BottleneckLink, LinkSimulation, PacedFlow

link = BottleneckLink(capacity=125.0, buffer=12.5)  # 1 Gbit/s, 100 ms buffer
rng = lambda: np.random.default_rng(7)


def mixed_flows():
    return [
        PacedFlow(40.0),                    # reserved transfer A
        PacedFlow(30.0),                    # reserved transfer B
        AimdFlow(rtt=0.02, cwnd=4000.0),    # aggressive short-RTT TCP
        AimdFlow(rtt=0.20, cwnd=500.0),     # transcontinental TCP
    ]


table = Table(
    ["flow", "enforced: mean (std)", "best effort: mean (std)"],
    title="Reserved transfers vs TCP cross-traffic on one bottleneck (MB/s)",
)
enforced = LinkSimulation(link, mixed_flows(), protect_paced=True).run(300.0, rng())
best_effort = LinkSimulation(link, mixed_flows(), protect_paced=False).run(300.0, rng())
for k, label in enumerate(enforced.labels):
    table.add_row(
        label,
        f"{enforced.mean_goodput()[k]:6.1f} ({enforced.goodput_std()[k]:5.2f})",
        f"{best_effort.mean_goodput()[k]:6.1f} ({best_effort.goodput_std()[k]:5.2f})",
    )
print(table.to_text())
print()
print("With enforcement the reserved flows hold exactly 40 and 30 MB/s with")
print("zero variance — the session-level model's assumption.  Without it,")
print("reservations dip whenever the queue overflows, and prediction is lost.")

# ---------------------------------------------------------------------------
# What pure TCP sharing gives the same transfers.
# ---------------------------------------------------------------------------
aimd_only = LinkSimulation(
    link,
    [AimdFlow(rtt=0.01, cwnd=500.0), AimdFlow(rtt=0.05, cwnd=500.0), AimdFlow(rtt=0.2, cwnd=500.0)],
    protect_paced=False,
).run(300.0, rng())
print("\npure AIMD sharing of the same link (no reservations):")
for label, mean, std in zip(aimd_only.labels, aimd_only.mean_goodput(), aimd_only.goodput_std()):
    print(f"  {label:16s} {mean:6.1f} MB/s  (std {std:5.2f})")
print("short-RTT flows crush long-RTT ones and every share oscillates —")
print("the unpredictability that motivates admission control in the paper.")
