#!/usr/bin/env python3
"""Know your workload before trusting your experiment.

Prints the five-number summaries and text histograms of the two paper
workloads (rigid §4.3 and flexible §5.3), plus the empirical load check
against the Little's-law calibration target.

Run:  python examples/workload_characterization.py
"""


from repro.workload import (
    paper_flexible_workload,
    paper_rigid_workload,
    summarize,
    text_histogram,
)

rigid = paper_rigid_workload(load=4.0, n_requests=2000, seed=1)
flexible = paper_flexible_workload(mean_interarrival=2.0, n_requests=2000, seed=1)

print("=== rigid workload (§4.3, calibrated to load 4.0) ===")
print(summarize(rigid.requests, rigid.platform).to_text())
arrays = rigid.requests.as_arrays()
print()
print(text_histogram(arrays["min_rate"], bins=8, log=True,
                     title="fixed bandwidth bw(r) [MB/s], log bins"))

print("\n=== flexible workload (§5.3, mean inter-arrival 2 s) ===")
print(summarize(flexible.requests, flexible.platform).to_text())
arrays = flexible.requests.as_arrays()
print()
print(text_histogram(arrays["volume"], bins=8, log=True,
                     title="volumes [MB], log bins (the paper's 10 GB - 1 TB set)"))
durations = arrays["volume"] / arrays["max_rate"]
print()
print(text_histogram(durations, bins=8, log=True,
                     title="fastest transfer time vol/MaxRate [s] (tens of seconds to ~a day)"))
