#!/usr/bin/env python3
"""A data-replication campaign on a Grid'5000-like platform.

The paper's target deployment is Grid'5000: eight French sites with
heterogeneous access links.  This example schedules a nightly replication
campaign — every site pushes dataset copies to two hotspot storage sites —
and compares all the rigid heuristics plus the exact LP upper bound on a
small slice.

Run:  python examples/grid5000_campaign.py
"""

import numpy as np

from repro import Platform, verify_schedule
from repro.core.objectives import resource_utilization_time_averaged
from repro.exact import rigid_lp_bound
from repro.metrics import Table
from repro.schedulers import cumulated_slots, fifo_slots, minbw_slots, minvol_slots
from repro.units import GB, MINUTE
from repro.workload import (
    ChoiceVolumes,
    HotspotPairs,
    PoissonArrivals,
    SlottedRigidWorkload,
)

# Eight sites; two of them (0 and 1) host the archival storage and attract
# most of the traffic — a "tentative hot spot" in the paper's words.
platform = Platform.grid5000()
rng = np.random.default_rng(2006)

workload = SlottedRigidWorkload(
    platform,
    arrivals=PoissonArrivals(mean=20.0),
    volumes=ChoiceVolumes([50 * GB, 100 * GB, 200 * GB, 500 * GB]),
    pairs=HotspotPairs(egress_weights=[8.0, 8.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]),
    slot=5 * MINUTE,
    max_slots=24,
)
problem = workload.generate(400, rng)
print(f"campaign: {problem.num_requests} transfers, "
      f"{problem.requests.total_volume() / 1e6:.0f} TB total, "
      f"offered load {problem.offered_load_rate():.1f}x capacity\n")

table = Table(["heuristic", "accept rate", "utilisation", "accepted TB"],
              title="Nightly replication campaign on Grid'5000 (8 sites, 2 hotspots)")
for scheduler in (fifo_slots(), minvol_slots(), minbw_slots(), cumulated_slots()):
    result = scheduler.schedule(problem)
    verify_schedule(platform, problem.requests, result)
    accepted_tb = sum(problem.requests.by_rid(rid).volume for rid in result.accepted) / 1e6
    table.add_row(
        scheduler.name,
        f"{result.accept_rate:.1%}",
        f"{resource_utilization_time_averaged(platform, problem.requests, result):.1%}",
        f"{accepted_tb:.1f}",
    )
print(table.to_text())

# Exact upper bound on a small slice (the full problem is NP-complete, §3).
small = problem.requests[:30]
from repro.core import ProblemInstance  # noqa: E402

slice_problem = ProblemInstance(platform, small)
bound = rigid_lp_bound(slice_problem)
best = max(
    s.schedule(slice_problem).num_accepted
    for s in (cumulated_slots(), minbw_slots())
)
print(f"\nfirst 30 requests: best heuristic accepts {best}, LP bound {bound:.1f} "
      f"(gap ≤ {bound - best:.1f} requests)")
