#!/usr/bin/env python3
"""Tour of the gateway's chaos plane (`repro.gateway.rpc`).

Every coordinator→broker call travels through a per-edge `Channel`.
With no `ChaosPolicy` the channel is a pure pass-through; with one, the
mesh turns hostile — deterministically, from a seed.  This tour drills
the admission gateway through four weathers and audits each with the
invariant checker (`repro.gateway.check_gateway`):

1. a **lossy mesh** — requests and replies vanish; retries, the rpc
   deadline, and the 2PC termination probe (was the reply lost *after*
   the broker committed?) keep admissions and bookings reconciled;
2. a **duplicate storm** — every delivery may arrive twice; idempotency
   keys make the second arrival a harmless replay;
3. a **partition** — one shard drops off the mesh for a while; its
   requests reject `shard-unreachable`, park in the re-admission
   backlog, and are re-offered when the partition heals;
4. the **chaos matrix** — seeds × canned scenarios, every cell drained
   to quiescence and invariant-audited (the CI gate).

Run:  python examples/chaos_tour.py
"""

import random

from repro.control import Journal, run_chaos_matrix
from repro.core import Platform
from repro.gateway import ChaosPolicy, Gateway, check_gateway
from repro.gateway.rpc import EdgeChaos, Partition
from repro.schedulers.retry import BackoffSchedule

PORTS, CAP = 8, 400.0
N, HORIZON = 30, 400.0


def workload(seed):
    """A seeded mixed local/cross-shard submission stream."""
    rng = random.Random(seed)
    subs = []
    for _ in range(N):
        t0 = rng.uniform(0.0, HORIZON)
        duration = rng.uniform(60.0, 200.0)
        rate = rng.uniform(10.0, 40.0)
        subs.append(
            {
                "ingress": rng.randrange(PORTS),
                "egress": rng.randrange(PORTS),
                "volume": rng.uniform(0.2, 0.8) * rate * duration,
                "deadline": t0 + duration,
                "now": t0,
                "max_rate": rate,
            }
        )
    subs.sort(key=lambda s: s["now"])
    return subs


def drill(title, chaos, **kwargs):
    """Run one weather over the standard workload; audit; report."""
    gw = Gateway(
        Platform.uniform(PORTS, PORTS, CAP),
        num_shards=4,
        batch_size=4,
        chaos=chaos,
        hold_ttl=60.0,
        **kwargs,
    )
    for sub in workload(seed=7):
        gw.submit(**sub)
    for _ in range(8):  # drain past every deadline and hold TTL
        gw.drain(gw.now + 61.0)
        if gw.now > HORIZON + 200.0 and not any(b.holds() for b in gw.brokers):
            break
    report = check_gateway(gw, now=gw.now, expect_quiesced=True)
    s = gw.stats
    print(f"\n{title}")
    print(f"  accepted {s.accepted} / rejected {s.rejected} "
          f"(shard-unreachable {s.shard_unreachable})")
    print(f"  chaos: {s.chaos_drops} drops, {s.chaos_duplicates} duplicates, "
          f"{s.chaos_partitioned} partitioned, {s.chaos_wait_total:.0f} s waited")
    print(f"  recovered (reply-lost, probe resolved) {s.recovered_deliveries}, "
          f"stranded holds TTL-swept {s.stranded_holds}, "
          f"backlog re-admitted {s.readmitted}")
    print(f"  invariants: {'CLEAN' if report.ok else report.violations}")
    return gw


print("One workload (30 transfers, 8x8 ports), four weathers:")

# --- 1. clean control -------------------------------------------------
drill("[clean] no chaos — the channel layer is a pass-through", chaos=None)

# --- 2. lossy mesh ----------------------------------------------------
drill(
    "[lossy] 30% of deliveries vanish (half before, half after execution)",
    chaos=ChaosPolicy(seed=3, default=EdgeChaos(drop=0.3, delay=0.2)),
    backoff=BackoffSchedule(base=1.0, multiplier=1.5, max_attempts=5),
    rpc_deadline=120.0,
)

# --- 3. duplicate storm -----------------------------------------------
drill(
    "[duplicate-storm] 60% of deliveries arrive twice (idempotency keys replay)",
    chaos=ChaosPolicy(seed=3, default=EdgeChaos(duplicate=0.6)),
)

# --- 4. partition with backlog re-admission ---------------------------
drill(
    "[partition] shard 1 unreachable over [100, 250) s; backlog re-offers after heal",
    chaos=ChaosPolicy(seed=3, partitions=(Partition(shard=1, start=100.0, end=250.0),)),
    backoff=BackoffSchedule(base=1.0, multiplier=2.0, max_attempts=3),
    rpc_deadline=60.0,
    backlog_limit=8,
)

# --- 5. the chaos matrix (the CI gate, scaled down) -------------------
print("\n[matrix] 2 seeds x 5 scenarios, every cell invariant-audited:")


def requests_for(seed):
    from repro.core import Request

    rng = random.Random(seed)
    out = []
    for rid in range(24):
        t0 = rng.uniform(0.0, HORIZON)
        duration = rng.uniform(60.0, 200.0)
        rate = rng.uniform(10.0, 40.0)
        out.append(
            Request(
                rid=rid,
                ingress=rng.randrange(PORTS),
                egress=rng.randrange(PORTS),
                volume=rng.uniform(0.2, 0.8) * rate * duration,
                t_start=t0,
                t_end=t0 + duration,
                max_rate=rate,
            )
        )
    return out


matrix = run_chaos_matrix(
    Platform.uniform(PORTS, PORTS, CAP),
    requests_for,
    seeds=(0, 1),
    num_shards=4,
    hold_ttl=60.0,
    rpc_deadline=60.0,
    horizon=HORIZON,
)
for cell in matrix.cells:
    print(f"  seed={cell['seed']} {cell['scenario']:>15}: "
          f"accepted {cell['accepted']:2d}, drops {cell['chaos_drops']:3d}, "
          f"readmitted {cell['readmitted']}, "
          f"{'clean' if cell['invariants']['ok'] else 'VIOLATED'}")
assert matrix.ok, matrix.violations
print("  -> every cell clean: no overcommit, no zombie holds, ledgers reconciled.")

# --- replay convergence under chaos -----------------------------------
journal = Journal()
gw = Gateway(
    Platform.uniform(PORTS, PORTS, CAP),
    num_shards=4,
    batch_size=4,
    chaos=ChaosPolicy(seed=11, default=EdgeChaos(drop=0.2, duplicate=0.2)),
    journal=journal,
)
for sub in workload(seed=5):
    gw.submit(**sub)
gw.drain(HORIZON + 300.0)
rebuilt = Gateway.replay(journal)
assert rebuilt.snapshot() == gw.snapshot()
print(f"\nReplayed {sum(1 for _ in journal)} journal records under chaos "
      "(the header pins the ChaosPolicy) -> snapshot-identical gateway.")
