#!/usr/bin/env python3
"""CPU + network co-allocation: the tuning factor's real payoff (§2.3).

A grid job reserves processors, stages data in, computes, and releases
everything.  The CPUs are held from submission — so every extra second the
transfer takes is processor time burned idle.  This example sweeps the
bandwidth policy and shows the trade the tuning factor navigates:

- MIN BW accepts the most jobs but wastes the most CPU·seconds per job;
- f = 1 stages data fastest (cheapest jobs) but admits the fewest.

Run:  python examples/coallocation_study.py
"""

import numpy as np

from repro.core import Platform
from repro.grid import JobSimulator, random_jobs
from repro.metrics import Table
from repro.schedulers import FractionOfMaxPolicy, GreedyFlexible, MinRatePolicy

platform = Platform.paper_platform()
jobs = random_jobs(
    platform,
    400,
    np.random.default_rng(2006),
    mean_interarrival=5.0,
    cpu_time_range=(600.0, 7200.0),
    max_cpus=64,
)
sim = JobSimulator(platform, jobs)

table = Table(
    ["policy", "jobs completed", "CPU·h per job", "mean completion", "CPU·h total"],
    title="Co-allocating 400 grid jobs (CPUs held from submission to finish)",
)
for name, policy in [
    ("MIN BW", MinRatePolicy()),
    ("f = 0.5", FractionOfMaxPolicy(0.5)),
    ("f = 0.8", FractionOfMaxPolicy(0.8)),
    ("f = 1.0", FractionOfMaxPolicy(1.0)),
]:
    result = sim.run(GreedyFlexible(policy=policy))
    table.add_row(
        name,
        f"{result.completed_rate:.1%}",
        f"{result.cpu_seconds_per_job() / 3600:.1f}",
        f"{result.mean_completion_time() / 3600:.2f} h",
        f"{result.total_cpu_seconds / 3600:.0f}",
    )
print(table.to_text())
print()
print("Reading: a site whose processors are scarce should push f up (jobs")
print("finish ~2x cheaper in CPU·h); a site whose network is the bottleneck")
print("should keep MIN BW (twice the jobs admitted). §2.3's trade, measured.")
