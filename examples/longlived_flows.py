#!/usr/bin/env python3
"""Long-lived flows: the companion allocation problem (§2.1, [13, 14]).

Grid sites also exchange *indefinite* flows (monitoring streams, steady
replication pipes).  For those the decision is a rate, not a window.  This
example compares three classic steady-state allocations on a skewed flow
set — max-min fairness, maximum throughput, proportional fairness — and
then runs the polynomial optimal admission for uniform long-lived flows
(the [14] result quoted in §3).

Run:  python examples/longlived_flows.py
"""

import numpy as np

from repro import Platform
from repro.longlived import (
    max_accept_uniform_longlived,
    max_throughput_rates,
    maxmin_rates,
    proportional_fair_rates,
)
from repro.metrics import Table, jain_index

platform = Platform.paper_platform()
rng = np.random.default_rng(5)

# 40 long-lived flows; ingress 0 is a popular source (a hot spot).
n = 40
ingress = np.where(rng.random(n) < 0.4, 0, rng.integers(0, 10, n))
egress = rng.integers(0, 10, n)

table = Table(
    ["allocation", "total (GB/s)", "min rate (MB/s)", "Jain index"],
    title=f"Steady-state allocation of {n} long-lived flows (ingress 0 is hot)",
)
for name, solver in [
    ("max-min fair", maxmin_rates),
    ("max throughput", max_throughput_rates),
    ("proportional fair", proportional_fair_rates),
]:
    rates = solver(platform, ingress, egress)
    table.add_row(
        name,
        f"{rates.sum() / 1000:.2f}",
        f"{rates.min():.1f}",
        f"{jain_index(rates):.3f}",
    )
print(table.to_text())
print()
print("Max throughput starves flows through the hot ingress; max-min")
print("equalises them; proportional fairness sits between — the classic")
print("trilemma the windowed reservation system side-steps by scheduling")
print("finite transfers instead of open-ended rates.")

# ---------------------------------------------------------------------------
# Polynomial admission of *uniform* long-lived flows (bw(r) = b for all).
# ---------------------------------------------------------------------------
b = 250.0  # every flow wants a fixed 250 MB/s pipe
accepted = max_accept_uniform_longlived(platform, ingress, egress, b)
print(f"\nuniform long-lived admission at b = {b:.0f} MB/s:")
print(f"  optimal accept: {accepted.sum()}/{n} flows (computed by max-flow —")
print("  the polynomial special case of the otherwise NP-complete problem).")
