#!/usr/bin/env python3
"""A tour of the observability layer (``repro.obs``).

The control plane is instrumented end to end: the booking search, the
:class:`~repro.control.service.ReservationService`, the schedulers and the
simulation engine all report decisions through a process-wide telemetry
handle.  By default that handle is a no-op — this example turns it on,
drives a small reservation workload through faults, and shows every
surface:

1. metrics (labeled counters / gauges) with Prometheus text exposition;
2. spans keyed to the *simulation* clock, exported as a Chrome trace;
3. structured decision events (one per admission decision);
4. the byte-stable run artifact consumed by ``grid-obs``
   (``python -m repro.obs summary <artifact>``).

Run:  python examples/telemetry_tour.py
"""

import json
from pathlib import Path

import numpy as np

from repro.control.service import ReservationService
from repro.core import Platform
from repro.obs import RunTelemetry, Telemetry, summarize, use_telemetry, validate_chrome_trace

platform = Platform.paper_platform()
rng = np.random.default_rng(42)

telemetry = Telemetry()
with use_telemetry(telemetry):
    service = ReservationService(platform, backlog_limit=16)
    rids = []
    for k in range(120):
        now = float(k * 40)
        window = float(rng.uniform(1200, 7200))
        bottleneck = platform.bottleneck(int(rng.integers(10)), int(rng.integers(10)))
        reservation = service.submit(
            ingress=int(rng.integers(10)),
            egress=int(rng.integers(10)),
            volume=float(rng.uniform(0.2, 0.95)) * bottleneck * window,
            deadline=now + window,
            now=now,
        )
        if reservation.confirmed:
            rids.append(reservation.rid)
    # A couple of faults, so the fault counters light up too.
    service.cancel(rids[3], now=4900.0)
    service.abort(rids[7], now=5000.0)
    service.degrade(side="ingress", port=2, amount=300.0, start=5200.0, end=8000.0, now=5100.0)

# --- 1. metrics ------------------------------------------------------
print("=" * 70)
print("Prometheus text exposition (truncated):")
print("\n".join(telemetry.metrics.to_prometheus_text().splitlines()[:18]))

# --- 2. spans --------------------------------------------------------
trace = telemetry.tracer.to_chrome_trace()
validate_chrome_trace(trace)
out_dir = Path(__file__).parent / "out"
out_dir.mkdir(exist_ok=True)
trace_path = out_dir / "telemetry_trace.json"
trace_path.write_text(json.dumps(trace, indent=2, sort_keys=True))
print("=" * 70)
print(f"Chrome trace with {len(trace['traceEvents'])} events -> {trace_path}")
print("(open in chrome://tracing or https://ui.perfetto.dev)")

# --- 3. decision events ----------------------------------------------
rejected = [e for e in telemetry.events if e.fields.get("outcome") == "rejected"]
print("=" * 70)
print(f"{len(telemetry.events)} structured events; first rejection:")
if rejected:
    print(json.dumps(rejected[0].to_dict(), indent=2, sort_keys=True))

# --- 4. the run artifact + summary ------------------------------------
artifact = RunTelemetry("telemetry-tour", meta={"seed": 42, "requests": 120})
artifact.capture("run", telemetry, results={"accept_rate": service.accept_rate()})
artifact_path = out_dir / "telemetry_tour.json"
artifact.save(artifact_path)
print("=" * 70)
print(f"run artifact -> {artifact_path}  (inspect with: grid-obs summary {artifact_path})")
print("=" * 70)
print(summarize(artifact).render())
