#!/usr/bin/env python3
"""Driving the reservation service like a grid middleware would (§5.4).

The ReservationService is the client-facing API: submit a transfer, get
back a confirmed window + rate (or a rejection) immediately; cancel later
and the unused bandwidth returns to the pool.  This example walks a small
scenario on the paper platform:

1. a physics VO books three large replications;
2. a fourth request doesn't fit before its deadline and is rejected;
3. one booking is cancelled — and the retry of the rejected transfer
   now succeeds on the freed capacity.

Run:  python examples/reservation_service.py
"""

from repro.control import ReservationService
from repro.core import Platform
from repro.schedulers import FractionOfMaxPolicy
from repro.units import GB, HOUR, format_bandwidth, format_duration

service = ReservationService(
    Platform.paper_platform(), policy=FractionOfMaxPolicy(1.0)
)


def show(label, reservation, now):
    if reservation.confirmed:
        a = reservation.allocation
        print(
            f"  {label}: CONFIRMED  σ={format_duration(a.sigma)} "
            f"τ={format_duration(a.tau)} at {format_bandwidth(a.bw)} "
            f"[{reservation.state(now).value}]"
        )
    else:
        print(f"  {label}: REJECTED")


print("t=0h: the VO books three 3.6 TB replications, all into storage site 4")
bookings = []
for k in range(3):
    r = service.submit(
        ingress=k, egress=4, volume=3600 * GB, deadline=2 * HOUR, now=0.0
    )
    bookings.append(r)
    show(f"replication {k}", r, 0.0)

print("\nt=0.1h: an urgent 1.5 TB transfer, same destination, 1.5h deadline")
urgent = service.submit(
    ingress=5, egress=4, volume=1500 * GB, deadline=1.5 * HOUR, now=0.1 * HOUR
)
show("urgent", urgent, 0.1 * HOUR)

print("\nt=0.2h: replication 1 is cancelled (its dataset was superseded)")
service.cancel(bookings[1].rid, now=0.2 * HOUR)
print(f"  replication 1 -> {bookings[1].state(0.2 * HOUR).value}")

print("\nt=0.21h: the urgent transfer retries")
retry = service.submit(
    ingress=5, egress=4, volume=1500 * GB, deadline=1.5 * HOUR, now=0.21 * HOUR
)
show("urgent retry", retry, 0.21 * HOUR)

ins, outs = service.port_usage(0.5 * HOUR)
print(f"\nt=0.5h: storage site 4 egress load {outs[4]:.0f}/1000 MB/s; "
      f"accept rate so far {service.accept_rate():.0%}")
print("\nEvery confirmed window is a hard reservation: the client knows its")
print("finish time the moment it books — the predictability goal of the paper.")
