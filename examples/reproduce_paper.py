#!/usr/bin/env python3
"""One-shot reproduction driver: every figure + the §5.3 claims.

Runs a scaled-down version of every registered experiment (full sizes live
in EXPERIMENTS.md and take a few minutes via ``results/generate.py``) and
prints each table, ending with the claims checklist.

Run:  python examples/reproduce_paper.py          (~1 minute)
"""

import time

from repro.experiments import FIGURES

# Scaled-down parameterisations: enough to show every ordering.
SIZES = {
    "fig4": dict(loads=(1.0, 4.0, 16.0), n_requests=400, seeds=(0, 1)),
    "fig5": dict(gaps=(0.1, 1.0, 5.0), t_steps=(100.0, 400.0), n_requests=600, seeds=(0, 1)),
    "fig6": dict(gaps_heavy=(0.2, 1.0), gaps_light=(5.0, 20.0), n_requests=600, seeds=(0, 1)),
    "fig7": dict(gaps_heavy=(0.2, 1.0), gaps_light=(5.0, 20.0), n_requests=600, seeds=(0, 1)),
    "tuning": dict(fs=(0.2, 0.5, 0.8, 1.0), n_requests=600, seeds=(0, 1)),
    "tcp": dict(gaps=(0.5, 10.0), n_requests=250, seeds=(0,)),
    "extensions": dict(gaps=(0.5, 10.0), n_requests=400, seeds=(0,)),
    "coallocation": dict(fs=("min-bw", 0.5, 1.0), n_jobs=250, seeds=(0,)),
    "rtt-unfairness": dict(),
    "claims": dict(n_requests=600, seeds=(0, 1)),
}

total_start = time.time()
for name, kwargs in SIZES.items():
    start = time.time()
    table, _ = FIGURES[name](**kwargs)
    print(table.to_text())
    print(f"[{name}: {time.time() - start:.1f}s]\n")

print(f"total: {time.time() - total_start:.0f}s — see EXPERIMENTS.md for the "
      "full-size record and the paper-vs-measured discussion.")
