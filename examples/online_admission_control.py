#!/usr/bin/env python3
"""Distributed admission over the overlay control plane (§5.4).

The paper deploys its heuristics in the grid network middleware: the
client's ingress access router decides, after an RSVP-like probe of the
egress router, and a token bucket paces the granted flow (dropping
non-conforming traffic so it cannot hurt others).  This example:

1. runs the same workload through the centralized GREEDY heuristic and
   through the simulated control plane at several signalling latencies,
   showing the (small) acceptance cost of distributing the decision;
2. paces one granted transfer through a token bucket and shows a
   misbehaving sender being clamped to its reservation.

Run:  python examples/online_admission_control.py
"""

import numpy as np

from repro import GreedyFlexible, MinRatePolicy
from repro.control import ControlPlane, TokenBucket, enforce_series
from repro.core import verify_schedule
from repro.metrics import Table
from repro.workload import paper_flexible_workload

problem = paper_flexible_workload(mean_interarrival=1.0, n_requests=500, seed=99)

table = Table(
    ["admission", "accept rate", "messages", "mean start delay (s)"],
    title="Centralized vs distributed admission (same workload)",
)

greedy = GreedyFlexible(policy=MinRatePolicy()).schedule(problem)
table.add_row("centralized greedy", f"{greedy.accept_rate:.1%}", 0, 0.0)

for latency in (0.0, 1.0, 10.0, 60.0):
    plane = ControlPlane(policy=MinRatePolicy(), latency=latency)
    result = plane.schedule(problem)
    verify_schedule(problem.platform, problem.requests, result)
    delays = [
        alloc.sigma - problem.requests.by_rid(rid).t_start
        for rid, alloc in result.accepted.items()
    ]
    table.add_row(
        f"control plane, {latency:g}s one-way",
        f"{result.accept_rate:.1%}",
        result.meta["messages"],
        f"{np.mean(delays):.1f}" if delays else "-",
    )

print(table.to_text())

# ---------------------------------------------------------------------------
# Token-bucket enforcement of one granted reservation.
# ---------------------------------------------------------------------------
alloc = next(iter(greedy.accepted.values()))
bucket = TokenBucket(rate=alloc.bw, burst=alloc.bw * 2.0)  # 2 s of burst credit

rng = np.random.default_rng(1)
times = np.sort(rng.uniform(alloc.sigma, alloc.sigma + 60.0, 600))
# The sender misbehaves: it blasts at ~2x its granted rate.
sizes = np.full(times.shape, alloc.bw * 2 * 60.0 / times.size)
ok = enforce_series(bucket, times, sizes)

offered = sizes.sum() / 60.0
carried = sizes[ok].sum() / 60.0
print(f"\ntoken-bucket enforcement of request {alloc.rid}:")
print(f"  granted rate  {alloc.bw:8.1f} MB/s")
print(f"  offered rate  {offered:8.1f} MB/s (misbehaving sender)")
print(f"  carried rate  {carried:8.1f} MB/s -> clamped to the reservation;")
print("  excess packets dropped at the access point, other flows unharmed.")
