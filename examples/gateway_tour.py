#!/usr/bin/env python3
"""Tour of the sharded admission gateway (`repro.gateway`).

The monolithic reservation service funnels every admission through one
ledger; the gateway shards that state across per-access-point brokers
(the paper's Eq. 1 is per-port, so it partitions cleanly) and batches
concurrent arrivals.  This tour runs the whole serving layer on the
discrete-event engine:

1. a 4-shard gateway with min-laxity batching, per-client edge limits,
   and a journal recording every operation;
2. twelve waves of grid traffic from three sites — plus one greedy
   client whose burst overdraws its edge token bucket and is refused
   before ever reaching a broker;
3. a periodic monitor (``sim.every``) sampling admission progress;
4. shard broker 1 crashes mid-run — volatile prepare-holds are wiped,
   requests routed at it bounce with ``broker-unavailable`` — then
   restarts with its committed bookings intact;
5. a port degradation displaces the latest-starting reservations that
   no longer fit;
6. the gateway "crashes"; replaying the journal rebuilds the exact
   state, brokers and batches included.

Run:  python examples/gateway_tour.py
"""

import random

from repro.control import Journal
from repro.core import Platform
from repro.gateway import EdgeLimit, Gateway
from repro.sim.engine import Simulator

PORTS, CAP = 8, 1000.0
WAVES, WAVE_SIZE, WAVE_GAP = 12, 8, 60.0
HORIZON = WAVES * WAVE_GAP

rng = random.Random(7)

journal = Journal()
gateway = Gateway(
    Platform.uniform(PORTS, PORTS, CAP),
    num_shards=4,
    batch_size=WAVE_SIZE,
    ordering="min-laxity",
    edge=EdgeLimit(rate=8_000.0, burst=500_000.0),
    journal=journal,
)

print("A 4-shard gateway on an 8x8 platform (1 GB/s ports):")
for broker in gateway.brokers:
    ins, outs = gateway.shard_map.ports_of(broker.shard_id)
    print(f"  shard {broker.shard_id}: ingress {ins}, egress {outs}")

# --- the workload -----------------------------------------------------
sim = Simulator()


def arrive(event):
    client, ingress, egress, volume, window = event.payload
    gateway.submit(
        ingress=ingress,
        egress=egress,
        volume=volume,
        deadline=sim.now + window,
        now=sim.now,
        client=client,
    )


for wave in range(WAVES):
    for _ in range(WAVE_SIZE):
        window = rng.uniform(200.0, 900.0)
        payload = (
            rng.choice(["cms", "atlas", "alice"]),
            rng.randrange(PORTS),
            rng.randrange(PORTS),
            min(rng.uniform(10_000.0, 120_000.0), 0.8 * CAP * window),
            window,
        )
        sim.at(wave * WAVE_GAP, arrive, payload=payload)

# One greedy site bursts five 200 GB submissions in a single instant —
# its 500 GB edge bucket admits two and refuses three at the door.
for _ in range(5):
    sim.at(0.0, arrive, payload=("greedy", 0, 1, 200_000.0, 800.0))


def monitor(event):
    s = gateway.stats
    print(
        f"  t={sim.now:5.0f}  accepted={s.accepted:3d} rejected={s.rejected:2d} "
        f"edge_refused={s.edge_refused} pending={gateway.pending()} "
        f"batches={s.batches}"
    )


sim.every(2 * WAVE_GAP, monitor, start=WAVE_GAP)

# --- a broker outage mid-run (priority 1: after that instant's arrivals,
# so queued submissions face the dead broker when their batch decides) --
CRASH_SHARD, CRASH_AT, RESTART_AT = 1, 4 * WAVE_GAP, 6 * WAVE_GAP


def crash(event):
    wiped = gateway.crash_broker(CRASH_SHARD, now=sim.now)
    print(f"  t={sim.now:5.0f}  ** shard {CRASH_SHARD} crashed ({wiped} holds wiped)")


def restart(event):
    gateway.restart_broker(CRASH_SHARD, now=sim.now)
    print(f"  t={sim.now:5.0f}  ** shard {CRASH_SHARD} restarted (commits intact)")


sim.at(CRASH_AT, crash, priority=1)
sim.at(RESTART_AT, restart)

print(f"\nRunning {WAVES} waves of {WAVE_SIZE} transfers ({HORIZON:.0f} s):")
sim.run(until=HORIZON)
gateway.drain(HORIZON)

s = gateway.stats
print("\nAdmission outcome:")
print(f"  accepted {s.accepted}, rejected {s.rejected} (of {s.submits} submitted)")
print(f"  local {s.local} / cross-shard {s.cross_shard} / fast path {s.fastpath_hits}")
print(f"  edge refusals: {s.edge_refused} (clients: {gateway.edge.clients()})")
print(f"  prepare retries {s.prepare_retries}, two-phase aborts {s.twophase_aborts}")
print(f"  throughput {gateway.throughput():.4f} decisions per simulated work unit")

# --- a port fault: degrade and displace -------------------------------
victim = max(
    (r for r in gateway.reservations() if r.confirmed and r.allocation.tau > HORIZON),
    key=lambda r: r.allocation.tau,
)
port = victim.request.egress
displaced = gateway.degrade(
    side="egress",
    port=port,
    amount=0.8 * CAP,
    start=HORIZON,
    end=HORIZON + 600.0,
    now=HORIZON,
)
print(f"\nEgress {port} loses 800 MB/s for 10 min: displaced {len(displaced)} "
      f"reservation(s) {[r.rid for r in displaced]} (latest-start-first)")
print(f"  worst slice usage minus capacity: {gateway.max_overcommit():+.1f} MB/s "
      "(<= 0 everywhere: Eq. 1 still holds)")

# --- crash recovery from the journal ----------------------------------
rebuilt = Gateway.replay(journal)
assert rebuilt.snapshot() == gateway.snapshot()
print(f"\nReplayed {sum(1 for _ in journal)} journal records -> "
      "snapshot-identical gateway (brokers, batches, stats and all).")
