#!/usr/bin/env python3
"""Surviving failures: aborts, a port outage, and a service crash (§6).

The paper motivates reservations with reliability — "a large amount of
resources could be wasted when long transfer failure occurs".  This
example runs the fault-tolerant control plane end to end:

1. a day of grid traffic is submitted to the reservation service, with a
   journal recording every operation;
2. mid-flight aborts waste the carried volume but return each tail to
   the ledger, where backlogged rejections immediately re-compete;
3. a storage site loses its egress port for two hours — the service
   displaces what no longer fits and rebooks the residual volumes with
   exponential backoff;
4. the service "crashes"; replaying the journal rebuilds the exact
   ledger state, verified against the paper's Eq. 1.

Run:  python examples/fault_tolerance.py
"""

import random

from repro.control import Journal, PortFault, ReservationService, run_fault_drill
from repro.core import Platform, Request, verify_schedule
from repro.schedulers import BackoffSchedule
from repro.units import GB, HOUR, format_volume

platform = Platform.paper_platform()
rng = random.Random(42)

requests = []
for rid in range(200):
    t0 = rng.uniform(0.0, 20 * HOUR)
    requests.append(
        Request(
            rid=rid,
            ingress=rng.randrange(platform.num_ingress),
            egress=rng.randrange(platform.num_egress),
            volume=rng.uniform(100 * GB, 3000 * GB),
            t_start=t0,
            t_end=t0 + rng.uniform(2 * HOUR, 8 * HOUR),
            max_rate=500.0,
        )
    )

outage = PortFault.outage(
    "egress", port=4, capacity=platform.bout(4), start=6 * HOUR, end=8 * HOUR
)

print("Running a 24h fault drill on the paper platform:")
print(f"  {len(requests)} transfers, 5% abort rate, egress 4 dark 6h-8h\n")

journal = Journal()
report = run_fault_drill(
    platform,
    requests,
    abort_rate=0.05,
    faults=[outage],
    rebook=BackoffSchedule(base=300.0, multiplier=2.0, jitter=0.25),
    backlog_limit=32,
    journal=journal,
    seed=7,
)
service = report.service
stats = service.stats

print("Damage report:")
print(f"  mid-flight aborts        : {stats.aborted}")
print(f"  volume wasted by aborts  : {format_volume(stats.wasted_volume)}")
print(f"  capacity freed (tails)   : {format_volume(stats.freed_volume)}")
print(f"  displaced by the outage  : {stats.displaced}")

print("\nRecovery report:")
print(f"  rebooking attempts       : {stats.rebook_attempts}")
print(f"  residuals rebooked       : {stats.rebooked} "
      f"({format_volume(stats.recovered_volume)})")
print(f"  mean time to rebook      : {stats.mean_time_to_rebook / HOUR:.2f} h")
print(f"  backlog re-admissions    : {stats.readmitted} "
      f"({format_volume(stats.readmitted_volume)})")
print(f"  accept rate (recovered)  : {service.accept_rate():.2%}")

surviving, result = service.surviving_schedule()
verify_schedule(
    platform,
    surviving,
    result,
    enforce_window=False,
    degradations=service.degradations(),
)
print(f"\nEq. 1 verified under degraded capacity "
      f"(max overcommit {service.max_overcommit():.2e} MB/s)")

print(f"\nCrash! Replaying the {len(journal)}-entry journal ...")
rebuilt = ReservationService.replay(journal)
identical = rebuilt.snapshot() == service.snapshot()
print(f"  rebuilt state identical  : {identical}")
assert identical
