#!/usr/bin/env python3
"""Quickstart: admission-control a bulk-transfer workload in ~20 lines.

Builds the paper's platform (10 ingress + 10 egress points at 1 GB/s),
draws a flexible workload (volumes 10 GB–1 TB, host rates 10 MB/s–1 GB/s,
Poisson arrivals), schedules it with the interval-based WINDOW heuristic
(Algorithm 3) and prints the headline metrics.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    FlexibleWorkload,
    Platform,
    PoissonArrivals,
    WindowFlexible,
    verify_schedule,
)
from repro.metrics import evaluate

platform = Platform.paper_platform()
workload = FlexibleWorkload(platform, arrivals=PoissonArrivals(mean=2.0))
problem = workload.generate(500, np.random.default_rng(seed=0))

scheduler = WindowFlexible(t_step=400.0)
result = scheduler.schedule(problem)

# Independent re-check of every constraint the paper imposes (Eq. 1).
verify_schedule(platform, problem.requests, result)

report = evaluate(problem, result)
print(f"scheduler:       {result.scheduler}")
print(f"requests:        {report.num_requests}")
print(f"accept rate:     {report.accept_rate:.1%}")
print(f"utilisation:     {report.utilization_time_averaged:.1%} (time-averaged, scaled ports)")
print(f"mean wait:       {report.mean_wait:.0f} s (decisions batched per {scheduler.t_step:.0f} s interval)")
print(f"guaranteed f=1:  {report.guaranteed[1.0]:.1%} of all requests got their full host rate")
print("every accepted transfer finishes inside its requested window — verified.")
